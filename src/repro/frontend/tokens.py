"""Token model and stream helpers shared by both lexers."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional, Sequence

from repro.frontend.errors import ParseError
from repro.ir.astnodes import SourceLocation


class TokenKind(Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    OP = "op"          # operators and punctuation
    PRAGMA = "pragma"  # a whole `#pragma acc ...` / `!$acc ...` line
    NEWLINE = "newline"  # statement separator (Fortran only)
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    loc: SourceLocation
    value: object = None  # numeric payload for INT/FLOAT

    def is_op(self, *texts: str) -> bool:
        return self.kind is TokenKind.OP and self.text in texts

    def is_keyword(self, *texts: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in texts

    def is_ident(self, *texts: str) -> bool:
        return self.kind is TokenKind.IDENT and (not texts or self.text in texts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.value}, {self.text!r})"


def rebase_tokens(
    tokens: Sequence[Token], base: SourceLocation, column: int = 1
) -> List[Token]:
    """Re-anchor sub-lexed tokens at their position in the original file.

    Directive payloads are lexed standalone (starting at 1:1); diagnostics
    and parse errors must point at the real source line.  ``column`` is the
    absolute column the payload starts at in the original line; tokens past
    the first sub-line (glued continuations) keep only the line rebase.
    """
    out: List[Token] = []
    for tok in tokens:
        if tok.loc.line == 1:
            loc = SourceLocation(
                base.filename, base.line, column + tok.loc.column - 1
            )
        else:
            loc = SourceLocation(
                base.filename, base.line + tok.loc.line - 1, tok.loc.column
            )
        out.append(Token(tok.kind, tok.text, loc, value=tok.value))
    return out


class TokenStream:
    """Cursor over a token list with the usual LL(k) helpers."""

    def __init__(self, tokens: Sequence[Token]):
        self._tokens: List[Token] = list(tokens)
        if not self._tokens or self._tokens[-1].kind is not TokenKind.EOF:
            last_loc = self._tokens[-1].loc if self._tokens else SourceLocation()
            self._tokens.append(Token(TokenKind.EOF, "", last_loc))
        self.pos = 0

    def peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    @property
    def current(self) -> Token:
        return self.peek()

    def at_end(self) -> bool:
        return self.current.kind is TokenKind.EOF

    def advance(self) -> Token:
        tok = self.current
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def match_op(self, *texts: str) -> Optional[Token]:
        if self.current.is_op(*texts):
            return self.advance()
        return None

    def match_keyword(self, *texts: str) -> Optional[Token]:
        if self.current.is_keyword(*texts):
            return self.advance()
        return None

    def match_ident(self, *texts: str) -> Optional[Token]:
        if self.current.is_ident(*texts):
            return self.advance()
        return None

    def expect_op(self, text: str) -> Token:
        tok = self.match_op(text)
        if tok is None:
            raise ParseError(
                f"expected {text!r}, found {self.current.text!r}", self.current.loc
            )
        return tok

    def expect_keyword(self, text: str) -> Token:
        tok = self.match_keyword(text)
        if tok is None:
            raise ParseError(
                f"expected keyword {text!r}, found {self.current.text!r}",
                self.current.loc,
            )
        return tok

    def expect_ident(self) -> Token:
        if self.current.kind is TokenKind.IDENT:
            return self.advance()
        raise ParseError(
            f"expected identifier, found {self.current.text!r}", self.current.loc
        )

    def expect_kind(self, kind: TokenKind) -> Token:
        if self.current.kind is kind:
            return self.advance()
        raise ParseError(
            f"expected {kind.value}, found {self.current.text!r}", self.current.loc
        )
