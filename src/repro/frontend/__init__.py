"""Frontend infrastructure shared by the mini-C and mini-Fortran parsers:
token model, error types and the language-parameterised OpenACC directive
(clause list) parser.
"""

from repro.frontend.tokens import Token, TokenKind, TokenStream
from repro.frontend.errors import FrontendError, LexError, ParseError
from repro.frontend.directives import DirectiveParser

__all__ = [
    "Token", "TokenKind", "TokenStream",
    "FrontendError", "LexError", "ParseError",
    "DirectiveParser",
]
