"""Language-parameterised OpenACC directive parser.

Both frontends delegate the part after the ``acc`` sentinel to this parser,
supplying their own expression parser and array-section convention:

* C sections are ``a[start:length]``;
* Fortran sections are ``a(lo:hi)`` and are normalised to start/length form
  (``start = lo``, ``length = hi - lo + 1``) so the rest of the pipeline sees
  one representation.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.frontend.errors import ParseError
from repro.frontend.tokens import Token, TokenKind, TokenStream
from repro.ir.acc import Clause, DataRef, Directive, Section, normalize_clause_name
from repro.ir.astnodes import Binary, Expr, IntLit

#: clauses taking a single scalar expression argument
EXPR_CLAUSES = {
    "if", "num_gangs", "num_workers", "vector_length", "collapse", "wait",
}
#: clauses where the parenthesised expression is optional
OPTIONAL_EXPR_CLAUSES = {"async", "gang", "worker", "vector", "wait"}
#: clauses taking a list of (possibly sectioned) variable references
REF_CLAUSES = {
    "copy", "copyin", "copyout", "create", "present",
    "present_or_copy", "present_or_copyin", "present_or_copyout",
    "present_or_create", "deviceptr", "device_resident", "delete",
    "private", "firstprivate", "use_device", "host", "device", "cache",
}
#: bare clauses with no argument
BARE_CLAUSES = {"seq", "independent", "auto"}

#: scalar-argument clauses that may appear at most once per directive;
#: `num_gangs(2) num_gangs(4)` is ambiguous, not additive.  `wait` is
#: deliberately absent: multiple wait arguments name multiple queues.
UNIQUE_CLAUSES = {
    "if", "async", "num_gangs", "num_workers", "vector_length",
    "collapse", "default",
}

#: multi-word directive kinds, longest match first
_MULTIWORD = [
    ("parallel", "loop"),
    ("kernels", "loop"),
    ("enter", "data"),
    ("exit", "data"),
]
_SINGLE = [
    "parallel", "kernels", "data", "host_data", "loop", "cache",
    "declare", "update", "wait", "routine",
]


class DirectiveParser:
    """Parses one directive line (already split from the host language).

    Parameters
    ----------
    parse_expr:
        Callback parsing one scalar expression from a :class:`TokenStream`.
    fortran_sections:
        When True, sections use the Fortran ``(lo:hi)`` convention.
    """

    def __init__(
        self,
        parse_expr: Callable[[TokenStream], Expr],
        fortran_sections: bool = False,
    ):
        self._parse_expr = parse_expr
        self._fortran = fortran_sections

    # -- entry point ---------------------------------------------------------

    def parse(self, ts: TokenStream, source: str = "") -> Directive:
        kind = self._parse_kind(ts)
        directive = Directive(kind=kind, source=source, loc=ts.current.loc)
        # `cache(...)` and `wait(...)` take their argument directly after the
        # directive name.
        if kind == "cache":
            ts.expect_op("(")
            directive.clauses.append(
                Clause("cache", refs=self._parse_ref_list(ts))
            )
            ts.expect_op(")")
        elif kind == "wait" and ts.current.is_op("("):
            ts.advance()
            directive.clauses.append(Clause("wait", expr=self._parse_expr(ts)))
            ts.expect_op(")")
        while not ts.at_end():
            if ts.match_op(","):
                continue
            clause = self._parse_clause(ts)
            if clause.name in UNIQUE_CLAUSES and directive.has_clause(clause.name):
                raise ParseError(
                    f"duplicate clause {clause.name!r} on directive "
                    f"{kind!r}: a single-valued clause may appear only once",
                    clause.loc,
                )
            directive.clauses.append(clause)
        return directive

    # -- pieces ---------------------------------------------------------------

    def _parse_kind(self, ts: TokenStream) -> str:
        tok = ts.current
        if tok.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
            raise ParseError(f"expected directive name, found {tok.text!r}", tok.loc)
        first = tok.text.lower()
        for a, b in _MULTIWORD:
            if first == a and ts.peek(1).text.lower() == b:
                ts.advance()
                ts.advance()
                return f"{a} {b}"
        if first in _SINGLE:
            ts.advance()
            return first
        raise ParseError(f"unknown OpenACC directive {first!r}", tok.loc)

    def _parse_clause(self, ts: TokenStream) -> Clause:
        tok = ts.current
        if tok.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
            raise ParseError(f"expected clause name, found {tok.text!r}", tok.loc)
        ts.advance()
        name = normalize_clause_name(tok.text.lower())
        loc = tok.loc

        if name == "reduction":
            ts.expect_op("(")
            op = self._parse_reduction_op(ts)
            ts.expect_op(":")
            refs = self._parse_ref_list(ts)
            ts.expect_op(")")
            return Clause("reduction", op=op, refs=refs, loc=loc)

        if name == "default":
            ts.expect_op("(")
            kw = ts.advance()
            ts.expect_op(")")
            return Clause("default", op=kw.text.lower(), loc=loc)

        if name in REF_CLAUSES:
            ts.expect_op("(")
            refs = self._parse_ref_list(ts)
            ts.expect_op(")")
            return Clause(name, refs=refs, loc=loc)

        if name in EXPR_CLAUSES and name not in OPTIONAL_EXPR_CLAUSES:
            ts.expect_op("(")
            expr = self._parse_expr(ts)
            ts.expect_op(")")
            return Clause(name, expr=expr, loc=loc)

        if name in OPTIONAL_EXPR_CLAUSES:
            if ts.current.is_op("("):
                ts.advance()
                expr = self._parse_expr(ts)
                ts.expect_op(")")
                return Clause(name, expr=expr, loc=loc)
            return Clause(name, loc=loc)

        if name in BARE_CLAUSES:
            return Clause(name, loc=loc)

        raise ParseError(f"unknown OpenACC clause {tok.text!r}", loc)

    def _parse_reduction_op(self, ts: TokenStream) -> str:
        tok = ts.current
        # operators: + * & | ^ && || ; intrinsics: max min iand ior ieor
        # Fortran logicals: .and. .or. (lexed as OP '.and.'/'.or.')
        if tok.kind is TokenKind.OP and tok.text in (
            "+", "*", "&", "|", "^", "&&", "||", ".and.", ".or.",
        ):
            ts.advance()
            return tok.text
        if tok.kind in (TokenKind.IDENT, TokenKind.KEYWORD) and tok.text.lower() in (
            "max", "min", "iand", "ior", "ieor",
        ):
            ts.advance()
            return tok.text.lower()
        raise ParseError(f"unknown reduction operator {tok.text!r}", tok.loc)

    def _parse_ref_list(self, ts: TokenStream) -> List[DataRef]:
        refs = [self._parse_ref(ts)]
        while ts.match_op(","):
            refs.append(self._parse_ref(ts))
        return refs

    def _parse_ref(self, ts: TokenStream) -> DataRef:
        name_tok = ts.expect_ident()
        ref = DataRef(name=name_tok.text, loc=name_tok.loc)
        open_br, close_br = ("(", ")") if self._fortran else ("[", "]")
        if self._fortran:
            # A bare name or `name(sec, sec)`; stop if the paren does not
            # look like a section list (plain scalar refs have no parens).
            if ts.current.is_op("("):
                ts.advance()
                ref.sections.append(self._parse_section(ts))
                while ts.match_op(","):
                    ref.sections.append(self._parse_section(ts))
                ts.expect_op(")")
        else:
            while ts.current.is_op("["):
                ts.advance()
                ref.sections.append(self._parse_section(ts))
                ts.expect_op("]")
        return ref

    def _parse_section(self, ts: TokenStream) -> Section:
        start: Optional[Expr] = None
        length: Optional[Expr] = None
        if not ts.current.is_op(":"):
            start = self._parse_expr(ts)
        if ts.match_op(":"):
            if not (ts.current.is_op(")") or ts.current.is_op("]") or ts.current.is_op(",")):
                second = self._parse_expr(ts)
                if self._fortran:
                    # (lo:hi) -> start=lo, length = hi - lo + 1
                    lo = start if start is not None else IntLit(1)
                    length = Binary(
                        "+", Binary("-", second, lo), IntLit(1)
                    )
                    start = lo
                else:
                    length = second
        elif start is not None and not self._fortran:
            # C `[i]` single element
            length = IntLit(1)
        elif start is not None and self._fortran:
            # Fortran `(i)` single element
            length = IntLit(1)
        return Section(start=start, length=length)
