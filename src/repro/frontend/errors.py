"""Frontend error types.

These surface as *compile-time* errors in the harness — the paper's
Section V distinguishes compile-time errors ("assertion violations or other
internal compilation errors", e.g. using a feature the compiler does not yet
support) from the more vicious silent runtime errors.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.astnodes import SourceLocation


class FrontendError(Exception):
    """Base class for lexing/parsing failures."""

    def __init__(self, message: str, loc: Optional[SourceLocation] = None):
        self.loc = loc or SourceLocation()
        super().__init__(f"{self.loc}: {message}")
        self.message = message


class LexError(FrontendError):
    pass


class ParseError(FrontendError):
    pass
