"""The :class:`FaultInjector`: deterministic fault decisions at run time.

One injector is built per runner (one per process-pool worker) from the
:class:`~repro.faults.plan.FaultPlan` carried by the harness config.  All
decisions reduce to::

    Random(f"{seed}|{site}|{key}").random() < rate
    and (persistent or attempt_offset + attempt < max_fires)

``random.Random`` seeded with a string hashes it with SHA-512 (CPython's
``version=2`` seeding), so the decision is stable across processes and
interpreter runs — no ``PYTHONHASHSEED`` dependence.

The *attempt* is ambient: the engine's retry wrapper brackets each attempt
of a work unit in :meth:`FaultInjector.attempt`, and every site check in
that dynamic extent sees the attempt number (thread-local, so the thread
engine's concurrent units do not interfere).
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from typing import Callable, Optional


class InjectedFault(RuntimeError):
    """Base class of every injected failure; carries its site name."""

    site = "?"


class InjectedCompilerCrash(InjectedFault):
    """An internal compiler crash — deliberately *not* a CompileError."""

    site = "compile"


class InjectedRuntimeCrash(InjectedFault):
    """A transient harness-level crash during an iteration — deliberately
    *not* an AccRuntimeError, so it is never classified as a test verdict."""

    site = "iteration"


class InjectedJournalTear(InjectedFault):
    """A simulated crash mid-journal-append: the writer leaves a torn
    (half-written, unterminated) record on disk and this escapes to the
    top level like the process dying would.  The resume path's torn-tail
    truncation is what heals it."""

    site = "journal"


class InjectedSegmentCorruption(InjectedFault):
    """A simulated node/disk failure against one ShardedJournal segment:
    trailing garbage bytes land in the routed ``<base>.shardK`` file and
    this escapes like the shard dying mid-write.  The torn-tail rule
    truncates the garbage on resume; ``repro journal fsck`` reports it."""

    site = "segment"


class FaultInjector:
    """Fires the sites of one :class:`~repro.faults.plan.FaultPlan`.

    ``sleeper`` (default :func:`time.sleep`) performs injected stalls and
    is injectable so tests can fake the clock.
    """

    enabled = True

    def __init__(self, plan, sleeper: Callable[[float], None] = time.sleep):
        self.plan = plan
        self.sleeper = sleeper
        self._local = threading.local()

    # -------------------------------------------------------- attempt scope

    @contextmanager
    def attempt(self, unit_key: str, attempt: int):
        """Bracket one attempt of a work unit; site checks inside see it."""
        prev = getattr(self._local, "attempt", None)
        self._local.attempt = attempt
        try:
            yield
        finally:
            self._local.attempt = prev

    def current_attempt(self) -> int:
        attempt = getattr(self._local, "attempt", None)
        return 0 if attempt is None else attempt

    # ----------------------------------------------------------- decisions

    def fires(self, site: str, rate: float, key: str,
              attempt: Optional[int] = None) -> bool:
        """Deterministic decision for one site invocation."""
        if rate <= 0.0:
            return False
        plan = self.plan
        if attempt is None:
            attempt = self.current_attempt()
        if not plan.persistent and plan.attempt_offset + attempt >= plan.max_fires:
            return False
        return random.Random(f"{plan.seed}|{site}|{key}").random() < rate

    # --------------------------------------------------------------- sites

    def compile_site(self, key: str) -> None:
        """Called by :class:`FaultyCompiler` before every real compile."""
        if self.fires("compile", self.plan.compile_crash, key):
            raise InjectedCompilerCrash(
                f"injected internal compiler crash (key={key!r})"
            )

    def iteration_site(self, key: str) -> None:
        """Called before each iteration; may stall, then may crash."""
        if self.fires("stall", self.plan.stall, key):
            self.sleeper(self.plan.stall_s)
        if self.fires("iteration", self.plan.iteration_crash, key):
            raise InjectedRuntimeCrash(
                f"injected transient runtime crash (key={key!r})"
            )

    def worker_site(self, key: str, attempt: int) -> bool:
        """Should this process-pool worker die now?  (The caller performs
        the ``os._exit`` — only ever inside a pool worker.)"""
        return self.fires("worker", self.plan.worker_death, key,
                          attempt=attempt)

    def journal_site(self, key: str, generation: int) -> bool:
        """Should this journal append tear?  (The JournalWriter performs
        the partial write and raises :class:`InjectedJournalTear`.)  The
        journal's resume generation is the attempt number, so a torn
        write does not recur after the campaign is resumed."""
        return self.fires("journal", self.plan.journal_torn, key,
                          attempt=generation)

    # ----------------------------------------------------- distributed sites

    def shard_site(self, key: str, attempt: int) -> bool:
        """Should this shard thread die now?  (The ShardsEngine's shard
        exits mid-unit; the coordinator respawns it up to the pool-death
        budget, then falls back to running the remainder serially.)"""
        return self.fires("shard_death", self.plan.shard_death, key,
                          attempt=attempt)

    def pod_site(self, key: str, attempt: int) -> bool:
        """Should this simk8s pod fail its job?  (The pod flips to the
        ``Failed`` phase; the controller resubmits with a bumped attempt
        or degrades past ``max_pod_failures``.)"""
        return self.fires("pod", self.plan.pod_failure, key, attempt=attempt)

    def conn_site(self, key: str, attempt: int) -> bool:
        """Should the server drop this connection mid-frame?  (A prefix
        of the response line is written, then the socket closes.)"""
        return self.fires("conn", self.plan.conn_drop, key, attempt=attempt)

    def frame_site(self, key: str, attempt: int) -> bool:
        """Should the server garble this ``repro.server/v1`` line?  (The
        frame's bytes are corrupted but the stream keeps its newline
        framing; the client treats it as a transport fault.)"""
        return self.fires("frame", self.plan.frame_garble, key,
                          attempt=attempt)

    def slow_client_site(self, key: str, attempt: int) -> bool:
        """Should this tail subscriber stall?  (The server's tail
        coroutine sleeps ``stall_s`` before draining its queue, the way a
        slow client would stop reading — the bounded subscriber queue
        evicts oldest and counts the drops.)"""
        return self.fires("slow_client", self.plan.slow_client, key,
                          attempt=attempt)

    def segment_site(self, key: str, generation: int) -> bool:
        """Should this sharded-journal append corrupt its segment?  (The
        ShardedJournal writes trailing garbage to the routed segment and
        raises :class:`InjectedSegmentCorruption`.)  Keyed on the resume
        generation like the ``journal`` site, so the corruption is
        transient across resumes."""
        return self.fires("segment", self.plan.segment_corrupt, key,
                          attempt=generation)


class NullInjector:
    """The default injector: nothing ever fires, nothing is allocated."""

    enabled = False
    plan = None

    @contextmanager
    def attempt(self, unit_key: str, attempt: int):
        yield

    def current_attempt(self) -> int:
        return 0

    def fires(self, site: str, rate: float, key: str,
              attempt: Optional[int] = None) -> bool:
        return False

    def compile_site(self, key: str) -> None:
        pass

    def iteration_site(self, key: str) -> None:
        pass

    def worker_site(self, key: str, attempt: int) -> bool:
        return False

    def journal_site(self, key: str, generation: int) -> bool:
        return False

    def shard_site(self, key: str, attempt: int) -> bool:
        return False

    def pod_site(self, key: str, attempt: int) -> bool:
        return False

    def conn_site(self, key: str, attempt: int) -> bool:
        return False

    def frame_site(self, key: str, attempt: int) -> bool:
        return False

    def slow_client_site(self, key: str, attempt: int) -> bool:
        return False

    def segment_site(self, key: str, generation: int) -> bool:
        return False


NULL_INJECTOR = NullInjector()


class FaultyCompiler:
    """Proxy around a :class:`~repro.compiler.pipeline.Compiler` that fires
    the ``compile`` site before delegating.

    The injected exception is raised *from inside* ``compile`` so the
    compile cache's never-raises contract is exercised exactly as a real
    internal compiler crash would exercise it.
    """

    def __init__(self, inner, injector: FaultInjector):
        self.inner = inner
        self.injector = injector

    @property
    def behavior(self):
        return self.inner.behavior

    def compile(self, source: str, language: str = "c",
                name: str = "<test>"):
        self.injector.compile_site(name)
        return self.inner.compile(source, language, name)

    def validate(self, program):
        return self.inner.validate(program)
