"""The :class:`FaultPlan`: a declarative, picklable fault-injection spec.

A plan is plain frozen data — it travels inside
:class:`~repro.harness.config.HarnessConfig` to process-pool workers, and
every :class:`~repro.faults.injector.FaultInjector` built from the same
plan makes identical decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

#: named injection sites, in documentation order (the first five are the
#: in-process sites of PR 3; the rest are the distributed sites — shard
#: coordinator, simk8s control plane, campaign-server wire protocol and
#: sharded-journal segments)
FAULT_SITES = ("compile", "iteration", "worker", "stall", "journal",
               "shard_death", "pod", "conn", "frame", "slow_client",
               "segment")

#: parse() aliases: CLI token -> dataclass field
_SITE_FIELDS = {
    "compile": "compile_crash",
    "iteration": "iteration_crash",
    "worker": "worker_death",
    "stall": "stall",
    "journal": "journal_torn",
    "shard_death": "shard_death",
    "pod": "pod_failure",
    "conn": "conn_drop",
    "frame": "frame_garble",
    "slow_client": "slow_client",
    "segment": "segment_corrupt",
}
_OPTION_FIELDS = {
    "seed": ("seed", int),
    "stall-s": ("stall_s", float),
    "stall_s": ("stall_s", float),
    "max-fires": ("max_fires", int),
    "max_fires": ("max_fires", int),
}


@dataclass(frozen=True)
class FaultPlan:
    """Which faults to inject, where, and how often.

    ``max_fires`` bounds how many *attempts* of a unit observe its faults:
    with the default 1 every injected fault is transient — it fires on the
    first attempt and heals on retry/recheck — which is what makes the
    healed run byte-identical to the fault-free run.  ``persistent=True``
    makes every fault fire on every attempt, the test vector for the
    exhausted-retries (``HARNESS_ERROR``) and quarantine paths.

    ``attempt_offset`` shifts the attempt counter for every decision; the
    Titan harness uses it so that a re-check or recovery probe counts as a
    later attempt of the same unit (transient faults do not recur).
    """

    seed: int = 0
    #: rate of internal compiler crashes, per compile site
    compile_crash: float = 0.0
    #: rate of transient runtime crashes, per (template, phase, iteration)
    iteration_crash: float = 0.0
    #: rate of worker-process deaths, per work unit (process policy only)
    worker_death: float = 0.0
    #: rate of wall-clock stalls, per (template, phase, iteration)
    stall: float = 0.0
    #: rate of torn journal writes (a simulated crash mid-append: half the
    #: record reaches the disk, then the process "dies"), per work unit;
    #: the attempt number is the journal's resume generation, so a torn
    #: write is transient across resumes unless ``persistent``
    journal_torn: float = 0.0
    #: rate of shard deaths, per work unit (the ``shards`` backend's thread
    #: exits mid-unit, like a node dropping off the network; past the
    #: engine's respawn budget the remainder runs serially)
    shard_death: float = 0.0
    #: rate of simk8s pod-phase failures, per job submission (the pod goes
    #: ``Failed``; past ``max_pod_failures`` the unit degrades to a
    #: HARNESS_ERROR row)
    pod_failure: float = 0.0
    #: rate of campaign-server connection drops mid-frame, per request (a
    #: prefix of the response line reaches the client, then the socket
    #: closes — the client's retry policy is what heals it)
    conn_drop: float = 0.0
    #: rate of torn/garbled ``repro.server/v1`` lines, per streamed record
    #: frame (the bytes parse as neither JSON nor a checksummed record;
    #: the tail client reconnects and dedups by ``seq``)
    frame_garble: float = 0.0
    #: rate of stalled tail subscribers, per tail session (the server-side
    #: stand-in for a slow client: the subscriber stops draining for
    #: ``stall_s`` while the campaign keeps emitting — the bounded queue's
    #: drop-oldest eviction is what keeps server memory flat)
    slow_client: float = 0.0
    #: rate of ShardedJournal segment corruption, per append (trailing
    #: garbage lands in the routed ``<base>.shardK`` segment and the
    #: simulated crash escapes; the attempt number is the segment's resume
    #: generation, so the corruption is transient across resumes)
    segment_corrupt: float = 0.0
    #: how long one injected stall sleeps
    stall_s: float = 0.05
    #: attempts of a unit that observe its faults (1 = transient)
    max_fires: int = 1
    #: added to every attempt number (rechecks/probes count as later attempts)
    attempt_offset: int = 0
    #: fire on every attempt, regardless of max_fires
    persistent: bool = False

    def __post_init__(self) -> None:
        for name in _SITE_FIELDS.values():
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"fault rate {name} must be in [0, 1], got {rate}"
                )
        if self.stall_s < 0.0:
            raise ValueError(f"stall_s must be >= 0, got {self.stall_s}")
        if self.max_fires < 1:
            raise ValueError(f"max_fires must be >= 1, got {self.max_fires}")
        if self.attempt_offset < 0:
            raise ValueError(
                f"attempt_offset must be >= 0, got {self.attempt_offset}"
            )

    @property
    def active(self) -> bool:
        """Does this plan inject anything at all?"""
        return any(
            getattr(self, field) > 0.0 for field in _SITE_FIELDS.values()
        )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a CLI spec like ``'worker=0.5,iteration=0.2,seed=7'``.

        Tokens: ``<site>=<rate>`` for every site in :data:`FAULT_SITES`
        (``compile``, ``iteration``, ``worker``, ``stall``, ``journal``,
        ``shard_death``, ``pod``, ``conn``, ``frame``, ``slow_client``,
        ``segment``); options ``seed=N``, ``stall-s=F``, ``max-fires=N``;
        flag ``persistent``.
        """
        kwargs: dict = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if token == "persistent":
                kwargs["persistent"] = True
                continue
            if "=" not in token:
                raise ValueError(
                    f"bad fault token {token!r}: expected site=rate, "
                    f"seed=N, stall-s=F, max-fires=N or 'persistent' "
                    f"(sites: {', '.join(FAULT_SITES)})"
                )
            name, _, value = token.partition("=")
            name = name.strip()
            value = value.strip()
            try:
                if name in _SITE_FIELDS:
                    kwargs[_SITE_FIELDS[name]] = float(value)
                elif name in _OPTION_FIELDS:
                    field, convert = _OPTION_FIELDS[name]
                    kwargs[field] = convert(value)
                else:
                    raise ValueError(
                        f"unknown fault site/option {name!r} "
                        f"(sites: {', '.join(FAULT_SITES)}; options: "
                        "seed, stall-s, max-fires, persistent)"
                    )
            except ValueError as err:
                if "unknown fault" in str(err) or "bad fault" in str(err):
                    raise
                raise ValueError(
                    f"bad value {value!r} for fault option {name!r}"
                ) from None
        return cls(**kwargs)

    def describe(self) -> str:
        """Stable one-line summary (logs, trace metadata)."""
        parts = [f"seed={self.seed}"]
        for token, field in _SITE_FIELDS.items():
            rate = getattr(self, field)
            if rate > 0.0:
                parts.append(f"{token}={rate:g}")
        if self.stall > 0.0:
            parts.append(f"stall-s={self.stall_s:g}")
        if self.persistent:
            parts.append("persistent")
        elif self.max_fires != 1:
            parts.append(f"max-fires={self.max_fires}")
        return ",".join(parts)


assert set(_SITE_FIELDS) == set(FAULT_SITES)
assert all(f.name in {
    "seed", "compile_crash", "iteration_crash", "worker_death", "stall",
    "journal_torn", "shard_death", "pod_failure", "conn_drop",
    "frame_garble", "slow_client", "segment_corrupt",
    "stall_s", "max_fires", "attempt_offset", "persistent",
} for f in fields(FaultPlan))
