"""Seeded chaos schedules: every fault site armed at once (``repro.faults``).

The individual sites prove one failure mode each; a *chaos schedule*
proves the composition.  :class:`ChaosSchedule` arms every documented
site — the in-process ones (compile/iteration/worker/stall/journal),
the scheduler ones (shard_death/pod/segment) and the campaign-server
wire ones (conn/frame/slow_client) — from one seed, split into the two
plans the system actually takes:

* :meth:`ChaosSchedule.runner_plan` travels inside the submission's
  ``config.fault_plan`` and fires inside the campaign (workers, shards,
  pods, journal segments);
* :meth:`ChaosSchedule.server_plan` arms the server process itself
  (``repro serve --inject-faults`` / ``serve_in_thread(fault_plan=...)``)
  and fires on the wire protocol.

Every fault is *transient* (``max_fires=1``): each decision key fires
once and heals on the next attempt, resume generation, or client retry.
That is the invariant the chaos suite leans on — a chaotic campaign
driven with :func:`drive_to_completion` always terminates ``done``, and
its report is byte-identical to a fault-free run of the same spec,
because every layer's recovery path (engine retry, pod resubmit, shard
respawn, journal resume, client retry/reconnect, watchdog requeue)
converges on the same completed unit set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import FaultPlan

#: sites that fire inside the campaign (armed via ``config.fault_plan``)
RUNNER_SITES = ("compile", "iteration", "worker", "stall", "journal",
                "shard_death", "pod", "segment")
#: sites that fire inside the server process (armed via ``--inject-faults``)
SERVER_SITES = ("conn", "frame", "slow_client")

#: FaultPlan field behind each site token (mirrors plan._SITE_FIELDS)
_FIELDS = {
    "compile": "compile_crash",
    "iteration": "iteration_crash",
    "worker": "worker_death",
    "stall": "stall",
    "journal": "journal_torn",
    "shard_death": "shard_death",
    "pod": "pod_failure",
    "segment": "segment_corrupt",
    "conn": "conn_drop",
    "frame": "frame_garble",
    "slow_client": "slow_client",
}


@dataclass(frozen=True)
class ChaosSchedule:
    """One seed, every site, both sides of the wire.

    ``rate`` is the per-site firing probability (1.0 = every decision
    key fires once); ``stall_s`` bounds each injected stall — keep it
    well under the server's ``watchdog_s`` unless the point of the test
    is to trip the watchdog.
    """

    seed: int = 0
    rate: float = 1.0
    stall_s: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.stall_s < 0.0:
            raise ValueError(f"stall_s must be >= 0, got {self.stall_s}")

    def _plan(self, sites) -> FaultPlan:
        kwargs = {_FIELDS[site]: self.rate for site in sites}
        return FaultPlan(seed=self.seed, stall_s=self.stall_s, **kwargs)

    def runner_plan(self) -> FaultPlan:
        """The campaign-side plan (travels in ``config.fault_plan``)."""
        return self._plan(RUNNER_SITES)

    def server_plan(self) -> FaultPlan:
        """The server-side plan (wire protocol sites)."""
        return self._plan(SERVER_SITES)

    def apply(self, spec: dict) -> dict:
        """Return a copy of a submission spec with the runner plan armed
        in its config (``describe()`` round-trips through
        ``FaultPlan.parse``, which is how the spec string survives the
        protocol's config normalization)."""
        spec = dict(spec)
        config = dict(spec.get("config") or {})
        config["fault_plan"] = self.runner_plan().describe()
        spec["config"] = config
        return spec


def drive_to_completion(client, spec, *, max_resubmits: int = 8,
                        wait_timeout_s: float = 600.0):
    """Submit ``spec`` and drive it to ``done`` through any injected
    crash: a campaign that lands ``failed`` (torn journal, corrupted
    segment, watchdog give-up) is resubmitted — resume replays its
    journaled units — until it completes or ``max_resubmits`` is spent.

    Returns ``(info, resubmits)``: the terminal campaign info dict and
    how many resubmissions the chaos cost.  Raises ``RuntimeError`` if
    the campaign will not converge, which is precisely the regression
    this harness exists to catch.
    """
    cid = client.submit(spec)["id"]
    info = client.wait(cid, timeout_s=wait_timeout_s)
    resubmits = 0
    while info["state"] != "done":
        if resubmits >= max_resubmits:
            raise RuntimeError(
                f"campaign {cid} failed to converge after {resubmits} "
                f"resubmit(s); last state {info['state']!r} "
                f"(error: {info.get('error')!r})"
            )
        resubmits += 1
        client.resubmit(cid)
        info = client.wait(cid, timeout_s=wait_timeout_s)
    return info, resubmits
