"""Deterministic fault injection (``repro.faults``).

The paper's production story (Section VII) is the suite running unattended
on Titan's flaky nodes: workers die, runs stall, the tooling itself crashes
— and the harness has to keep the campaign's bookkeeping straight anyway.
This package is the *test double* for every robustness claim the harness
makes: a seeded :class:`FaultPlan` describes which failures to inject at
which named sites and at what rates, and a :class:`FaultInjector` fires
them deterministically.

Sites (each checked at a well-defined point in the execution layer):

* ``compile`` — the compiler raises an *internal* error (not a
  :class:`~repro.compiler.errors.CompileError` diagnostic), via the
  :class:`FaultyCompiler` proxy;
* ``iteration`` — a transient runtime crash before iteration *k* of a
  phase;
* ``worker`` — a process-pool worker dies mid-unit (``os._exit``); only
  fired inside process workers;
* ``stall`` — a wall-clock stall before an iteration, long enough to trip
  the per-template timeout;
* ``journal`` — a torn write mid-journal-append (half the record reaches
  the disk, then the simulated crash escapes), the test vector for the
  durable-campaign resume path.

Distributed sites (the failure modes of the :mod:`repro.sched` backends
and the :mod:`repro.server` campaign server):

* ``shard_death`` — a ``shards`` backend worker thread exits mid-unit;
  the coordinator respawns it up to the pool-death budget, then runs the
  remainder serially;
* ``pod`` — a simk8s pod flips to ``Failed``; the controller resubmits
  with a bumped attempt or degrades the unit past ``max_pod_failures``;
* ``conn`` — the campaign server drops a connection mid-frame (a prefix
  of the response line reaches the client); the client's retry policy
  heals it;
* ``frame`` — a ``repro.server/v1`` line is garbled on the wire; the
  tail client reconnects and dedups by ``seq``;
* ``slow_client`` — a tail subscriber stalls for ``stall_s``; the
  bounded subscriber queue evicts oldest and reports the drop count;
* ``segment`` — one ShardedJournal ``<base>.shardK`` segment gains
  trailing garbage mid-append and the simulated crash escapes; resume
  truncates it and ``repro journal fsck`` reports it.

:mod:`repro.faults.chaos` composes every site into a seeded
:class:`ChaosSchedule` and drives a server-hosted campaign under it.

Determinism guarantee: whether a site fires depends only on
``(plan.seed, site, key, attempt)`` — never on scheduling, wall-clock or
process identity — so serial, thread and process runs of the same plan
inject the same faults, and a healed (retried) run reproduces the
fault-free run byte for byte.
"""

from repro.faults.plan import FAULT_SITES, FaultPlan
from repro.faults.chaos import ChaosSchedule, drive_to_completion
from repro.faults.injector import (
    FaultInjector,
    FaultyCompiler,
    InjectedCompilerCrash,
    InjectedFault,
    InjectedJournalTear,
    InjectedRuntimeCrash,
    InjectedSegmentCorruption,
    NULL_INJECTOR,
    NullInjector,
)

__all__ = [
    "FAULT_SITES", "FaultPlan",
    "ChaosSchedule", "drive_to_completion",
    "FaultInjector", "FaultyCompiler",
    "InjectedCompilerCrash", "InjectedFault", "InjectedJournalTear",
    "InjectedRuntimeCrash", "InjectedSegmentCorruption",
    "NULL_INJECTOR", "NullInjector",
]
