"""Deterministic fault injection (``repro.faults``).

The paper's production story (Section VII) is the suite running unattended
on Titan's flaky nodes: workers die, runs stall, the tooling itself crashes
— and the harness has to keep the campaign's bookkeeping straight anyway.
This package is the *test double* for every robustness claim the harness
makes: a seeded :class:`FaultPlan` describes which failures to inject at
which named sites and at what rates, and a :class:`FaultInjector` fires
them deterministically.

Sites (each checked at a well-defined point in the execution layer):

* ``compile`` — the compiler raises an *internal* error (not a
  :class:`~repro.compiler.errors.CompileError` diagnostic), via the
  :class:`FaultyCompiler` proxy;
* ``iteration`` — a transient runtime crash before iteration *k* of a
  phase;
* ``worker`` — a process-pool worker dies mid-unit (``os._exit``); only
  fired inside process workers;
* ``stall`` — a wall-clock stall before an iteration, long enough to trip
  the per-template timeout;
* ``journal`` — a torn write mid-journal-append (half the record reaches
  the disk, then the simulated crash escapes), the test vector for the
  durable-campaign resume path.

Determinism guarantee: whether a site fires depends only on
``(plan.seed, site, key, attempt)`` — never on scheduling, wall-clock or
process identity — so serial, thread and process runs of the same plan
inject the same faults, and a healed (retried) run reproduces the
fault-free run byte for byte.
"""

from repro.faults.plan import FAULT_SITES, FaultPlan
from repro.faults.injector import (
    FaultInjector,
    FaultyCompiler,
    InjectedCompilerCrash,
    InjectedFault,
    InjectedJournalTear,
    InjectedRuntimeCrash,
    NULL_INJECTOR,
    NullInjector,
)

__all__ = [
    "FAULT_SITES", "FaultPlan",
    "FaultInjector", "FaultyCompiler",
    "InjectedCompilerCrash", "InjectedFault", "InjectedJournalTear",
    "InjectedRuntimeCrash",
    "NULL_INJECTOR", "NullInjector",
]
