"""Tests for the OpenACC 1.0 runtime library routines.

The async family follows Fig. 10 (``acc_async_test`` must observe
incompleteness before a wait); the device-management routines check the
standard-guaranteed relations only — Section V-C documents that the
*concrete* type behind ``acc_device_not_host`` is implementation-defined,
so the tests assert "not host, not none" rather than a vendor name.
Several routines have no meaningful cross variant (there is no directive to
remove); they are functional-only, which the harness reports as such.
"""

from __future__ import annotations

from typing import List

from repro.suite.builders import check, cross, swap, template_text


def templates() -> List[str]:
    out: List[str] = []
    out.extend(_get_num_devices())
    out.extend(_device_type())
    out.extend(_device_num())
    out.extend(_async_test())
    out.extend(_async_test_all())
    out.extend(_async_wait())
    out.extend(_async_wait_all())
    out.extend(_init())
    out.extend(_shutdown())
    out.extend(_on_device())
    out.extend(_malloc())
    out.extend(_free())
    return out


def _simple_pair(name: str, feature: str, c_code: str, f_code: str,
                 description: str, deps=(), crossexpect="different") -> List[str]:
    defaults = {"N": 40}
    return [
        template_text(name=f"{name}.c", feature=feature, language="c",
                      description=description, dependences=list(deps),
                      defaults=defaults, crossexpect=crossexpect, code=c_code),
        template_text(name=f"{name}.f", feature=feature, language="fortran",
                      description=description, dependences=list(deps),
                      defaults=defaults, crossexpect=crossexpect, code=f_code),
    ]


def _get_num_devices() -> List[str]:
    c_code = """
int main() {
  int nd = acc_get_num_devices(acc_device_not_host);
  return (nd >= 1);
}
"""
    f_code = """
program test_get_num_devices
  implicit none
  integer :: nd
  nd = acc_get_num_devices(acc_device_not_host)
  if (nd >= 1) main = 1
end program test_get_num_devices
"""
    return _simple_pair(
        "acc_get_num_devices", "runtime.acc_get_num_devices", c_code, f_code,
        "At least one attached accelerator must be reported for "
        "acc_device_not_host on the testbed configuration.",
    )


def _device_type() -> List[str]:
    c_code = """
int main() {
  int ok = 1;
  acc_set_device_type(acc_device_not_host);
  if (acc_get_device_type() == acc_device_host) ok = 0;
  if (acc_get_device_type() == acc_device_none) ok = 0;
  return ok;
}
"""
    f_code = """
program test_device_type
  implicit none
  integer :: ok
  ok = 1
  call acc_set_device_type(acc_device_not_host)
  if (acc_get_device_type() == acc_device_host) ok = 0
  if (acc_get_device_type() == acc_device_none) ok = 0
  main = ok
end program test_device_type
"""
    return _simple_pair(
        "acc_set_get_device_type", "runtime.acc_set_device_type",
        c_code, f_code,
        "After requesting acc_device_not_host the reported type must be an "
        "accelerator.  (Fig. 12: the concrete name is implementation-"
        "defined, so only the host/none exclusions are standard.)",
        deps=("runtime.acc_get_device_type",),
    )


def _device_num() -> List[str]:
    c_code = """
int main() {
  int ok = 1;
  acc_set_device_num(0, acc_device_not_host);
  if (acc_get_device_num(acc_device_not_host) != 0) ok = 0;
  return ok;
}
"""
    f_code = """
program test_device_num
  implicit none
  integer :: ok
  ok = 1
  call acc_set_device_num(0, acc_device_not_host)
  if (acc_get_device_num(acc_device_not_host) /= 0) ok = 0
  main = ok
end program test_device_num
"""
    return _simple_pair(
        "acc_set_get_device_num", "runtime.acc_set_device_num",
        c_code, f_code,
        "Setting device number 0 must be reflected by acc_get_device_num.",
        deps=("runtime.acc_get_device_num",),
    )


def _async_test() -> List[str]:
    c_code = f"""
int main() {{
  int i, ok = 1, is_sync = -1;
  int n = {{{{N}}}}, tag = 2;
  int a[{{{{N}}}}], c[{{{{N}}}}];
  for(i=0; i<n; i++){{ a[i]=i; c[i]=0; }}
  #pragma acc kernels copyin(a[0:n]) copy(c[0:n]) async(tag)
  for(i=0; i<n; i++)
    c[i] = a[i] + a[i];
  is_sync = acc_async_test(tag);
  if (is_sync != 0) ok = 0;
  {check("#pragma acc wait(tag)")}
  is_sync = acc_async_test(tag);
  if (is_sync == 0) ok = 0;
  return ok;
}}
"""
    f_code = f"""
program test_acc_async_test
  implicit none
  integer :: i, ok, is_sync, n, tag
  integer :: a({{{{N}}}}), c({{{{N}}}})
  n = {{{{N}}}}
  tag = 2
  ok = 1
  is_sync = -1
  do i = 1, n
    a(i) = i
    c(i) = 0
  end do
  !$acc kernels copyin(a(1:n)) copy(c(1:n)) async(tag)
  do i = 1, n
    c(i) = a(i) + a(i)
  end do
  !$acc end kernels
  is_sync = acc_async_test(tag)
  if (is_sync /= 0) ok = 0
  {check("!$acc wait(tag)")}
  is_sync = acc_async_test(tag)
  if (is_sync == 0) ok = 0
  main = ok
end program test_acc_async_test
"""
    return _simple_pair(
        "acc_async_test", "runtime.acc_async_test", c_code, f_code,
        "acc_async_test returns 0 while the tagged queue is busy and nonzero "
        "after the wait (Fig. 10); the cross removes the wait so the second "
        "probe must still see pending work.",
        deps=("kernels.async", "wait"),
    )


def _async_test_all() -> List[str]:
    c_code = f"""
int main() {{
  int i, ok = 1, is_sync = -1;
  int n = {{{{N}}}};
  int a[{{{{N}}}}], c[{{{{N}}}}];
  for(i=0; i<n; i++){{ a[i]=i; c[i]=0; }}
  #pragma acc kernels copyin(a[0:n]) copy(c[0:n]) async(1)
  for(i=0; i<n; i++)
    c[i] = a[i] * 3;
  is_sync = acc_async_test_all();
  if (is_sync != 0) ok = 0;
  {check("#pragma acc wait")}
  is_sync = acc_async_test_all();
  if (is_sync == 0) ok = 0;
  return ok;
}}
"""
    f_code = f"""
program test_acc_async_test_all
  implicit none
  integer :: i, ok, is_sync, n
  integer :: a({{{{N}}}}), c({{{{N}}}})
  n = {{{{N}}}}
  ok = 1
  is_sync = -1
  do i = 1, n
    a(i) = i
    c(i) = 0
  end do
  !$acc kernels copyin(a(1:n)) copy(c(1:n)) async(1)
  do i = 1, n
    c(i) = a(i) * 3
  end do
  !$acc end kernels
  is_sync = acc_async_test_all()
  if (is_sync /= 0) ok = 0
  {check("!$acc wait")}
  is_sync = acc_async_test_all()
  if (is_sync == 0) ok = 0
  main = ok
end program test_acc_async_test_all
"""
    return _simple_pair(
        "acc_async_test_all", "runtime.acc_async_test_all", c_code, f_code,
        "acc_async_test_all covers every queue; a bare wait completes all "
        "outstanding work.",
        deps=("kernels.async", "wait"),
    )


def _async_wait() -> List[str]:
    c_code = f"""
int main() {{
  int i, ok = 1;
  int n = {{{{N}}}}, tag = 4;
  int a[{{{{N}}}}], c[{{{{N}}}}];
  for(i=0; i<n; i++){{ a[i]=i; c[i]=-1; }}
  #pragma acc data copyin(a[0:n]) copy(c[0:n])
  {{
    #pragma acc parallel loop async(tag)
    for(i=0; i<n; i++)
      c[i] = a[i] + 6;
    {check("acc_async_wait(tag);")}
    #pragma acc update host(c[0:n])
    for(i=0; i<n; i++)
      if (c[i] != a[i] + 6) ok = 0;
  }}
  return ok;
}}
"""
    f_code = f"""
program test_acc_async_wait
  implicit none
  integer :: i, ok, n, tag
  integer :: a({{{{N}}}}), c({{{{N}}}})
  n = {{{{N}}}}
  tag = 4
  ok = 1
  do i = 1, n
    a(i) = i
    c(i) = -1
  end do
  !$acc data copyin(a(1:n)) copy(c(1:n))
  !$acc parallel loop async(tag)
  do i = 1, n
    c(i) = a(i) + 6
  end do
  !$acc end parallel loop
  {check("call acc_async_wait(tag)")}
  !$acc update host(c(1:n))
  do i = 1, n
    if (c(i) /= a(i) + 6) ok = 0
  end do
  !$acc end data
  main = ok
end program test_acc_async_wait
"""
    return _simple_pair(
        "acc_async_wait", "runtime.acc_async_wait", c_code, f_code,
        "acc_async_wait must complete the tagged region before the host "
        "fetches results; the cross removes the call and reads stale data.",
        deps=("parallel.async", "update.host"),
    )


def _async_wait_all() -> List[str]:
    c_code = f"""
int main() {{
  int i, ok = 1;
  int n = {{{{N}}}};
  int a[{{{{N}}}}], c[{{{{N}}}}], d[{{{{N}}}}];
  for(i=0; i<n; i++){{ a[i]=i; c[i]=-1; d[i]=-1; }}
  #pragma acc data copyin(a[0:n]) copy(c[0:n], d[0:n])
  {{
    #pragma acc parallel loop async(1)
    for(i=0; i<n; i++)
      c[i] = a[i] + 1;
    #pragma acc parallel loop async(2)
    for(i=0; i<n; i++)
      d[i] = a[i] + 2;
    {check("acc_async_wait_all();")}
    #pragma acc update host(c[0:n], d[0:n])
    for(i=0; i<n; i++){{
      if (c[i] != a[i] + 1) ok = 0;
      if (d[i] != a[i] + 2) ok = 0;
    }}
  }}
  return ok;
}}
"""
    f_code = f"""
program test_acc_async_wait_all
  implicit none
  integer :: i, ok, n
  integer :: a({{{{N}}}}), c({{{{N}}}}), d({{{{N}}}})
  n = {{{{N}}}}
  ok = 1
  do i = 1, n
    a(i) = i
    c(i) = -1
    d(i) = -1
  end do
  !$acc data copyin(a(1:n)) copy(c(1:n), d(1:n))
  !$acc parallel loop async(1)
  do i = 1, n
    c(i) = a(i) + 1
  end do
  !$acc end parallel loop
  !$acc parallel loop async(2)
  do i = 1, n
    d(i) = a(i) + 2
  end do
  !$acc end parallel loop
  {check("call acc_async_wait_all()")}
  !$acc update host(c(1:n), d(1:n))
  do i = 1, n
    if (c(i) /= a(i) + 1) ok = 0
    if (d(i) /= a(i) + 2) ok = 0
  end do
  !$acc end data
  main = ok
end program test_acc_async_wait_all
"""
    return _simple_pair(
        "acc_async_wait_all", "runtime.acc_async_wait_all", c_code, f_code,
        "acc_async_wait_all completes work on every queue (two tags here) "
        "before the host fetches both result arrays.",
        deps=("parallel.async", "update.host"),
    )


def _init() -> List[str]:
    c_code = f"""
int main() {{
  int i, error = 0;
  int n = {{{{N}}}};
  int b[{{{{N}}}}];
  acc_init(acc_device_not_host);
  for(i=0; i<n; i++) b[i] = 0;
  #pragma acc parallel loop copy(b[0:n])
  for(i=0; i<n; i++)
    b[i] = i + 1;
  for(i=0; i<n; i++) if (b[i] != i + 1) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_acc_init
  implicit none
  integer :: i, err, n
  integer :: b({{{{N}}}})
  call acc_init(acc_device_not_host)
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    b(i) = 0
  end do
  !$acc parallel loop copy(b(1:n))
  do i = 1, n
    b(i) = i + 1
  end do
  !$acc end parallel loop
  do i = 1, n
    if (b(i) /= i + 1) err = err + 1
  end do
  if (err == 0) main = 1
end program test_acc_init
"""
    return _simple_pair(
        "acc_init", "runtime.acc_init", c_code, f_code,
        "Explicit runtime initialisation followed by an offloaded "
        "computation (functional-only: there is no cross to remove).",
        deps=("parallel loop",), crossexpect="same",
    )


def _shutdown() -> List[str]:
    c_code = f"""
int main() {{
  int i, error = 0;
  int n = {{{{N}}}};
  int b[{{{{N}}}}];
  for(i=0; i<n; i++) b[i] = 0;
  #pragma acc parallel loop copy(b[0:n])
  for(i=0; i<n; i++)
    b[i] = i * 2;
  acc_shutdown(acc_device_not_host);
  acc_init(acc_device_not_host);
  #pragma acc parallel loop copy(b[0:n])
  for(i=0; i<n; i++)
    b[i] = b[i] + 1;
  for(i=0; i<n; i++) if (b[i] != i * 2 + 1) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_acc_shutdown
  implicit none
  integer :: i, err, n
  integer :: b({{{{N}}}})
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    b(i) = 0
  end do
  !$acc parallel loop copy(b(1:n))
  do i = 1, n
    b(i) = i * 2
  end do
  !$acc end parallel loop
  call acc_shutdown(acc_device_not_host)
  call acc_init(acc_device_not_host)
  !$acc parallel loop copy(b(1:n))
  do i = 1, n
    b(i) = b(i) + 1
  end do
  !$acc end parallel loop
  do i = 1, n
    if (b(i) /= i * 2 + 1) err = err + 1
  end do
  if (err == 0) main = 1
end program test_acc_shutdown
"""
    return _simple_pair(
        "acc_shutdown", "runtime.acc_shutdown", c_code, f_code,
        "The runtime must survive a shutdown/init cycle between two "
        "offloaded computations (Fig. 12 calls acc_shutdown at test end).",
        deps=("runtime.acc_init", "parallel loop"), crossexpect="same",
    )


def _on_device() -> List[str]:
    c_code = """
int main() {
  int ondev = 0, onhost = 0;
  onhost = acc_on_device(acc_device_host);
  <acctv:check>#pragma acc parallel copy(ondev)</acctv:check>
  {
    ondev = acc_on_device(acc_device_not_host);
  }
  return (ondev == 1) && (onhost == 1);
}
"""
    f_code = """
program test_acc_on_device
  implicit none
  integer :: ondev, onhost
  ondev = 0
  onhost = acc_on_device(acc_device_host)
  <acctv:check>!$acc parallel copy(ondev)</acctv:check>
  ondev = acc_on_device(acc_device_not_host)
  <acctv:check>!$acc end parallel</acctv:check>
  if (ondev == 1 .and. onhost == 1) main = 1
end program test_acc_on_device
"""
    return _simple_pair(
        "acc_on_device", "runtime.acc_on_device", c_code, f_code,
        "acc_on_device answers for the executing context: host outside the "
        "region, accelerator inside; removing the region flips the inner "
        "answer.",
        deps=("parallel.copy",),
    )


def _malloc() -> List[str]:
    c_code = f"""
int main() {{
  int i, error = 0;
  int n = {{{{N}}}};
  int out[{{{{N}}}}];
  int *d;
  d = (int*)acc_malloc(n*sizeof(int));
  for(i=0; i<n; i++) out[i] = -1;
  #pragma acc parallel deviceptr(d) copy(out[0:n])
  {{
    #pragma acc loop
    for(i=0; i<n; i++){{
      d[i] = 5*i;
      out[i] = d[i];
    }}
  }}
  acc_free(d);
  for(i=0; i<n; i++) if (out[i] != 5*i) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_acc_malloc
  implicit none
  integer :: i, err, n
  integer :: out({{{{N}}}})
  integer :: d(1)
  n = {{{{N}}}}
  err = 0
  d = acc_malloc((n+1)*4)
  do i = 1, n
    out(i) = -1
  end do
  !$acc parallel deviceptr(d) copy(out(1:n))
  !$acc loop
  do i = 1, n
    d(i) = 5*i
    out(i) = d(i)
  end do
  !$acc end parallel
  call acc_free(d)
  do i = 1, n
    if (out(i) /= 5*i) err = err + 1
  end do
  if (err == 0) main = 1
end program test_acc_malloc
"""
    return _simple_pair(
        "acc_malloc", "runtime.acc_malloc", c_code, f_code,
        "acc_malloc memory is usable from kernels through deviceptr "
        "(IV-B5); functional-only, the allocation has no removable "
        "directive.",
        deps=("parallel.deviceptr", "runtime.acc_free"), crossexpect="same",
    )


def _free() -> List[str]:
    c_code = """
int main() {
  int ok = 1;
  int *d1, *d2;
  d1 = (int*)acc_malloc(64*sizeof(int));
  acc_free(d1);
  d2 = (int*)acc_malloc(128*sizeof(int));
  acc_free(d2);
  return ok;
}
"""
    f_code = """
program test_acc_free
  implicit none
  integer :: ok
  integer :: d1(1), d2(1)
  ok = 1
  d1 = acc_malloc(64*4)
  call acc_free(d1)
  d2 = acc_malloc(128*4)
  call acc_free(d2)
  main = ok
end program test_acc_free
"""
    return _simple_pair(
        "acc_free", "runtime.acc_free", c_code, f_code,
        "acc_free releases device heap allocations; repeated alloc/free "
        "cycles must succeed (functional-only).",
        deps=("runtime.acc_malloc",), crossexpect="same",
    )
