"""Tests for update, host_data, declare, cache and wait (Sections IV-D/E).

* ``update host`` brings device results back *inside* a data region instead
  of relying on a copyout; ``update device`` pushes host-side edits in.
* ``host_data use_device`` exposes the device address to host code, here a
  helper procedure that computes through a ``deviceptr`` binding — the
  combination the paper describes in Section IV-E.
* ``declare`` gives function-scope data lifetimes.
* ``cache`` is a performance hint: correctness must be unchanged (the cross
  expectation is `same`).
* ``wait`` synchronises previously launched async work.
"""

from __future__ import annotations

from typing import List

from repro.suite.builders import check, cross, swap, template_text


def templates() -> List[str]:
    out: List[str] = []
    out.extend(_update_host())
    out.extend(_update_device())
    out.extend(_update_if())
    out.extend(_update_async())
    out.extend(_host_data())
    out.extend(_declare())
    out.extend(_cache())
    out.extend(_wait())
    return out


# ---------------------------------------------------------------------------
# update host (IV-D): results fetched mid-region; checked before region end
# ---------------------------------------------------------------------------

def _update_host() -> List[str]:
    c_code = f"""
int main() {{
  int i, ok = 1;
  int n = {{{{N}}}};
  int a[{{{{N}}}}];
  for(i=0; i<n; i++) a[i] = i;
  #pragma acc data copyin(a[0:n])
  {{
    #pragma acc parallel loop
    for(i=0; i<n; i++)
      a[i] = a[i] * 5;
    {check("#pragma acc update host(a[0:n])")}
    for(i=0; i<n; i++)
      if (a[i] != i * 5) ok = 0;
  }}
  return ok;
}}
"""
    f_code = f"""
program test_update_host
  implicit none
  integer :: i, ok, n
  integer :: a({{{{N}}}})
  n = {{{{N}}}}
  ok = 1
  do i = 1, n
    a(i) = i
  end do
  !$acc data copyin(a(1:n))
  !$acc parallel loop
  do i = 1, n
    a(i) = a(i) * 5
  end do
  !$acc end parallel loop
  {check("!$acc update host(a(1:n))")}
  do i = 1, n
    if (a(i) /= i * 5) ok = 0
  end do
  !$acc end data
  main = ok
end program test_update_host
"""
    desc = ("Device results are fetched with update host inside the data "
            "region (the array was only copied *in*); without the update the "
            "host still sees the original values.")
    deps = ["data.copyin", "parallel loop"]
    return [
        template_text(name="update_host.c", feature="update.host",
                      language="c", description=desc, dependences=deps,
                      defaults={"N": 40}, code=c_code),
        template_text(name="update_host.f", feature="update.host",
                      language="fortran", description=desc, dependences=deps,
                      defaults={"N": 40}, code=f_code),
    ]


# ---------------------------------------------------------------------------
# update device: host-side edits pushed into an existing device copy
# ---------------------------------------------------------------------------

def _update_device() -> List[str]:
    c_code = f"""
int main() {{
  int i, error = 0;
  int n = {{{{N}}}};
  int a[{{{{N}}}}], out[{{{{N}}}}];
  for(i=0; i<n; i++){{ a[i] = 1; out[i] = 0; }}
  #pragma acc data copyin(a[0:n]) copy(out[0:n])
  {{
    for(i=0; i<n; i++)
      a[i] = i + 2;
    {check("#pragma acc update device(a[0:n])")}
    #pragma acc parallel loop
    for(i=0; i<n; i++)
      out[i] = a[i] * 3;
  }}
  for(i=0; i<n; i++) if (out[i] != (i + 2) * 3) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_update_device
  implicit none
  integer :: i, err, n
  integer :: a({{{{N}}}}), out({{{{N}}}})
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    a(i) = 1
    out(i) = 0
  end do
  !$acc data copyin(a(1:n)) copy(out(1:n))
  do i = 1, n
    a(i) = i + 2
  end do
  {check("!$acc update device(a(1:n))")}
  !$acc parallel loop
  do i = 1, n
    out(i) = a(i) * 3
  end do
  !$acc end parallel loop
  !$acc end data
  do i = 1, n
    if (out(i) /= (i + 2) * 3) err = err + 1
  end do
  if (err == 0) main = 1
end program test_update_device
"""
    desc = ("Host edits made inside the data region must be pushed with "
            "update device before the kernel reads them; without it the "
            "device still computes with the stale copy.")
    deps = ["data.copyin", "data.copy", "parallel loop"]
    return [
        template_text(name="update_device.c", feature="update.device",
                      language="c", description=desc, dependences=deps,
                      defaults={"N": 40}, code=c_code),
        template_text(name="update_device.f", feature="update.device",
                      language="fortran", description=desc, dependences=deps,
                      defaults={"N": 40}, code=f_code),
    ]


# ---------------------------------------------------------------------------
# update if: condition gates the transfer
# ---------------------------------------------------------------------------

def _update_if() -> List[str]:
    c_code = f"""
int main() {{
  int i, ok = 1;
  int n = {{{{N}}}};
  int a[{{{{N}}}}];
  for(i=0; i<n; i++) a[i] = i;
  #pragma acc data copyin(a[0:n])
  {{
    #pragma acc parallel loop
    for(i=0; i<n; i++)
      a[i] = a[i] + 10;
    #pragma acc update host(a[0:n]) {swap("if (1)", "if (0)")}
    for(i=0; i<n; i++)
      if (a[i] != i + 10) ok = 0;
  }}
  return ok;
}}
"""
    f_code = f"""
program test_update_if
  implicit none
  integer :: i, ok, n
  integer :: a({{{{N}}}})
  n = {{{{N}}}}
  ok = 1
  do i = 1, n
    a(i) = i
  end do
  !$acc data copyin(a(1:n))
  !$acc parallel loop
  do i = 1, n
    a(i) = a(i) + 10
  end do
  !$acc end parallel loop
  !$acc update host(a(1:n)) {swap("if (1 == 1)", "if (1 == 0)")}
  do i = 1, n
    if (a(i) /= i + 10) ok = 0
  end do
  !$acc end data
  main = ok
end program test_update_if
"""
    desc = ("The if clause on update gates the transfer; with a false "
            "condition (cross) the host never receives the device values.")
    deps = ["update.host", "data.copyin", "parallel loop"]
    return [
        template_text(name="update_if.c", feature="update.if", language="c",
                      description=desc, dependences=deps, defaults={"N": 40},
                      code=c_code),
        template_text(name="update_if.f", feature="update.if",
                      language="fortran", description=desc, dependences=deps,
                      defaults={"N": 40}, code=f_code),
    ]


# ---------------------------------------------------------------------------
# update async: the transfer is queued and only lands at the wait
# ---------------------------------------------------------------------------

def _update_async() -> List[str]:
    c_code = f"""
int main() {{
  int i, ok = 1, before_wait = 1;
  int n = {{{{N}}}}, tag = 7;
  int a[{{{{N}}}}];
  for(i=0; i<n; i++) a[i] = i;
  #pragma acc data copyin(a[0:n])
  {{
    #pragma acc parallel loop
    for(i=0; i<n; i++)
      a[i] = a[i] + 100;
    #pragma acc update host(a[0:n]) {check("async(tag)")}
    for(i=0; i<n; i++)
      if (a[i] != i) before_wait = 0;
    #pragma acc wait(tag)
    for(i=0; i<n; i++)
      if (a[i] != i + 100) ok = 0;
  }}
  return (ok == 1) && (before_wait == 1);
}}
"""
    f_code = f"""
program test_update_async
  implicit none
  integer :: i, ok, before_wait, n, tag
  integer :: a({{{{N}}}})
  n = {{{{N}}}}
  tag = 7
  ok = 1
  before_wait = 1
  do i = 1, n
    a(i) = i
  end do
  !$acc data copyin(a(1:n))
  !$acc parallel loop
  do i = 1, n
    a(i) = a(i) + 100
  end do
  !$acc end parallel loop
  !$acc update host(a(1:n)) {check("async(tag)")}
  do i = 1, n
    if (a(i) /= i) before_wait = 0
  end do
  !$acc wait(tag)
  do i = 1, n
    if (a(i) /= i + 100) ok = 0
  end do
  !$acc end data
  if (ok == 1 .and. before_wait == 1) main = 1
end program test_update_async
"""
    desc = ("An asynchronous update must not have landed before the wait "
            "(the host still sees the original values) and must have landed "
            "after it; without async the first check already sees new data.")
    deps = ["update.host", "wait", "data.copyin", "parallel loop"]
    return [
        template_text(name="update_async.c", feature="update.async",
                      language="c", description=desc, dependences=deps,
                      defaults={"N": 40}, code=c_code),
        template_text(name="update_async.f", feature="update.async",
                      language="fortran", description=desc, dependences=deps,
                      defaults={"N": 40}, code=f_code),
    ]


# ---------------------------------------------------------------------------
# host_data use_device (IV-E): pass the device address to a helper procedure
# ---------------------------------------------------------------------------

def _host_data() -> List[str]:
    c_code = f"""
void scale_on_device(int *p, int n) {{
  int j;
  #pragma acc parallel deviceptr(p)
  {{
    #pragma acc loop
    for(j=0; j<n; j++)
      p[j] = p[j] * 2;
  }}
}}

int main() {{
  int i, error = 0;
  int n = {{{{N}}}};
  int a[{{{{N}}}}];
  for(i=0; i<n; i++) a[i] = i + 1;
  #pragma acc data copy(a[0:n])
  {{
    {check("#pragma acc host_data use_device(a)")}
    {{
      scale_on_device(a, n);
    }}
  }}
  for(i=0; i<n; i++) if (a[i] != (i + 1) * 2) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_host_data
  implicit none
  integer :: i, err, n
  integer :: a({{{{N}}}})
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    a(i) = i + 1
  end do
  !$acc data copy(a(1:n))
  {check("!$acc host_data use_device(a)")}
  call scale_on_device(a, n)
  {check("!$acc end host_data")}
  !$acc end data
  do i = 1, n
    if (a(i) /= (i + 1) * 2) err = err + 1
  end do
  if (err == 0) main = 1
end program test_host_data

subroutine scale_on_device(p, n)
  implicit none
  integer :: n, j
  integer :: p(n)
  !$acc parallel deviceptr(p)
  !$acc loop
  do j = 1, n
    p(j) = p(j) * 2
  end do
  !$acc end parallel
end subroutine scale_on_device
"""
    desc = ("host_data use_device hands the device address to host code; "
            "the helper scales the device copy through deviceptr and the "
            "enclosing copy region brings the results home (IV-E).  Without "
            "host_data the helper scales the host copy, which the copyout "
            "then overwrites with stale device data.")
    deps = ["data.copy", "parallel.deviceptr"]
    return [
        template_text(name="host_data_use_device.c",
                      feature="host_data.use_device", language="c",
                      description=desc, dependences=deps, defaults={"N": 30},
                      code=c_code),
        template_text(name="host_data_use_device.f",
                      feature="host_data.use_device", language="fortran",
                      description=desc, dependences=deps, defaults={"N": 30},
                      code=f_code),
    ]


# ---------------------------------------------------------------------------
# declare: function-scope data lifetimes
# ---------------------------------------------------------------------------

def _declare() -> List[str]:
    out: List[str] = []
    # declare create: device-resident scratch across two regions
    c_code = f"""
int main() {{
  int i, error = 0;
  int n = {{{{N}}}};
  int t[{{{{N}}}}], a[{{{{N}}}}], c[{{{{N}}}}];
  {check("#pragma acc declare create(t[0:{{N}}])")}
  for(i=0; i<n; i++){{ a[i]=i; t[i]=-3; c[i]=0; }}
  #pragma acc parallel loop present(t[0:n]) copyin(a[0:n])
  for(i=0; i<n; i++)
    t[i] = a[i] + 1;
  #pragma acc parallel loop present(t[0:n]) copy(c[0:n])
  for(i=0; i<n; i++)
    c[i] = t[i] * 2;
  for(i=0; i<n; i++){{
    if (c[i] != (a[i] + 1) * 2) error++;
    if (t[i] != -3) error++;
  }}
  return (error == 0);
}}
"""
    f_code = f"""
program test_declare_create
  implicit none
  integer :: i, err, n
  integer :: t({{{{N}}}}), a({{{{N}}}}), c({{{{N}}}})
  {check("!$acc declare create(t(1:{{N}}))")}
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    a(i) = i
    t(i) = -3
    c(i) = 0
  end do
  !$acc parallel loop present(t(1:n)) copyin(a(1:n))
  do i = 1, n
    t(i) = a(i) + 1
  end do
  !$acc end parallel loop
  !$acc parallel loop present(t(1:n)) copy(c(1:n))
  do i = 1, n
    c(i) = t(i) * 2
  end do
  !$acc end parallel loop
  do i = 1, n
    if (c(i) /= (a(i) + 1) * 2) err = err + 1
    if (t(i) /= -3) err = err + 1
  end do
  if (err == 0) main = 1
end program test_declare_create
"""
    desc = ("declare create gives the scratch array a device lifetime for "
            "the whole function, visible to both compute regions via "
            "present; removing the declare makes the present check fail.")
    out.append(template_text(
        name="declare_create.c", feature="declare.create", language="c",
        description=desc, dependences=["parallel.present", "parallel loop"],
        defaults={"N": 30}, code=c_code))
    out.append(template_text(
        name="declare_create.f", feature="declare.create", language="fortran",
        description=desc, dependences=["parallel.present", "parallel loop"],
        defaults={"N": 30}, code=f_code))

    # declare copyin: the device must see the host's initial values; the
    # create cross leaves garbage on the device
    c_code = f"""
int main() {{
  int i, error = 0;
  int n = {{{{N}}}};
  int g[{{{{N}}}}], c[{{{{N}}}}];
  {swap("#pragma acc declare copyin(g[0:{{N}}])", "#pragma acc declare create(g[0:{{N}}])")}
  for(i=0; i<n; i++){{ g[i]=i; c[i]=0; }}
  #pragma acc parallel loop present(g[0:n]) copy(c[0:n])
  for(i=0; i<n; i++)
    c[i] = g[i] + 4;
  for(i=0; i<n; i++) if (c[i] != i + 4) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_declare_copyin
  implicit none
  integer :: i, err, n
  integer :: g({{{{N}}}}), c({{{{N}}}})
  {swap("!$acc declare copyin(g(1:{{N}}))", "!$acc declare create(g(1:{{N}}))")}
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    g(i) = i
    c(i) = 0
  end do
  !$acc parallel loop present(g(1:n)) copy(c(1:n))
  do i = 1, n
    c(i) = g(i) + 4
  end do
  !$acc end parallel loop
  do i = 1, n
    if (c(i) /= i + 4) err = err + 1
  end do
  if (err == 0) main = 1
end program test_declare_copyin
"""
    desc = ("declare copyin must populate the device copy from the host "
            "values; the create cross leaves device garbage behind the "
            "present lookup.")
    out.append(template_text(
        name="declare_copyin.c", feature="declare.copyin", language="c",
        description=desc, defaults={"N": 30},
        dependences=["parallel.present", "parallel loop"], code=c_code))
    out.append(template_text(
        name="declare_copyin.f", feature="declare.copyin", language="fortran",
        description=desc, defaults={"N": 30},
        dependences=["parallel.present", "parallel loop"], code=f_code))

    # declare copy / copyout: the exit copyout happens when the *helper*
    # returns, so main observes it on a global array after the call
    for leaf, payload in (("copy", "g[j] + 9"), ("copyout", "j * 6")):
        f_payload = payload.replace("[j]", "(j)").replace("j *", "j *")
        expected_c = "i + 9" if leaf == "copy" else "i * 6"
        expected_f = "i + 9" if leaf == "copy" else "i * 6"
        c_code = f"""
int g[{{{{N}}}}];

{swap(f"#pragma acc declare {leaf}(g[0:{{{{N}}}}])", "#pragma acc declare create(g[0:{{N}}])")}
void kernel_step(int n) {{
  int j;
  #pragma acc parallel loop present(g[0:n])
  for(j=0; j<n; j++)
    g[j] = {payload};
}}

int main() {{
  int i, error = 0;
  int n = {{{{N}}}};
  for(i=0; i<n; i++) g[i] = i;
  kernel_step(n);
  for(i=0; i<n; i++) if (g[i] != {expected_c}) error++;
  return (error == 0);
}}
"""
        f_code = f"""
program test_declare_{leaf}
  implicit none
  integer :: i, err, n
  integer :: g({{{{N}}}})
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    g(i) = i - 1
  end do
  call kernel_step(g, n)
  do i = 1, n
    if (g(i) /= {expected_f.replace('i +', '(i - 1) +').replace('i *', '(i - 1) *')}) err = err + 1
  end do
  if (err == 0) main = 1
end program test_declare_{leaf}

subroutine kernel_step(g, n)
  implicit none
  integer :: n, j
  integer :: g(n)
  {swap(f"!$acc declare {leaf}(g(1:n))", "!$acc declare create(g(1:n))")}
  !$acc parallel loop present(g(1:n))
  do j = 1, n
    g(j) = {f_payload.replace('g(j) + 9', 'g(j) + 9').replace('j * 6', '(j - 1) * 6')}
  end do
  !$acc end parallel loop
end subroutine kernel_step
"""
        desc = (f"declare {leaf} ties the device lifetime to the helper "
                "invocation: its exit copies the results back to the global "
                "array; the create cross never writes back.")
        out.append(template_text(
            name=f"declare_{leaf}.c", feature=f"declare.{leaf}", language="c",
            description=desc, defaults={"N": 30},
            dependences=["parallel.present", "parallel loop"], code=c_code))
        out.append(template_text(
            name=f"declare_{leaf}.f", feature=f"declare.{leaf}",
            language="fortran", description=desc, defaults={"N": 30},
            dependences=["parallel.present", "parallel loop"], code=f_code))

    # declare device_resident: create-like device lifetime; removing the
    # declare makes the present assertion fail
    c_code = f"""
int main() {{
  int i, error = 0;
  int n = {{{{N}}}};
  int g[{{{{N}}}}];
  {check("#pragma acc declare device_resident(g[0:{{N}}])")}
  for(i=0; i<n; i++) g[i] = -4;
  #pragma acc parallel loop present(g[0:n])
  for(i=0; i<n; i++)
    g[i] = i * 6;
  #pragma acc update host(g[0:n])
  for(i=0; i<n; i++) if (g[i] != i * 6) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_declare_device_resident
  implicit none
  integer :: i, err, n
  integer :: g({{{{N}}}})
  {check("!$acc declare device_resident(g(1:{{N}}))")}
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    g(i) = -4
  end do
  !$acc parallel loop present(g(1:n))
  do i = 1, n
    g(i) = i * 6
  end do
  !$acc end parallel loop
  !$acc update host(g(1:n))
  do i = 1, n
    if (g(i) /= i * 6) err = err + 1
  end do
  if (err == 0) main = 1
end program test_declare_device_resident
"""
    desc = ("declare device_resident allocates the array on the device for "
            "the function lifetime; removing the declare (cross) makes the "
            "present assertion fail at runtime.")
    out.append(template_text(
        name="declare_device_resident.c", feature="declare.device_resident",
        language="c", description=desc, defaults={"N": 30},
        dependences=["parallel.present", "update.host", "parallel loop"],
        code=c_code))
    out.append(template_text(
        name="declare_device_resident.f", feature="declare.device_resident",
        language="fortran", description=desc, defaults={"N": 30},
        dependences=["parallel.present", "update.host", "parallel loop"],
        code=f_code))

    # declare present: asserts an enclosing lifetime (from a data region in
    # the caller is not expressible here, so use an enclosing data construct)
    c_code = f"""
int helper(int b[], int n) {{
  int i, ok = 1;
  {check("#pragma acc declare present(b[0:n])")}
  #pragma acc parallel loop present(b[0:n])
  for(i=0; i<n; i++)
    b[i] = b[i] + 9;
  return ok;
}}

int main() {{
  int i, error = 0;
  int n = {{{{N}}}};
  int b[{{{{N}}}}];
  for(i=0; i<n; i++) b[i] = i;
  {check("#pragma acc data copy(b[0:n])")}
  {{
    helper(b, n);
  }}
  for(i=0; i<n; i++) if (b[i] != i + 9) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_declare_present
  implicit none
  integer :: i, err, n
  integer :: b({{{{N}}}})
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    b(i) = i
  end do
  {check("!$acc data copy(b(1:n))")}
  call helper(b, n)
  {check("!$acc end data")}
  do i = 1, n
    if (b(i) /= i + 9) err = err + 1
  end do
  if (err == 0) main = 1
end program test_declare_present

subroutine helper(b, n)
  implicit none
  integer :: n, i
  integer :: b(n)
  {check("!$acc declare present(b(1:n))")}
  !$acc parallel loop present(b(1:n))
  do i = 1, n
    b(i) = b(i) + 9
  end do
  !$acc end parallel loop
end subroutine helper
"""
    desc = ("declare present in a helper asserts the caller established the "
            "device lifetime; the cross removes the caller's data region and "
            "the presence check must fail.")
    out.append(template_text(
        name="declare_present.c", feature="declare.present", language="c",
        description=desc, defaults={"N": 30},
        dependences=["data.copy", "parallel loop"], code=c_code))
    out.append(template_text(
        name="declare_present.f", feature="declare.present",
        language="fortran", description=desc, defaults={"N": 30},
        dependences=["data.copy", "parallel loop"], code=f_code))
    return out


# ---------------------------------------------------------------------------
# cache: a hint; results must be identical with or without it
# ---------------------------------------------------------------------------

def _cache() -> List[str]:
    c_code = f"""
int main() {{
  int i, error = 0;
  int n = {{{{N}}}};
  int a[{{{{N}}}}], b[{{{{N}}}}];
  for(i=0; i<n; i++){{ a[i]=i; b[i]=0; }}
  #pragma acc parallel loop copyin(a[0:n]) copy(b[0:n])
  for(i=0; i<n; i++){{
    {check("#pragma acc cache(a[0:n])")}
    b[i] = a[i] * 4;
  }}
  for(i=0; i<n; i++) if (b[i] != i * 4) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_cache
  implicit none
  integer :: i, err, n
  integer :: a({{{{N}}}}), b({{{{N}}}})
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    a(i) = i
    b(i) = 0
  end do
  !$acc parallel loop copyin(a(1:n)) copy(b(1:n))
  do i = 1, n
    {check("!$acc cache(a(1:n))")}
    b(i) = a(i) * 4
  end do
  !$acc end parallel loop
  do i = 1, n
    if (b(i) /= i * 4) err = err + 1
  end do
  if (err == 0) main = 1
end program test_cache
"""
    desc = ("cache is a locality hint: results must be identical with and "
            "without it, so the cross expectation is `same`; the functional "
            "run verifies the directive is at least accepted and harmless.")
    return [
        template_text(name="cache.c", feature="cache", language="c",
                      description=desc, dependences=["parallel loop"],
                      defaults={"N": 40}, crossexpect="same", code=c_code),
        template_text(name="cache.f", feature="cache", language="fortran",
                      description=desc, dependences=["parallel loop"],
                      defaults={"N": 40}, crossexpect="same", code=f_code),
    ]


# ---------------------------------------------------------------------------
# wait: synchronises a previously launched async region
# ---------------------------------------------------------------------------

def _wait() -> List[str]:
    c_code = f"""
int main() {{
  int i, ok = 1;
  int n = {{{{N}}}}, tag = 5;
  int a[{{{{N}}}}], b[{{{{N}}}}];
  for(i=0; i<n; i++){{ a[i]=i; b[i]=-1; }}
  #pragma acc data copyin(a[0:n]) copy(b[0:n])
  {{
    #pragma acc parallel loop async(tag)
    for(i=0; i<n; i++)
      b[i] = a[i] * 8;
    {check("#pragma acc wait(tag)")}
    #pragma acc update host(b[0:n])
    for(i=0; i<n; i++)
      if (b[i] != a[i] * 8) ok = 0;
  }}
  return ok;
}}
"""
    f_code = f"""
program test_wait
  implicit none
  integer :: i, ok, n, tag
  integer :: a({{{{N}}}}), b({{{{N}}}})
  n = {{{{N}}}}
  tag = 5
  ok = 1
  do i = 1, n
    a(i) = i
    b(i) = -1
  end do
  !$acc data copyin(a(1:n)) copy(b(1:n))
  !$acc parallel loop async(tag)
  do i = 1, n
    b(i) = a(i) * 8
  end do
  !$acc end parallel loop
  {check("!$acc wait(tag)")}
  !$acc update host(b(1:n))
  do i = 1, n
    if (b(i) /= a(i) * 8) ok = 0
  end do
  !$acc end data
  main = ok
end program test_wait
"""
    desc = ("wait(tag) must complete the queued region before the host reads "
            "the updated results; without it the update fetches the "
            "still-unwritten device buffer.")
    deps = ["parallel loop", "parallel.async", "update.host"]
    return [
        template_text(name="wait.c", feature="wait", language="c",
                      description=desc, dependences=deps, defaults={"N": 40},
                      code=c_code),
        template_text(name="wait.f", feature="wait", language="fortran",
                      description=desc, dependences=deps, defaults={"N": 40},
                      code=f_code),
    ]
