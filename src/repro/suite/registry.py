"""Suite registry: every authored template, parsed and indexed.

The registry validates at construction that each template's feature id
exists in the spec feature tree and that the (feature, language) pair is
unique — the paper's requirement that "single generated test code must test
for only one OpenACC feature".
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.spec.features import OPENACC_ALL, OPENACC_10
from repro.templates import TestTemplate, parse_template


def _did_you_mean(name: str, candidates: Iterable[str]) -> str:
    """`` — did you mean 'x'?`` suffix for error messages, or ''."""
    matches = difflib.get_close_matches(name, list(candidates), n=1, cutoff=0.6)
    return f" — did you mean {matches[0]!r}?" if matches else ""


class SuiteRegistry:
    """Indexed collection of parsed test templates."""

    def __init__(self, template_texts: Iterable[str], label: str = "suite"):
        self.label = label
        self._by_key: Dict[Tuple[str, str], TestTemplate] = {}
        self._order: List[TestTemplate] = []
        for text in template_texts:
            template = parse_template(text)
            if template.feature not in OPENACC_ALL:
                raise ValueError(
                    f"template {template.name!r} tests unknown feature "
                    f"{template.feature!r}"
                    f"{_did_you_mean(template.feature, (f.fid for f in OPENACC_ALL))}"
                )
            key = (template.feature, template.language)
            if key in self._by_key:
                # a duplicate is usually a typo'd/too-generic feature id:
                # suggest a close feature that has no template yet
                free = [
                    f.fid for f in OPENACC_ALL
                    if f.fid != template.feature
                    and (f.fid, template.language) not in self._by_key
                ]
                raise ValueError(
                    f"duplicate template for feature {template.feature!r} "
                    f"({template.language}): {template.name!r} collides with "
                    f"{self._by_key[key].name!r}"
                    f"{_did_you_mean(template.feature, free)}"
                )
            self._by_key[key] = template
            self._order.append(template)

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[TestTemplate]:
        return iter(self._order)

    def get(self, feature: str, language: str) -> Optional[TestTemplate]:
        return self._by_key.get((feature, language))

    def for_language(self, language: str) -> List[TestTemplate]:
        return [t for t in self._order if t.language == language]

    def features(self) -> List[str]:
        seen: Dict[str, None] = {}
        for t in self._order:
            seen.setdefault(t.feature, None)
        return list(seen)

    def select(
        self,
        languages: Optional[Iterable[str]] = None,
        features: Optional[Iterable[str]] = None,
        prefixes: Optional[Iterable[str]] = None,
    ) -> List[TestTemplate]:
        """Feature selection (paper Section III: "User can choose to test
        the directives, their clauses or any other feature")."""
        langs = set(languages) if languages is not None else None
        feats = set(features) if features is not None else None
        prefs = tuple(prefixes) if prefixes is not None else None
        out = []
        for t in self._order:
            if langs is not None and t.language not in langs:
                continue
            if feats is not None and t.feature not in feats:
                continue
            if prefs is not None and not any(
                t.feature == p or t.feature.startswith(p + ".") or
                t.feature.startswith(p + " ")
                for p in prefs
            ):
                continue
            out.append(t)
        return out


def _collect_10() -> List[str]:
    from repro.suite import compute, datacls, environ, loops, others, reductions, runtime_api

    texts: List[str] = []
    texts.extend(compute.templates())
    texts.extend(datacls.templates())
    texts.extend(loops.templates())
    texts.extend(reductions.templates())
    texts.extend(others.templates())
    texts.extend(runtime_api.templates())
    texts.extend(environ.templates())
    return texts


def _collect_20() -> List[str]:
    from repro.suite import acc20

    return acc20.templates()


def _collect_combinations() -> List[str]:
    from repro.suite import combinations

    return combinations.templates()


_SUITE_10: Optional[SuiteRegistry] = None
_SUITE_20: Optional[SuiteRegistry] = None
_SUITE_COMBO: Optional[SuiteRegistry] = None


def openacc10_suite() -> SuiteRegistry:
    """The 1.0 corpus (the paper's "more than 160 test cases")."""
    global _SUITE_10
    if _SUITE_10 is None:
        _SUITE_10 = SuiteRegistry(_collect_10(), label="openacc-1.0")
    return _SUITE_10


def openacc20_suite() -> SuiteRegistry:
    """The forward-looking 2.0 additions (Section V-C)."""
    global _SUITE_20
    if _SUITE_20 is None:
        _SUITE_20 = SuiteRegistry(_collect_20(), label="openacc-2.0-additions")
    return _SUITE_20


def combination_suite() -> SuiteRegistry:
    """Feature-combination tests (Section IX future work — see
    :mod:`repro.suite.combinations`)."""
    global _SUITE_COMBO
    if _SUITE_COMBO is None:
        _SUITE_COMBO = SuiteRegistry(
            _collect_combinations(), label="feature-combinations"
        )
    return _SUITE_COMBO


def default_suite() -> SuiteRegistry:
    return openacc10_suite()
