"""Helpers for authoring template text."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.templates.markers import (
    CHECK_CLOSE,
    CHECK_OPEN,
    CROSS_CLOSE,
    CROSS_OPEN,
)


def check(text: str) -> str:
    """Wrap text emitted only in the functional test."""
    return f"{CHECK_OPEN}{text}{CHECK_CLOSE}"


def cross(text: str) -> str:
    """Wrap text emitted only in the cross test."""
    return f"{CROSS_OPEN}{text}{CROSS_CLOSE}"


def swap(functional: str, cross_text: str) -> str:
    """Substitution cross: functional emits one text, cross the other."""
    return check(functional) + cross(cross_text)


def template_text(
    *,
    name: str,
    feature: str,
    language: str,
    code: str,
    description: str = "",
    version: str = "1.0",
    dependences: Iterable[str] = (),
    defaults: Optional[Dict[str, object]] = None,
    crossexpect: str = "different",
    environment: Optional[Dict[str, str]] = None,
) -> str:
    """Assemble a full template document."""
    parts = ["<acctv:test>"]
    parts.append(f"<acctv:testname>{name}</acctv:testname>")
    if description:
        parts.append(
            f"<acctv:testdescription>{description}</acctv:testdescription>"
        )
    parts.append(f"<acctv:directive>{feature}</acctv:directive>")
    parts.append(f"<acctv:language>{language}</acctv:language>")
    parts.append(f"<acctv:version>{version}</acctv:version>")
    deps = ", ".join(dependences)
    if deps:
        parts.append(f"<acctv:dependences>{deps}</acctv:dependences>")
    if defaults:
        attrs = " ".join(f'{k}="{v}"' for k, v in defaults.items())
        parts.append(f"<acctv:defaults {attrs}></acctv:defaults>")
    if crossexpect != "different":
        parts.append(f"<acctv:crossexpect>{crossexpect}</acctv:crossexpect>")
    if environment:
        attrs = " ".join(f'{k}="{v}"' for k, v in environment.items())
        parts.append(f"<acctv:environment {attrs}></acctv:environment>")
    parts.append("<acctv:testcode>")
    parts.append(code.strip("\n"))
    parts.append("</acctv:testcode>")
    parts.append("</acctv:test>")
    return "\n".join(parts)
