"""Forward-looking OpenACC 2.0 tests (Section V-C).

The paper reports that the 1.0 ambiguities it surfaced were addressed in
2.0 (``default(none)``, unstructured data lifetimes via ``enter data`` /
``exit data``, the ``routine`` directive) and that the framework "is robust
enough to create test cases for 2.0 and future releases".  These templates
demonstrate that: they only compile on an implementation whose behaviour
reports spec_version >= 2.0.
"""

from __future__ import annotations

from typing import List

from repro.suite.builders import check, cross, swap, template_text


def templates() -> List[str]:
    out: List[str] = []

    # enter data: begins an unstructured lifetime
    c_code = f"""
int main() {{
  int i, error = 0;
  int n = {{{{N}}}};
  int a[{{{{N}}}}];
  for(i=0; i<n; i++) a[i] = i;
  {check("#pragma acc enter data copyin(a[0:n])")}
  #pragma acc parallel loop present(a[0:n])
  for(i=0; i<n; i++)
    a[i] = a[i] + 1;
  #pragma acc exit data copyout(a[0:n])
  for(i=0; i<n; i++) if (a[i] != i + 1) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_enter_data
  implicit none
  integer :: i, err, n
  integer :: a({{{{N}}}})
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    a(i) = i
  end do
  {check("!$acc enter data copyin(a(1:n))")}
  !$acc parallel loop present(a(1:n))
  do i = 1, n
    a(i) = a(i) + 1
  end do
  !$acc end parallel loop
  !$acc exit data copyout(a(1:n))
  do i = 1, n
    if (a(i) /= i + 1) err = err + 1
  end do
  if (err == 0) main = 1
end program test_enter_data
"""
    desc = ("enter data opens an unstructured device lifetime; without it "
            "the downstream present assertion must fail (2.0, Section V-C "
            "'Data lifetime').")
    out.append(template_text(
        name="enter_data.c", feature="enter data", language="c", version="2.0",
        description=desc, defaults={"N": 30},
        dependences=["exit data", "parallel loop"], code=c_code))
    out.append(template_text(
        name="enter_data.f", feature="enter data", language="fortran",
        version="2.0", description=desc, defaults={"N": 30},
        dependences=["exit data", "parallel loop"], code=f_code))

    # exit data: ends the lifetime with a copyout
    c_code = f"""
int main() {{
  int i, error = 0;
  int n = {{{{N}}}};
  int a[{{{{N}}}}];
  for(i=0; i<n; i++) a[i] = i;
  #pragma acc enter data copyin(a[0:n])
  #pragma acc parallel loop present(a[0:n])
  for(i=0; i<n; i++)
    a[i] = a[i] * 3;
  {check("#pragma acc exit data copyout(a[0:n])")}
  for(i=0; i<n; i++) if (a[i] != i * 3) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_exit_data
  implicit none
  integer :: i, err, n
  integer :: a({{{{N}}}})
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    a(i) = i
  end do
  !$acc enter data copyin(a(1:n))
  !$acc parallel loop present(a(1:n))
  do i = 1, n
    a(i) = a(i) * 3
  end do
  !$acc end parallel loop
  {check("!$acc exit data copyout(a(1:n))")}
  do i = 1, n
    if (a(i) /= i * 3) err = err + 1
  end do
  if (err == 0) main = 1
end program test_exit_data
"""
    desc = ("exit data copyout ends the unstructured lifetime and publishes "
            "the device values; without it the host keeps the originals.")
    out.append(template_text(
        name="exit_data.c", feature="exit data", language="c", version="2.0",
        description=desc, defaults={"N": 30},
        dependences=["enter data", "parallel loop"], code=c_code))
    out.append(template_text(
        name="exit_data.f", feature="exit data", language="fortran",
        version="2.0", description=desc, defaults={"N": 30},
        dependences=["enter data", "parallel loop"], code=f_code))

    # routine: user procedures callable inside compute regions
    c_code = f"""
{check("#pragma acc routine")}
int triple(int x) {{
  return 3 * x;
}}

int main() {{
  int i, error = 0;
  int n = {{{{N}}}};
  int b[{{{{N}}}}];
  for(i=0; i<n; i++) b[i] = 0;
  #pragma acc parallel loop copy(b[0:n])
  for(i=0; i<n; i++)
    b[i] = triple(i);
  for(i=0; i<n; i++) if (b[i] != 3*i) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_routine
  implicit none
  integer :: i, err, n
  integer :: b({{{{N}}}})
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    b(i) = 0
  end do
  !$acc parallel loop copy(b(1:n))
  do i = 1, n
    b(i) = triple(i)
  end do
  !$acc end parallel loop
  do i = 1, n
    if (b(i) /= 3*i) err = err + 1
  end do
  if (err == 0) main = 1
end program test_routine

integer function triple(x)
  implicit none
  integer :: x
  {check("!$acc routine")}
  triple = 3 * x
end function triple
"""
    desc = ("routine compiles a user procedure for the device so compute "
            "regions may call it (2.0, Section V-C 'Procedure calls'); "
            "without the directive the call is a compile-time error.")
    out.append(template_text(
        name="routine.c", feature="routine", language="c", version="2.0",
        description=desc, defaults={"N": 20},
        dependences=["parallel loop"], code=c_code))
    out.append(template_text(
        name="routine.f", feature="routine", language="fortran", version="2.0",
        description=desc, defaults={"N": 20},
        dependences=["parallel loop"], code=f_code))

    # default(none): every referenced variable needs an explicit attribute
    c_code = f"""
int main() {{
  int i, error = 0;
  int n = {{{{N}}}};
  int b[{{{{N}}}}];
  for(i=0; i<n; i++) b[i] = 0;
  #pragma acc parallel default(none) copy(b[0:n]) {swap("firstprivate(n)", "")}
  {{
    #pragma acc loop
    for(i=0; i<n; i++)
      b[i] = i + 2;
  }}
  for(i=0; i<n; i++) if (b[i] != i + 2) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_default_none
  implicit none
  integer :: i, err, n
  integer :: b({{{{N}}}})
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    b(i) = 0
  end do
  !$acc parallel default(none) copy(b(1:n)) {swap("firstprivate(n)", "")}
  !$acc loop
  do i = 1, n
    b(i) = i + 2
  end do
  !$acc end parallel
  do i = 1, n
    if (b(i) /= i + 2) err = err + 1
  end do
  if (err == 0) main = 1
end program test_default_none
"""
    desc = ("default(none) disables implicit data attributes: with every "
            "variable explicit the region compiles; dropping one attribute "
            "(cross) must be rejected at compile time (2.0, Section V-C "
            "'Default behavior').")
    out.append(template_text(
        name="default_none.c", feature="parallel.default_none", language="c",
        version="2.0", description=desc, defaults={"N": 20},
        dependences=["parallel.copy", "parallel.firstprivate"], code=c_code))
    out.append(template_text(
        name="default_none.f", feature="parallel.default_none",
        language="fortran", version="2.0", description=desc,
        defaults={"N": 20},
        dependences=["parallel.copy", "parallel.firstprivate"], code=f_code))
    return out
