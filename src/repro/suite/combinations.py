"""Feature-combination tests (the paper's stated future work).

"The coverage of tests can be widened by testing several combinations of
the features.  However as one could imagine, this cannot be a thoroughly
complete task since there may be several different permutations and
combinations of features co-existing with one another."  (Section IX)

This module implements a curated pairwise slice of that space: ten designs
(C and Fortran each) in which two or more features must *interact*
correctly — multiple async queues with per-tag waits, three-level
gang/worker/vector nests, nested present_or_copy data regions, reductions
combined with privatisation / firstprivate / collapse, mixed data clauses
on one construct, if+async interplay, host_data with mid-region updates,
and declare with update device.  They live in their own registry
(``combination_suite``), since each deliberately exercises more than the
one-feature-per-test rule of the base corpus.
"""

from __future__ import annotations

from typing import List

from repro.suite.builders import check, cross, swap, template_text


def templates() -> List[str]:
    out: List[str] = []
    out.extend(_two_async_queues())
    out.extend(_three_level_nest())
    out.extend(_nested_pcopy())
    out.extend(_reduction_with_private())
    out.extend(_firstprivate_feeds_reduction())
    out.extend(_mixed_data_clauses())
    out.extend(_if_with_async())
    out.extend(_host_data_with_update())
    out.extend(_collapse_reduction())
    out.extend(_declare_update_device())
    return out


def _pair(name, feature, c_code, f_code, description, deps=(),
          crossexpect="different", defaults=None) -> List[str]:
    defaults = defaults or {"N": 24}
    return [
        template_text(name=f"{name}.c", feature=feature, language="c",
                      description=description, dependences=list(deps),
                      defaults=defaults, crossexpect=crossexpect,
                      code=c_code),
        template_text(name=f"{name}.f", feature=feature, language="fortran",
                      description=description, dependences=list(deps),
                      defaults=defaults, crossexpect=crossexpect,
                      code=f_code),
    ]


# --------------------------------------------------------------------------
# 1. two async queues, independent per-tag waits
# --------------------------------------------------------------------------

def _two_async_queues() -> List[str]:
    c_code = f"""
int main(){{
  int i, ok = 1;
  int n = {{{{N}}}};
  int a[{{{{N}}}}], b[{{{{N}}}}], c[{{{{N}}}}];
  for(i=0;i<n;i++){{ a[i]=i; b[i]=-1; c[i]=-1; }}
  #pragma acc data copyin(a[0:n]) copy(b[0:n], c[0:n])
  {{
    #pragma acc parallel loop async(1)
    for(i=0;i<n;i++) b[i] = a[i] + 1;
    #pragma acc parallel loop async(2)
    for(i=0;i<n;i++) c[i] = a[i] + 2;
    #pragma acc wait(1)
    #pragma acc update host(b[0:n])
    {check("#pragma acc wait(2)")}
    #pragma acc update host(c[0:n])
    for(i=0;i<n;i++){{
      if (b[i] != a[i] + 1) ok = 0;
      if (c[i] != a[i] + 2) ok = 0;
    }}
  }}
  return ok;
}}
"""
    f_code = f"""
program combo_async_queues
  implicit none
  integer :: i, ok, n
  integer :: a({{{{N}}}}), b({{{{N}}}}), c({{{{N}}}})
  n = {{{{N}}}}
  ok = 1
  do i = 1, n
    a(i) = i
    b(i) = -1
    c(i) = -1
  end do
  !$acc data copyin(a(1:n)) copy(b(1:n), c(1:n))
  !$acc parallel loop async(1)
  do i = 1, n
    b(i) = a(i) + 1
  end do
  !$acc end parallel loop
  !$acc parallel loop async(2)
  do i = 1, n
    c(i) = a(i) + 2
  end do
  !$acc end parallel loop
  !$acc wait(1)
  !$acc update host(b(1:n))
  {check("!$acc wait(2)")}
  !$acc update host(c(1:n))
  do i = 1, n
    if (b(i) /= a(i) + 1) ok = 0
    if (c(i) /= a(i) + 2) ok = 0
  end do
  !$acc end data
  main = ok
end program combo_async_queues
"""
    return _pair(
        "combo_async_queues", "wait", c_code, f_code,
        "Two kernels queue on different async tags; each tag is waited and "
        "fetched independently.  Dropping the second wait leaves that "
        "queue's results unpublished.",
        deps=("parallel.async", "update.host", "data.copy"),
    )


# --------------------------------------------------------------------------
# 2. three-level gang/worker/vector nest
# --------------------------------------------------------------------------

def _three_level_nest() -> List[str]:
    c_code = """
int main(){
  int g, w, v, bad = 0;
  int m[2][2][8];
  for(g=0;g<2;g++) for(w=0;w<2;w++) for(v=0;v<8;v++) m[g][w][v] = 0;
  #pragma acc parallel num_gangs(2) num_workers(2) vector_length(4) copy(m)
  {
    #pragma acc loop """ + swap("gang", "seq") + """
    for(g=0;g<2;g++){
      #pragma acc loop worker
      for(w=0;w<2;w++){
        #pragma acc loop vector
        for(v=0;v<8;v++)
          m[g][w][v] += 1;
      }
    }
  }
  for(g=0;g<2;g++) for(w=0;w<2;w++) for(v=0;v<8;v++)
    if (m[g][w][v] != 1) bad++;
  return (bad == 0);
}
"""
    f_code = """
program combo_three_level
  implicit none
  integer :: g, w, v, bad
  integer :: m(2, 2, 8)
  bad = 0
  do g = 1, 2
    do w = 1, 2
      do v = 1, 8
        m(g, w, v) = 0
      end do
    end do
  end do
  !$acc parallel num_gangs(2) num_workers(2) vector_length(4) copy(m)
  !$acc loop """ + swap("gang", "seq") + """
  do g = 1, 2
    !$acc loop worker
    do w = 1, 2
      !$acc loop vector
      do v = 1, 8
        m(g, w, v) = m(g, w, v) + 1
      end do
    end do
  end do
  !$acc end parallel
  do g = 1, 2
    do w = 1, 2
      do v = 1, 8
        if (m(g, w, v) /= 1) bad = bad + 1
      end do
    end do
  end do
  if (bad == 0) main = 1
end program combo_three_level
"""
    return _pair(
        "combo_three_level_nest", "loop.vector", c_code, f_code,
        "All three parallelism levels nested (gang over rows, worker over "
        "columns, vector over lanes) must cover every element exactly once; "
        "the seq cross on the outer loop makes every gang run the full "
        "nest redundantly.",
        deps=("loop.gang", "loop.worker", "parallel.num_workers",
              "parallel.vector_length"),
        defaults={"N": 8},
    )


# --------------------------------------------------------------------------
# 3. nested present_or_copy data regions
# --------------------------------------------------------------------------

def _nested_pcopy() -> List[str]:
    c_code = f"""
int main(){{
  int i, error = 0;
  int n = {{{{N}}}};
  int a[{{{{N}}}}];
  for(i=0;i<n;i++) a[i] = 10*i;
  {swap("#pragma acc data pcopy(a[0:n])", "#pragma acc data copyin(a[0:n])")}
  {{
    #pragma acc data pcopy(a[0:n])
    {{
      #pragma acc parallel loop pcopy(a[0:n])
      for(i=0;i<n;i++) a[i] = a[i] + 1;
    }}
  }}
  for(i=0;i<n;i++) if (a[i] != 10*i + 1) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program combo_nested_pcopy
  implicit none
  integer :: i, err, n
  integer :: a({{{{N}}}})
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    a(i) = 10*i
  end do
  {swap("!$acc data pcopy(a(1:n))", "!$acc data copyin(a(1:n))")}
  !$acc data pcopy(a(1:n))
  !$acc parallel loop pcopy(a(1:n))
  do i = 1, n
    a(i) = a(i) + 1
  end do
  !$acc end parallel loop
  !$acc end data
  !$acc end data
  do i = 1, n
    if (a(i) /= 10*i + 1) err = err + 1
  end do
  if (err == 0) main = 1
end program combo_nested_pcopy
"""
    return _pair(
        "combo_nested_pcopy", "data.present_or_copy", c_code, f_code,
        "Three nested present_or_copy levels share one device copy through "
        "reference counting; only the outermost owner copies out.  The "
        "cross makes the owner a copyin, so nothing ever writes back.",
        deps=("parallel loop",),
    )


# --------------------------------------------------------------------------
# 4. reduction + private on the same loop
# --------------------------------------------------------------------------

def _reduction_with_private() -> List[str]:
    c_code = f"""
int main(){{
  int i, s = 0, t = -1, expected = 0;
  int n = {{{{N}}}};
  int a[{{{{N}}}}];
  for(i=0;i<n;i++){{ a[i] = i + 1; expected += 2 * (i + 1); }}
  #pragma acc parallel loop {check("reduction(+:s)")} private(t) copyin(a[0:n])
  for(i=0;i<n;i++){{
    t = a[i] * 2;
    s += t;
  }}
  return (s == expected) && (t == -1);
}}
"""
    f_code = f"""
program combo_red_private
  implicit none
  integer :: i, s, t, expected, n
  integer :: a({{{{N}}}})
  n = {{{{N}}}}
  s = 0
  t = -1
  expected = 0
  do i = 1, n
    a(i) = i + 1
    expected = expected + 2 * (i + 1)
  end do
  !$acc parallel loop {check("reduction(+:s)")} private(t) copyin(a(1:n))
  do i = 1, n
    t = a(i) * 2
    s = s + t
  end do
  !$acc end parallel loop
  if (s == expected .and. t == -1) main = 1
end program combo_red_private
"""
    return _pair(
        "combo_reduction_private", "loop.reduction.int_add", c_code, f_code,
        "A +-reduction fed through a loop-private scratch variable: the "
        "reduction must combine across gangs while the private copy never "
        "escapes.  Removing the reduction leaves the host sum at zero.",
        deps=("loop.private", "parallel.copyin"),
    )


# --------------------------------------------------------------------------
# 5. construct firstprivate feeding a gang-loop reduction
# --------------------------------------------------------------------------

def _firstprivate_feeds_reduction() -> List[str]:
    c_code = f"""
int main(){{
  int i, s = 0, base = 5, expected = 0;
  int n = {{{{N}}}};
  int a[{{{{N}}}}];
  for(i=0;i<n;i++){{ a[i] = i; expected += i + 5; }}
  #pragma acc parallel num_gangs(4) {swap("firstprivate(base)", "private(base)")} copyin(a[0:n])
  {{
    #pragma acc loop gang reduction(+:s)
    for(i=0;i<n;i++)
      s += a[i] + base;
  }}
  return (s == expected);
}}
"""
    f_code = f"""
program combo_fp_reduction
  implicit none
  integer :: i, s, base, expected, n
  integer :: a({{{{N}}}})
  n = {{{{N}}}}
  s = 0
  base = 5
  expected = 0
  do i = 1, n
    a(i) = i
    expected = expected + i + 5
  end do
  !$acc parallel num_gangs(4) {swap("firstprivate(base)", "private(base)")} copyin(a(1:n))
  !$acc loop gang reduction(+:s)
  do i = 1, n
    s = s + a(i) + base
  end do
  !$acc end parallel
  if (s == expected) main = 1
end program combo_fp_reduction
"""
    return _pair(
        "combo_firstprivate_reduction", "parallel.firstprivate",
        c_code, f_code,
        "Every gang's reduction contribution depends on a firstprivate "
        "base value; the private substitution zeroes the base on the "
        "device and the combined sum comes out short.",
        deps=("loop.gang", "loop.reduction", "parallel.num_gangs"),
    )


# --------------------------------------------------------------------------
# 6. copyin + copyout + create on one construct
# --------------------------------------------------------------------------

def _mixed_data_clauses() -> List[str]:
    c_code = f"""
int main(){{
  int i, error = 0;
  int n = {{{{N}}}};
  int a[{{{{N}}}}], b[{{{{N}}}}], t[{{{{N}}}}];
  for(i=0;i<n;i++){{ a[i] = i; b[i] = -1; t[i] = -5; }}
  #pragma acc parallel copyin(a[0:n]) copyout(b[0:n]) {swap("create(t[0:n])", "copy(t[0:n])")}
  {{
    #pragma acc loop
    for(i=0;i<n;i++) t[i] = a[i] * 3;
    #pragma acc loop
    for(i=0;i<n;i++) b[i] = t[i] + 1;
  }}
  for(i=0;i<n;i++){{
    if (b[i] != 3*a[i] + 1) error++;
    if (t[i] != -5) error++;
    if (a[i] != i) error++;
  }}
  return (error == 0);
}}
"""
    f_code = f"""
program combo_mixed_data
  implicit none
  integer :: i, err, n
  integer :: a({{{{N}}}}), b({{{{N}}}}), t({{{{N}}}})
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    a(i) = i
    b(i) = -1
    t(i) = -5
  end do
  !$acc parallel copyin(a(1:n)) copyout(b(1:n)) {swap("create(t(1:n))", "copy(t(1:n))")}
  !$acc loop
  do i = 1, n
    t(i) = a(i) * 3
  end do
  !$acc loop
  do i = 1, n
    b(i) = t(i) + 1
  end do
  !$acc end parallel
  do i = 1, n
    if (b(i) /= 3*a(i) + 1) err = err + 1
    if (t(i) /= -5) err = err + 1
    if (a(i) /= i) err = err + 1
  end do
  if (err == 0) main = 1
end program combo_mixed_data
"""
    return _pair(
        "combo_mixed_data_clauses", "parallel.create", c_code, f_code,
        "All three transfer behaviours on one construct: input copied in, "
        "result copied out, scratch created device-only.  The copy cross "
        "clobbers the scratch sentinel on exit.",
        deps=("parallel.copyin", "parallel.copyout", "loop"),
    )


# --------------------------------------------------------------------------
# 7. if + async interplay: a host-bound region is synchronous
# --------------------------------------------------------------------------

def _if_with_async() -> List[str]:
    c_code = f"""
int main(){{
  int i, ok = 1, is_sync = -1;
  int n = {{{{N}}}};
  int a[{{{{N}}}}], b[{{{{N}}}}];
  for(i=0;i<n;i++){{ a[i]=i; b[i]=0; }}
  #pragma acc parallel loop {swap("if (1)", "if (0)")} async(9) copyin(a[0:n]) copy(b[0:n])
  for(i=0;i<n;i++) b[i] = a[i] * 2;
  is_sync = acc_async_test(9);
  if (is_sync != 0) ok = 0;
  #pragma acc wait(9)
  for(i=0;i<n;i++) if (b[i] != 2*a[i]) ok = 0;
  return ok;
}}
"""
    f_code = f"""
program combo_if_async
  implicit none
  integer :: i, ok, is_sync, n
  integer :: a({{{{N}}}}), b({{{{N}}}})
  n = {{{{N}}}}
  ok = 1
  is_sync = -1
  do i = 1, n
    a(i) = i
    b(i) = 0
  end do
  !$acc parallel loop {swap("if (1 == 1)", "if (1 == 0)")} async(9) copyin(a(1:n)) copy(b(1:n))
  do i = 1, n
    b(i) = a(i) * 2
  end do
  !$acc end parallel loop
  is_sync = acc_async_test(9)
  if (is_sync /= 0) ok = 0
  !$acc wait(9)
  do i = 1, n
    if (b(i) /= 2*a(i)) ok = 0
  end do
  main = ok
end program combo_if_async
"""
    return _pair(
        "combo_if_async", "parallel.if", c_code, f_code,
        "With a true if condition the region queues asynchronously "
        "(acc_async_test sees pending work); the false cross runs the body "
        "synchronously on the host, so the probe already reports complete.",
        deps=("parallel.async", "runtime.acc_async_test", "wait"),
    )


# --------------------------------------------------------------------------
# 8. host_data + mid-region update host
# --------------------------------------------------------------------------

def _host_data_with_update() -> List[str]:
    c_code = f"""
void bump_on_device(int *p, int n){{
  int j;
  #pragma acc parallel deviceptr(p)
  {{
    #pragma acc loop
    for(j=0;j<n;j++) p[j] = p[j] + 100;
  }}
}}

int main(){{
  int i, ok = 1;
  int n = {{{{N}}}};
  int a[{{{{N}}}}];
  for(i=0;i<n;i++) a[i] = i;
  #pragma acc data copyin(a[0:n])
  {{
    #pragma acc host_data use_device(a)
    {{
      bump_on_device(a, n);
    }}
    {check("#pragma acc update host(a[0:n])")}
    for(i=0;i<n;i++) if (a[i] != i + 100) ok = 0;
  }}
  return ok;
}}
"""
    f_code = f"""
program combo_hostdata_update
  implicit none
  integer :: i, ok, n
  integer :: a({{{{N}}}})
  n = {{{{N}}}}
  ok = 1
  do i = 1, n
    a(i) = i
  end do
  !$acc data copyin(a(1:n))
  !$acc host_data use_device(a)
  call bump_on_device(a, n)
  !$acc end host_data
  {check("!$acc update host(a(1:n))")}
  do i = 1, n
    if (a(i) /= i + 100) ok = 0
  end do
  !$acc end data
  main = ok
end program combo_hostdata_update

subroutine bump_on_device(p, n)
  implicit none
  integer :: n, j
  integer :: p(n)
  !$acc parallel deviceptr(p)
  !$acc loop
  do j = 1, n
    p(j) = p(j) + 100
  end do
  !$acc end parallel
end subroutine bump_on_device
"""
    return _pair(
        "combo_hostdata_update", "update.host", c_code, f_code,
        "A helper writes the device copy through host_data/deviceptr; the "
        "host only observes it after a mid-region update host.  Removing "
        "the update leaves the copyin-only host copy stale.",
        deps=("host_data.use_device", "parallel.deviceptr", "data.copyin"),
    )


# --------------------------------------------------------------------------
# 9. collapse + reduction on the combined construct
# --------------------------------------------------------------------------

def _collapse_reduction() -> List[str]:
    c_code = """
int main(){
  int i, j, s = 0, expected;
  int rows = 6, cols = 7;
  expected = (rows * cols * (rows * cols - 1)) / 2;
  #pragma acc parallel loop num_gangs(3) collapse(2) """ + check("reduction(+:s)") + """
  for(i=0;i<rows;i++)
    for(j=0;j<cols;j++)
      s += i * cols + j;
  return (s == expected);
}
"""
    f_code = """
program combo_collapse_reduction
  implicit none
  integer :: i, j, s, expected, rows, cols
  rows = 6
  cols = 7
  s = 0
  expected = (rows * cols * (rows * cols - 1)) / 2
  !$acc parallel loop num_gangs(3) collapse(2) """ + check("reduction(+:s)") + """
  do i = 0, rows-1
    do j = 0, cols-1
      s = s + i * cols + j
    end do
  end do
  !$acc end parallel loop
  if (s == expected) main = 1
end program combo_collapse_reduction
"""
    return _pair(
        "combo_collapse_reduction", "loop.collapse", c_code, f_code,
        "A collapsed 2-level iteration space reduced across gangs: the "
        "linearised triangular sum must match the closed form; without the "
        "reduction the host value never moves.",
        deps=("loop.reduction", "parallel.num_gangs"),
        defaults={"N": 6},
    )


# --------------------------------------------------------------------------
# 10. declare device_resident + update device
# --------------------------------------------------------------------------

def _declare_update_device() -> List[str]:
    c_code = f"""
int main(){{
  int i, error = 0;
  int n = {{{{N}}}};
  int t[{{{{N}}}}], out[{{{{N}}}}];
  #pragma acc declare device_resident(t[0:{{{{N}}}}])
  for(i=0;i<n;i++){{ t[i] = i * 4; out[i] = 0; }}
  {check("#pragma acc update device(t[0:n])")}
  #pragma acc parallel loop present(t[0:n]) copy(out[0:n])
  for(i=0;i<n;i++) out[i] = t[i] + 1;
  for(i=0;i<n;i++) if (out[i] != 4*i + 1) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program combo_declare_update
  implicit none
  integer :: i, err, n
  integer :: t({{{{N}}}}), out({{{{N}}}})
  !$acc declare device_resident(t(1:{{{{N}}}}))
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    t(i) = i * 4
    out(i) = 0
  end do
  {check("!$acc update device(t(1:n))")}
  !$acc parallel loop present(t(1:n)) copy(out(1:n))
  do i = 1, n
    out(i) = t(i) + 1
  end do
  !$acc end parallel loop
  do i = 1, n
    if (out(i) /= 4*i + 1) err = err + 1
  end do
  if (err == 0) main = 1
end program combo_declare_update
"""
    return _pair(
        "combo_declare_update_device", "update.device", c_code, f_code,
        "A device-resident array is populated by pushing host values with "
        "update device; without the push the kernel reads allocation "
        "garbage.",
        deps=("declare.device_resident", "parallel.present"),
    )
