"""Environment-variable tests (OpenACC 1.0 Section 4).

The harness launches these programs with the ACC_* variables from the
template's ``<acctv:environment>`` tag set in the simulated process
environment; the program then checks the runtime picked them up.
Functional-only: environment variables have no in-source directive whose
removal would form a cross test.
"""

from __future__ import annotations

from typing import List

from repro.suite.builders import template_text


def templates() -> List[str]:
    out: List[str] = []

    c_code = """
int main() {
  int ok = 1;
  if (acc_get_device_type() == acc_device_host) ok = 0;
  if (acc_get_device_type() == acc_device_none) ok = 0;
  return ok;
}
"""
    f_code = """
program test_env_device_type
  implicit none
  integer :: ok
  ok = 1
  if (acc_get_device_type() == acc_device_host) ok = 0
  if (acc_get_device_type() == acc_device_none) ok = 0
  main = ok
end program test_env_device_type
"""
    desc = ("With ACC_DEVICE_TYPE=NVIDIA in the environment the initial "
            "device type must be an accelerator.")
    out.append(template_text(
        name="env_acc_device_type.c", feature="env.ACC_DEVICE_TYPE",
        language="c", description=desc,
        dependences=["runtime.acc_get_device_type"],
        environment={"ACC_DEVICE_TYPE": "NVIDIA"},
        crossexpect="same", code=c_code))
    out.append(template_text(
        name="env_acc_device_type.f", feature="env.ACC_DEVICE_TYPE",
        language="fortran", description=desc,
        dependences=["runtime.acc_get_device_type"],
        environment={"ACC_DEVICE_TYPE": "NVIDIA"},
        crossexpect="same", code=f_code))

    c_code = """
int main() {
  return (acc_get_device_num(acc_device_not_host) == 0);
}
"""
    f_code = """
program test_env_device_num
  implicit none
  if (acc_get_device_num(acc_device_not_host) == 0) main = 1
end program test_env_device_num
"""
    desc = ("ACC_DEVICE_NUM=0 must select device 0, visible through "
            "acc_get_device_num.")
    out.append(template_text(
        name="env_acc_device_num.c", feature="env.ACC_DEVICE_NUM",
        language="c", description=desc,
        dependences=["runtime.acc_get_device_num"],
        environment={"ACC_DEVICE_NUM": "0"},
        crossexpect="same", code=c_code))
    out.append(template_text(
        name="env_acc_device_num.f", feature="env.ACC_DEVICE_NUM",
        language="fortran", description=desc,
        dependences=["runtime.acc_get_device_num"],
        environment={"ACC_DEVICE_NUM": "0"},
        crossexpect="same", code=f_code))
    return out
