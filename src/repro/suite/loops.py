"""Tests for the loop construct and its clauses (Section IV-C), plus the
combined ``parallel loop`` / ``kernels loop`` constructs.

The gang/worker/vector scheduling tests exploit the redundant-execution
semantics of the parallel construct: a loop that is *not* work-shared runs
once per gang, multiplying its side effects — the observable the paper's
Fig. 2 cross test is built on.  The ordering tests (``seq``, ``collapse``)
use the paper's ``last_i`` / ``is_larger`` design (IV-C2, IV-C3).
"""

from __future__ import annotations

from typing import List

from repro.suite.builders import check, cross, swap, template_text


def templates() -> List[str]:
    out: List[str] = []
    out.extend(_loop_base())
    out.extend(_gang())
    out.extend(_worker())
    out.extend(_vector())
    out.extend(_seq())
    out.extend(_independent())
    out.extend(_collapse())
    out.extend(_loop_private())
    out.extend(_combined_base())
    out.extend(_combined_reduction())
    out.extend(_parallel_loop_private())
    return out


# ---------------------------------------------------------------------------
# loop (Fig. 2): work-shared => each element incremented exactly once;
# removed => every gang increments it
# ---------------------------------------------------------------------------

def _loop_base() -> List[str]:
    c_code = f"""
int main() {{
  int i, error = 0;
  int n = {{{{N}}}};
  int A[{{{{N}}}}];
  for(i=0; i<n; i++) A[i] = 0;
  #pragma acc parallel num_gangs({{{{G}}}}) copy(A[0:n])
  {{
    {check("#pragma acc loop")}
    for(i=0; i<n; i++)
      A[i] = A[i] + 1;
  }}
  for(i=0; i<n; i++) if(A[i] != 1) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_loop
  implicit none
  integer :: i, err, n
  integer :: a({{{{N}}}})
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    a(i) = 0
  end do
  !$acc parallel num_gangs({{{{G}}}}) copy(a(1:n))
  {check("!$acc loop")}
  do i = 1, n
    a(i) = a(i) + 1
  end do
  !$acc end parallel
  do i = 1, n
    if (a(i) /= 1) err = err + 1
  end do
  if (err == 0) main = 1
end program test_loop
"""
    desc = ("The loop directive partitions iterations over gangs so each "
            "element is incremented exactly once (Fig. 2a); without it every "
            "gang executes the whole loop redundantly (Fig. 2b).")
    deps = ["parallel.num_gangs", "parallel.copy"]
    return [
        template_text(name="loop.c", feature="loop", language="c",
                      description=desc, dependences=deps,
                      defaults={"N": 100, "G": 10}, code=c_code),
        template_text(name="loop.f", feature="loop", language="fortran",
                      description=desc, dependences=deps,
                      defaults={"N": 100, "G": 10}, code=f_code),
    ]


# ---------------------------------------------------------------------------
# gang: explicit gang work-sharing, crossed with seq (redundant execution)
# ---------------------------------------------------------------------------

def _gang() -> List[str]:
    c_code = f"""
int main() {{
  int i, error = 0;
  int n = {{{{N}}}};
  int A[{{{{N}}}}];
  for(i=0; i<n; i++) A[i] = 0;
  #pragma acc parallel num_gangs({{{{G}}}}) copy(A[0:n])
  {{
    #pragma acc loop {swap("gang", "seq")}
    for(i=0; i<n; i++)
      A[i] = A[i] + 1;
  }}
  for(i=0; i<n; i++) if(A[i] != 1) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_loop_gang
  implicit none
  integer :: i, err, n
  integer :: a({{{{N}}}})
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    a(i) = 0
  end do
  !$acc parallel num_gangs({{{{G}}}}) copy(a(1:n))
  !$acc loop {swap("gang", "seq")}
  do i = 1, n
    a(i) = a(i) + 1
  end do
  !$acc end parallel
  do i = 1, n
    if (a(i) /= 1) err = err + 1
  end do
  if (err == 0) main = 1
end program test_loop_gang
"""
    desc = ("Explicit gang work-sharing; the cross substitutes seq, so every "
            "gang runs the full loop and each element is incremented "
            "num_gangs times.")
    deps = ["parallel.num_gangs", "parallel.copy"]
    return [
        template_text(name="loop_gang.c", feature="loop.gang", language="c",
                      description=desc, dependences=deps,
                      defaults={"N": 100, "G": 10}, code=c_code),
        template_text(name="loop_gang.f", feature="loop.gang",
                      language="fortran", description=desc, dependences=deps,
                      defaults={"N": 100, "G": 10}, code=f_code),
    ]


# ---------------------------------------------------------------------------
# worker / vector: gang+level work-sharing crossed with seq
# ---------------------------------------------------------------------------

def _level_template(level: str) -> List[str]:
    c_code = f"""
int main() {{
  int i, error = 0;
  int n = {{{{N}}}};
  int A[{{{{N}}}}];
  for(i=0; i<n; i++) A[i] = 0;
  #pragma acc parallel num_gangs({{{{G}}}}) copy(A[0:n])
  {{
    #pragma acc loop {swap(f"gang {level}", "seq")}
    for(i=0; i<n; i++)
      A[i] = A[i] + 1;
  }}
  for(i=0; i<n; i++) if(A[i] != 1) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_loop_{level}
  implicit none
  integer :: i, err, n
  integer :: a({{{{N}}}})
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    a(i) = 0
  end do
  !$acc parallel num_gangs({{{{G}}}}) copy(a(1:n))
  !$acc loop {swap(f"gang {level}", "seq")}
  do i = 1, n
    a(i) = a(i) + 1
  end do
  !$acc end parallel
  do i = 1, n
    if (a(i) /= 1) err = err + 1
  end do
  if (err == 0) main = 1
end program test_loop_{level}
"""
    desc = (f"gang {level} work-sharing must cover every iteration exactly "
            "once across gangs and their lanes; the seq cross multiplies the "
            "increments by the gang count.")
    deps = ["parallel.num_gangs", "parallel.copy", "loop.gang"]
    return [
        template_text(name=f"loop_{level}.c", feature=f"loop.{level}",
                      language="c", description=desc, dependences=deps,
                      defaults={"N": 96, "G": 4}, code=c_code),
        template_text(name=f"loop_{level}.f", feature=f"loop.{level}",
                      language="fortran", description=desc, dependences=deps,
                      defaults={"N": 96, "G": 4}, code=f_code),
    ]


def _worker() -> List[str]:
    return _level_template("worker")


def _vector() -> List[str]:
    return _level_template("vector")


# ---------------------------------------------------------------------------
# seq (IV-C2): last_i / is_larger ordering check; crossed with worker
# ---------------------------------------------------------------------------

def _seq() -> List[str]:
    c_code = f"""
int main() {{
  int i;
  int n = {{{{N}}}};
  int last_i = -1, is_larger = 1;
  #pragma acc parallel num_gangs(1) copy(last_i, is_larger)
  {{
    #pragma acc loop {swap("seq", "worker")}
    for(i=0; i<n; i++){{
      is_larger = ((i - last_i) == 1) && is_larger;
      last_i = i;
    }}
  }}
  return (is_larger == 1);
}}
"""
    f_code = f"""
program test_loop_seq
  implicit none
  integer :: i, n, last_i, is_larger
  n = {{{{N}}}}
  last_i = -1
  is_larger = 1
  !$acc parallel num_gangs(1) copy(last_i, is_larger)
  !$acc loop {swap("seq", "worker")}
  do i = 0, n-1
    if ((i - last_i) == 1 .and. is_larger == 1) then
      is_larger = 1
    else
      is_larger = 0
    end if
    last_i = i
  end do
  !$acc end parallel
  if (is_larger == 1) main = 1
end program test_loop_seq
"""
    desc = ("seq forces in-order execution, observed through the last_i / "
            "is_larger recurrence of Section IV-C2; the worker cross runs "
            "iterations out of order and must break the chain.")
    deps = ["parallel.copy"]
    return [
        template_text(name="loop_seq.c", feature="loop.seq", language="c",
                      description=desc, dependences=deps, defaults={"N": 64},
                      code=c_code),
        template_text(name="loop_seq.f", feature="loop.seq",
                      language="fortran", description=desc, dependences=deps,
                      defaults={"N": 64}, code=f_code),
    ]


# ---------------------------------------------------------------------------
# independent (IV-C1): asserting independence on a truly independent loop in
# a kernels region must work; asserting it on a dependent loop must break
# ---------------------------------------------------------------------------

def _independent() -> List[str]:
    c_code = f"""
int main() {{
  int i, error = 0;
  int n = {{{{N}}}};
  int a[{{{{N}}}}];
  for(i=0; i<n; i++) a[i] = 0;
  a[0] = 1;
  #pragma acc kernels copy(a[0:n])
  {{
{check('''    #pragma acc loop independent
    for(i=0; i<n; i++)
      a[i] = 2*i + 1;''')}{cross('''    #pragma acc loop independent
    for(i=1; i<n; i++)
      a[i] = a[i-1] + 2;''')}
  }}
  for(i=1; i<n; i++) if(a[i] != 2*i + 1) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_loop_independent
  implicit none
  integer :: i, err, n
  integer :: a({{{{N}}}})
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    a(i) = 0
  end do
  a(1) = 1
  !$acc kernels copy(a(1:n))
{check('''  !$acc loop independent
  do i = 1, n
    a(i) = 2*i + 1
  end do''')}{cross('''  !$acc loop independent
  do i = 2, n
    a(i) = a(i-1) + 2
  end do''')}
  !$acc end kernels
  do i = 2, n
    if (a(i) /= 2*i + 1) err = err + 1
  end do
  if (err == 0) main = 1
end program test_loop_independent
"""
    desc = ("independent overrides the kernels dependence analysis.  The "
            "functional loop really is independent (correct results); the "
            "cross loop carries a true dependence, so forced parallel "
            "execution must corrupt the recurrence (IV-C1).")
    deps = ["kernels.copy"]
    return [
        template_text(name="loop_independent.c", feature="loop.independent",
                      language="c", description=desc, dependences=deps,
                      defaults={"N": 64}, code=c_code),
        template_text(name="loop_independent.f", feature="loop.independent",
                      language="fortran", description=desc, dependences=deps,
                      defaults={"N": 64}, code=f_code),
    ]


# ---------------------------------------------------------------------------
# collapse (IV-C3): two-level nest linearised in order; crossed with worker
# ---------------------------------------------------------------------------

def _collapse() -> List[str]:
    c_code = f"""
int main() {{
  int i, j;
  int rows = {{{{R}}}}, cols = {{{{C}}}};
  int last = -1, in_order = 1;
  #pragma acc parallel num_gangs(1) copy(last, in_order)
  {{
    #pragma acc loop collapse(2) {swap("seq", "worker")}
    for(i=0; i<rows; i++)
      for(j=0; j<cols; j++){{
        in_order = ((i*cols + j - last) == 1) && in_order;
        last = i*cols + j;
      }}
  }}
  return (in_order == 1);
}}
"""
    f_code = f"""
program test_loop_collapse
  implicit none
  integer :: i, j, rows, cols, last, in_order
  rows = {{{{R}}}}
  cols = {{{{C}}}}
  last = -1
  in_order = 1
  !$acc parallel num_gangs(1) copy(last, in_order)
  !$acc loop collapse(2) {swap("seq", "worker")}
  do i = 0, rows-1
    do j = 0, cols-1
      if ((i*cols + j - last) == 1 .and. in_order == 1) then
        in_order = 1
      else
        in_order = 0
      end if
      last = i*cols + j
    end do
  end do
  !$acc end parallel
  if (in_order == 1) main = 1
end program test_loop_collapse
"""
    desc = ("collapse(2) associates both nested loops with the directive; "
            "with seq the linearised index must increase by exactly one per "
            "iteration (IV-C3).  The worker cross breaks the order.")
    deps = ["parallel.copy", "loop.seq"]
    return [
        template_text(name="loop_collapse.c", feature="loop.collapse",
                      language="c", description=desc, dependences=deps,
                      defaults={"R": 8, "C": 8}, code=c_code),
        template_text(name="loop_collapse.f", feature="loop.collapse",
                      language="fortran", description=desc, dependences=deps,
                      defaults={"R": 8, "C": 8}, code=f_code),
    ]


# ---------------------------------------------------------------------------
# loop private: in a kernels region the scalar defaults to copy semantics,
# so without privatisation the sequential fallback leaks the last iteration
# ---------------------------------------------------------------------------

def _loop_private() -> List[str]:
    c_code = f"""
int main() {{
  int i, t = 42, error = 0;
  int n = {{{{N}}}};
  int b[{{{{N}}}}];
  for(i=0; i<n; i++) b[i] = 0;
  #pragma acc kernels copy(b[0:n], t)
  {{
    #pragma acc loop {check("private(t)")}
    for(i=0; i<n; i++){{
      t = 3*i;
      b[i] = t + 1;
    }}
  }}
  if (t != 42) error++;
  for(i=0; i<n; i++) if(b[i] != 3*i + 1) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_loop_private
  implicit none
  integer :: i, t, err, n
  integer :: b({{{{N}}}})
  t = 42
  err = 0
  n = {{{{N}}}}
  do i = 1, n
    b(i) = 0
  end do
  !$acc kernels copy(b(1:n), t)
  !$acc loop {check("private(t)")}
  do i = 1, n
    t = 3*i
    b(i) = t + 1
  end do
  !$acc end kernels
  if (t /= 42) err = err + 1
  do i = 1, n
    if (b(i) /= 3*i + 1) err = err + 1
  end do
  if (err == 0) main = 1
end program test_loop_private
"""
    desc = ("private protects the copied-in scalar: after the region the "
            "host must still see 42.  Without the clause the kernels copy "
            "semantics write the last iteration's value back.")
    deps = ["kernels.copy"]
    return [
        template_text(name="loop_private.c", feature="loop.private",
                      language="c", description=desc, dependences=deps,
                      defaults={"N": 32}, code=c_code),
        template_text(name="loop_private.f", feature="loop.private",
                      language="fortran", description=desc, dependences=deps,
                      defaults={"N": 32}, code=f_code),
    ]


# ---------------------------------------------------------------------------
# combined constructs
# ---------------------------------------------------------------------------

def _combined_base() -> List[str]:
    out = []
    for combined in ("parallel loop", "kernels loop"):
        short = combined.replace(" ", "_")
        c_code = f"""
int main() {{
  int i, error = 0;
  int n = {{{{N}}}};
  int A[{{{{N}}}}], B[{{{{N}}}}];
  for(i=0; i<n; i++){{ A[i]=i; B[i]=0; }}
  {check(f"#pragma acc {combined} copyin(A[0:n]) copy(B[0:n])")}
  for(i=0; i<n; i++)
    B[i] = A[i] * 2 + acc_on_device(acc_device_not_host);
  for(i=0; i<n; i++) if(B[i] != A[i] * 2 + 1) error++;
  return (error == 0);
}}
"""
        f_code = f"""
program test_{short}
  implicit none
  integer :: i, err, n
  integer :: a({{{{N}}}}), b({{{{N}}}})
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    a(i) = i
    b(i) = 0
  end do
  {check(f"!$acc {combined} copyin(a(1:n)) copy(b(1:n))")}
  do i = 1, n
    b(i) = a(i) * 2 + acc_on_device(acc_device_not_host)
  end do
  {check(f"!$acc end {combined}")}
  do i = 1, n
    if (b(i) /= a(i) * 2 + 1) err = err + 1
  end do
  if (err == 0) main = 1
end program test_{short}
"""
        desc = (f"The combined {combined} construct offloads and work-shares "
                "in one directive; acc_on_device proves device execution "
                "(the cross run stays on the host and adds 0).")
        deps = ["runtime.acc_on_device"]
        out.append(template_text(
            name=f"{short}.c", feature=combined, language="c",
            description=desc, dependences=deps, defaults={"N": 60},
            code=c_code))
        out.append(template_text(
            name=f"{short}.f", feature=combined, language="fortran",
            description=desc, dependences=deps, defaults={"N": 60},
            code=f_code))
    return out


def _combined_reduction() -> List[str]:
    out = []
    for combined in ("parallel loop", "kernels loop"):
        short = combined.replace(" ", "_")
        c_code = f"""
int main() {{
  int i, known_sum, sum = 0;
  int n = {{{{N}}}};
  known_sum = (n * (n - 1)) / 2;
  #pragma acc {combined} {check("reduction(+:sum)")}
  for(i=0; i<n; i++)
    sum += i;
  return (sum == known_sum);
}}
"""
        f_code = f"""
program test_{short}_red
  implicit none
  integer :: i, known_sum, s, n
  n = {{{{N}}}}
  s = 0
  known_sum = (n * (n - 1)) / 2
  !$acc {combined} {check("reduction(+:s)")}
  do i = 0, n-1
    s = s + i
  end do
  !$acc end {combined}
  if (s == known_sum) main = 1
end program test_{short}_red
"""
        desc = (f"Sum reduction on the combined {combined} construct (the "
                "Fig. 7 design with an integer oracle); removing the clause "
                "leaves the host value untouched or corrupts the sum.")
        # In a kernels region a conforming compiler's dependence analysis
        # serialises the bare accumulation loop, so the cross run still
        # produces the correct sum — an inconclusive (same) cross.
        crossexpect = "same" if combined == "kernels loop" else "different"
        out.append(template_text(
            name=f"{short}_reduction.c", feature=f"{combined}.reduction",
            language="c", description=desc, dependences=[combined],
            defaults={"N": 64}, crossexpect=crossexpect, code=c_code))
        out.append(template_text(
            name=f"{short}_reduction.f", feature=f"{combined}.reduction",
            language="fortran", description=desc, dependences=[combined],
            defaults={"N": 64}, crossexpect=crossexpect, code=f_code))
    return out


def _parallel_loop_private() -> List[str]:
    c_code = f"""
int main() {{
  int i, t = 9, error = 0;
  int n = {{{{N}}}};
  int b[{{{{N}}}}];
  for(i=0; i<n; i++) b[i] = 0;
  #pragma acc parallel loop copy(b[0:n]) {check("private(t)")}
  for(i=0; i<n; i++){{
    t = i + 5;
    b[i] = t;
  }}
  if (t != 9) error++;
  for(i=0; i<n; i++) if(b[i] != i + 5) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_parallel_loop_private
  implicit none
  integer :: i, t, err, n
  integer :: b({{{{N}}}})
  t = 9
  err = 0
  n = {{{{N}}}}
  do i = 1, n
    b(i) = 0
  end do
  !$acc parallel loop copy(b(1:n)) {check("private(t)")}
  do i = 1, n
    t = i + 5
    b(i) = t
  end do
  !$acc end parallel loop
  if (t /= 9) err = err + 1
  do i = 1, n
    if (b(i) /= i + 5) err = err + 1
  end do
  if (err == 0) main = 1
end program test_parallel_loop_private
"""
    desc = ("private on the combined parallel loop protects the host scalar; "
            "implicit firstprivate gives the same observable result, so the "
            "cross expectation is `same`.")
    return [
        template_text(name="parallel_loop_private.c",
                      feature="parallel loop.private", language="c",
                      description=desc, dependences=["parallel loop"],
                      defaults={"N": 32}, crossexpect="same", code=c_code),
        template_text(name="parallel_loop_private.f",
                      feature="parallel loop.private", language="fortran",
                      description=desc, dependences=["parallel loop"],
                      defaults={"N": 32}, crossexpect="same", code=f_code),
    ]
