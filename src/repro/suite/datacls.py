"""Data-clause tests across the parallel, kernels and data constructs
(Section IV-B: "we need to write test cases for all possible combinations").

One parametric builder per clause emits the C and Fortran templates for all
three host constructs.  Cross tests follow the paper's substitution
methodology: ``copy`` is crossed with ``create`` (no copyout), ``copyin``
with ``copy`` (the destroyed device values leak back), ``copyout`` with
``create``, ``create`` with ``copy`` (the sentinel is clobbered), and
``present`` by deleting the enclosing data region (the present lookup must
then fail).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.suite.builders import check, cross, swap, template_text

CONSTRUCTS = ("parallel", "kernels", "data")


def templates() -> List[str]:
    out: List[str] = []
    for construct in CONSTRUCTS:
        out.extend(_copy(construct))
        out.extend(_copyin(construct))
        out.extend(_copyout(construct))
        out.extend(_create(construct))
        out.extend(_present(construct))
        out.extend(_pcopy(construct))
        out.extend(_pcopyin(construct))
        out.extend(_pcopyout(construct))
        out.extend(_pcreate(construct))
        out.extend(_deviceptr(construct))
    out.extend(_data_if())
    return out


# ---------------------------------------------------------------------------
# wrappers: how a computation is phrased under each construct
# ---------------------------------------------------------------------------

def _c_region(construct: str, clause_text: str, *loops: str) -> str:
    """Emit the construct carrying `clause_text`, running the loop bodies.

    Each element of `loops` is the body of one j-loop over [0, N).
    """
    if construct == "data":
        inner = "\n".join(
            "  #pragma acc parallel loop\n"
            "  for(j=0; j<N; j++){\n"
            f"    {body}\n"
            "  }"
            for body in loops
        )
        return f"#pragma acc data {clause_text}\n  {{\n{inner}\n  }}"
    inner = "\n".join(
        "  #pragma acc loop\n"
        "  for(j=0; j<N; j++){\n"
        f"    {body}\n"
        "  }"
        for body in loops
    )
    return f"#pragma acc {construct} {clause_text}\n  {{\n{inner}\n  }}"


def _f_region(construct: str, clause_text: str, *loops: str) -> str:
    if construct == "data":
        inner = "\n".join(
            "!$acc parallel loop\n"
            "do j = 1, n\n"
            f"  {body}\n"
            "end do\n"
            "!$acc end parallel loop"
            for body in loops
        )
        return f"!$acc data {clause_text}\n{inner}\n!$acc end data"
    inner = "\n".join(
        "!$acc loop\n"
        "do j = 1, n\n"
        f"  {body}\n"
        "end do"
        for body in loops
    )
    return f"!$acc {construct} {clause_text}\n{inner}\n!$acc end {construct}"


def _pair(
    construct: str,
    clause: str,
    c_code: str,
    f_code: str,
    description: str,
    crossexpect: str = "different",
    extra_deps: Tuple[str, ...] = (),
) -> List[str]:
    deps = list(extra_deps)
    deps.append("parallel loop" if construct == "data" else "loop")
    feature = f"{construct}.{clause}"
    short = construct.replace(" ", "_")
    return [
        template_text(
            name=f"{short}_{clause}.c", feature=feature, language="c",
            description=description, dependences=deps, defaults={"N": 50},
            crossexpect=crossexpect, code=c_code,
        ),
        template_text(
            name=f"{short}_{clause}.f", feature=feature, language="fortran",
            description=description, dependences=deps, defaults={"N": 50},
            crossexpect=crossexpect, code=f_code,
        ),
    ]


def _c_main(decls: str, setup: str, region: str, checks: str) -> str:
    return f"""
int main() {{
  int i, j, error = 0;
  int N = {{{{N}}}};
{decls}
{setup}
  {region}
{checks}
  return (error == 0);
}}
"""


def _f_main(name: str, decls: str, setup: str, region: str, checks: str) -> str:
    return f"""
program {name}
  implicit none
  integer :: i, j, err, n
{decls}
  n = {{{{N}}}}
  err = 0
{setup}
{region}
{checks}
  if (err == 0) main = 1
end program {name}
"""


# ---------------------------------------------------------------------------
# copy: in at entry, out at exit (Fig. 6); crossed with create
# ---------------------------------------------------------------------------

def _copy(construct: str) -> List[str]:
    clause = swap("copy(C[0:N])", "create(C[0:N])") + " copyin(A[0:N], B[0:N])"
    region = _c_region(construct, clause, "C[j] = A[j] + B[j] + 1;")
    c_code = _c_main(
        "  int A[{{N}}], B[{{N}}], C[{{N}}];",
        "  for(i=0; i<N; i++){ A[i]=i; B[i]=2*i; C[i]=-1; }",
        region,
        "  for(i=0; i<N; i++) if(C[i] != A[i] + B[i] + 1) error++;",
    )
    fclause = swap("copy(c(1:n))", "create(c(1:n))") + " copyin(a(1:n), b(1:n))"
    fregion = _f_region(construct, fclause, "c(j) = a(j) + b(j) + 1")
    f_code = _f_main(
        "test_copy",
        "  integer :: a({{N}}), b({{N}}), c({{N}})",
        "  do i = 1, n\n    a(i) = i\n    b(i) = 2*i\n    c(i) = -1\n  end do",
        fregion,
        "  do i = 1, n\n    if (c(i) /= a(i) + b(i) + 1) err = err + 1\n  end do",
    )
    return _pair(
        construct, "copy", c_code, f_code,
        "copy must move data in at entry and out at exit; the cross run "
        "substitutes create, so the host array keeps its initial values.",
    )


# ---------------------------------------------------------------------------
# copyin: device may clobber its copy, host values stay (Section IV-B2)
# ---------------------------------------------------------------------------

def _copyin(construct: str) -> List[str]:
    clause = swap("copyin(A[0:N])", "copy(A[0:N])") + " copy(C[0:N])"
    region = _c_region(construct, clause, "C[j] = A[j] + 1;", "A[j] = 0;")
    c_code = _c_main(
        "  int A[{{N}}], C[{{N}}];",
        "  for(i=0; i<N; i++){ A[i]=i+1; C[i]=0; }",
        region,
        "  for(i=0; i<N; i++){\n"
        "    if(C[i] != A[i] + 1) error++;\n"
        "    if(A[i] != i+1) error++;\n"
        "  }",
    )
    fclause = swap("copyin(a(1:n))", "copy(a(1:n))") + " copy(c(1:n))"
    fregion = _f_region(construct, fclause, "c(j) = a(j) + 1", "a(j) = 0")
    f_code = _f_main(
        "test_copyin",
        "  integer :: a({{N}}), c({{N}})",
        "  do i = 1, n\n    a(i) = i + 1\n    c(i) = 0\n  end do",
        fregion,
        "  do i = 1, n\n"
        "    if (c(i) /= a(i) + 1) err = err + 1\n"
        "    if (a(i) /= i + 1) err = err + 1\n"
        "  end do",
    )
    return _pair(
        construct, "copyin", c_code, f_code,
        "The device destroys its copy of the input array; the host values "
        "must survive.  Crossing with copy leaks the destroyed values back.",
    )


# ---------------------------------------------------------------------------
# copyout: device-assigned values must reach the host; crossed with create
# ---------------------------------------------------------------------------

def _copyout(construct: str) -> List[str]:
    clause = swap("copyout(B[0:N])", "create(B[0:N])")
    region = _c_region(construct, clause, "B[j] = 3*j + 2;")
    c_code = _c_main(
        "  int B[{{N}}];",
        "  for(i=0; i<N; i++) B[i] = -1;",
        region,
        "  for(i=0; i<N; i++) if(B[i] != 3*i + 2) error++;",
    )
    fclause = swap("copyout(b(1:n))", "create(b(1:n))")
    fregion = _f_region(construct, fclause, "b(j) = 3*j + 2")
    f_code = _f_main(
        "test_copyout",
        "  integer :: b({{N}})",
        "  do i = 1, n\n    b(i) = -1\n  end do",
        fregion,
        "  do i = 1, n\n    if (b(i) /= 3*i + 2) err = err + 1\n  end do",
    )
    return _pair(
        construct, "copyout", c_code, f_code,
        "Values assigned on the device must be transferred out at exit; the "
        "create cross leaves the host initial values in place.",
    )


# ---------------------------------------------------------------------------
# create: device-only scratch; the host sentinel must survive (IV-B4)
# ---------------------------------------------------------------------------

def _create(construct: str) -> List[str]:
    clause = (
        swap("create(T[0:N])", "copy(T[0:N])")
        + " copyin(A[0:N]) copy(C[0:N])"
    )
    region = _c_region(construct, clause, "T[j] = A[j] + 1;", "C[j] = T[j] * 2;")
    c_code = _c_main(
        "  int A[{{N}}], T[{{N}}], C[{{N}}];",
        "  for(i=0; i<N; i++){ A[i]=i; T[i]=-5; C[i]=0; }",
        region,
        "  for(i=0; i<N; i++){\n"
        "    if(C[i] != (A[i] + 1) * 2) error++;\n"
        "    if(T[i] != -5) error++;\n"
        "  }",
    )
    fclause = (
        swap("create(t(1:n))", "copy(t(1:n))")
        + " copyin(a(1:n)) copy(c(1:n))"
    )
    fregion = _f_region(construct, fclause, "t(j) = a(j) + 1", "c(j) = t(j) * 2")
    f_code = _f_main(
        "test_create",
        "  integer :: a({{N}}), t({{N}}), c({{N}})",
        "  do i = 1, n\n    a(i) = i\n    t(i) = -5\n    c(i) = 0\n  end do",
        fregion,
        "  do i = 1, n\n"
        "    if (c(i) /= (a(i) + 1) * 2) err = err + 1\n"
        "    if (t(i) /= -5) err = err + 1\n"
        "  end do",
    )
    return _pair(
        construct, "create", c_code, f_code,
        "create allocates device-only scratch: the data is neither copied in "
        "nor out, so the host sentinel (-5) must survive; crossing with copy "
        "clobbers it.",
    )


# ---------------------------------------------------------------------------
# present: data must already be on the device via an enclosing region;
# removing that region must make the present lookup fail (a runtime error)
# ---------------------------------------------------------------------------

def _present(construct: str) -> List[str]:
    if construct == "data":
        inner = _c_region("data", "present(A[0:N]) copy(C[0:N])",
                          "C[j] = A[j] + 1;")
    else:
        inner = _c_region(construct, "present(A[0:N]) copy(C[0:N])",
                          "C[j] = A[j] + 1;")
    region = (
        check("#pragma acc data copyin(A[0:N])")
        + "\n  {\n  "
        + inner
        + "\n  }"
    )
    c_code = _c_main(
        "  int A[{{N}}], C[{{N}}];",
        "  for(i=0; i<N; i++){ A[i]=4*i; C[i]=0; }",
        region,
        "  for(i=0; i<N; i++) if(C[i] != A[i] + 1) error++;",
    )
    if construct == "data":
        finner = _f_region("data", "present(a(1:n)) copy(c(1:n))",
                           "c(j) = a(j) + 1")
    else:
        finner = _f_region(construct, "present(a(1:n)) copy(c(1:n))",
                           "c(j) = a(j) + 1")
    fregion = (
        check("!$acc data copyin(a(1:n))")
        + "\n"
        + finner
        + "\n"
        + check("!$acc end data")
    )
    f_code = _f_main(
        "test_present",
        "  integer :: a({{N}}), c({{N}})",
        "  do i = 1, n\n    a(i) = 4*i\n    c(i) = 0\n  end do",
        fregion,
        "  do i = 1, n\n    if (c(i) /= a(i) + 1) err = err + 1\n  end do",
    )
    return _pair(
        construct, "present", c_code, f_code,
        "present asserts the data is already on the device; the cross run "
        "removes the enclosing copyin region, so a conforming implementation "
        "must fail the presence check at runtime.",
        extra_deps=("data.copyin",),
    )


# ---------------------------------------------------------------------------
# present_or_* family (pcopy/pcopyin/pcopyout/pcreate)
# ---------------------------------------------------------------------------

def _pcopy(construct: str) -> List[str]:
    clause = swap("pcopy(C[0:N])", "create(C[0:N])") + " copyin(A[0:N])"
    region = _c_region(construct, clause, "C[j] = A[j] + 2;")
    c_code = _c_main(
        "  int A[{{N}}], C[{{N}}];",
        "  for(i=0; i<N; i++){ A[i]=i; C[i]=0; }",
        region,
        "  for(i=0; i<N; i++) if(C[i] != A[i] + 2) error++;",
    )
    fclause = swap("pcopy(c(1:n))", "create(c(1:n))") + " copyin(a(1:n))"
    fregion = _f_region(construct, fclause, "c(j) = a(j) + 2")
    f_code = _f_main(
        "test_pcopy",
        "  integer :: a({{N}}), c({{N}})",
        "  do i = 1, n\n    a(i) = i\n    c(i) = 0\n  end do",
        fregion,
        "  do i = 1, n\n    if (c(i) /= a(i) + 2) err = err + 1\n  end do",
    )
    return _pair(
        construct, "present_or_copy", c_code, f_code,
        "pcopy on absent data behaves like copy (in and out); crossing with "
        "create suppresses both transfers.",
    )


def _pcopyin(construct: str) -> List[str]:
    clause = swap("pcopyin(A[0:N])", "pcopy(A[0:N])") + " copy(C[0:N])"
    region = _c_region(construct, clause, "C[j] = A[j] * 2;", "A[j] = -9;")
    c_code = _c_main(
        "  int A[{{N}}], C[{{N}}];",
        "  for(i=0; i<N; i++){ A[i]=i+3; C[i]=0; }",
        region,
        "  for(i=0; i<N; i++){\n"
        "    if(C[i] != (i+3) * 2) error++;\n"
        "    if(A[i] != i+3) error++;\n"
        "  }",
    )
    fclause = swap("pcopyin(a(1:n))", "pcopy(a(1:n))") + " copy(c(1:n))"
    fregion = _f_region(construct, fclause, "c(j) = a(j) * 2", "a(j) = -9")
    f_code = _f_main(
        "test_pcopyin",
        "  integer :: a({{N}}), c({{N}})",
        "  do i = 1, n\n    a(i) = i + 3\n    c(i) = 0\n  end do",
        fregion,
        "  do i = 1, n\n"
        "    if (c(i) /= (i + 3) * 2) err = err + 1\n"
        "    if (a(i) /= i + 3) err = err + 1\n"
        "  end do",
    )
    return _pair(
        construct, "present_or_copyin", c_code, f_code,
        "pcopyin on absent data copies in but never out; the pcopy cross "
        "leaks the destroyed device values back to the host.",
    )


def _pcopyout(construct: str) -> List[str]:
    clause = swap("pcopyout(B[0:N])", "pcreate(B[0:N])")
    region = _c_region(construct, clause, "B[j] = 7*j + 1;")
    c_code = _c_main(
        "  int B[{{N}}];",
        "  for(i=0; i<N; i++) B[i] = -1;",
        region,
        "  for(i=0; i<N; i++) if(B[i] != 7*i + 1) error++;",
    )
    fclause = swap("pcopyout(b(1:n))", "pcreate(b(1:n))")
    fregion = _f_region(construct, fclause, "b(j) = 7*j + 1")
    f_code = _f_main(
        "test_pcopyout",
        "  integer :: b({{N}})",
        "  do i = 1, n\n    b(i) = -1\n  end do",
        fregion,
        "  do i = 1, n\n    if (b(i) /= 7*i + 1) err = err + 1\n  end do",
    )
    return _pair(
        construct, "present_or_copyout", c_code, f_code,
        "pcopyout on absent data allocates and copies out at exit; the "
        "pcreate cross never transfers.",
    )


def _pcreate(construct: str) -> List[str]:
    clause = (
        swap("pcreate(T[0:N])", "pcopy(T[0:N])")
        + " copyin(A[0:N]) copy(C[0:N])"
    )
    region = _c_region(construct, clause, "T[j] = A[j] + 4;", "C[j] = T[j];")
    c_code = _c_main(
        "  int A[{{N}}], T[{{N}}], C[{{N}}];",
        "  for(i=0; i<N; i++){ A[i]=2*i; T[i]=-7; C[i]=0; }",
        region,
        "  for(i=0; i<N; i++){\n"
        "    if(C[i] != A[i] + 4) error++;\n"
        "    if(T[i] != -7) error++;\n"
        "  }",
    )
    fclause = (
        swap("pcreate(t(1:n))", "pcopy(t(1:n))")
        + " copyin(a(1:n)) copy(c(1:n))"
    )
    fregion = _f_region(construct, fclause, "t(j) = a(j) + 4", "c(j) = t(j)")
    f_code = _f_main(
        "test_pcreate",
        "  integer :: a({{N}}), t({{N}}), c({{N}})",
        "  do i = 1, n\n    a(i) = 2*i\n    t(i) = -7\n    c(i) = 0\n  end do",
        fregion,
        "  do i = 1, n\n"
        "    if (c(i) /= a(i) + 4) err = err + 1\n"
        "    if (t(i) /= -7) err = err + 1\n"
        "  end do",
    )
    return _pair(
        construct, "present_or_create", c_code, f_code,
        "pcreate on absent data allocates without transfers; the pcopy cross "
        "clobbers the host sentinel at exit.",
    )


# ---------------------------------------------------------------------------
# deviceptr: raw device allocations from acc_malloc (Section IV-B5).
# On a conforming implementation removing the clause may still bind the
# pointer, so the cross expectation is `same`.
# ---------------------------------------------------------------------------

def _deviceptr(construct: str) -> List[str]:
    if construct == "data":
        region = (
            "#pragma acc data deviceptr(d)\n  {\n"
            "  #pragma acc parallel deviceptr(d) copy(out[0:N])\n  {\n"
            "    #pragma acc loop\n"
            "    for(j=0; j<N; j++){\n"
            "      d[j] = 3*j;\n"
            "      out[j] = d[j] + 1;\n"
            "    }\n"
            "  }\n  }"
        )
    else:
        region = _c_region(
            construct, "deviceptr(d) copy(out[0:N])",
            "d[j] = 3*j; out[j] = d[j] + 1;",
        )
    c_code = f"""
int main() {{
  int i, j, error = 0;
  int N = {{{{N}}}};
  int out[{{{{N}}}}];
  int *d;
  for(i=0; i<N; i++) out[i] = -1;
  d = (int*)acc_malloc(N*sizeof(int));
  {region}
  acc_free(d);
  for(i=0; i<N; i++) if(out[i] != 3*i + 1) error++;
  return (error == 0);
}}
"""
    if construct == "data":
        fregion = (
            "!$acc data deviceptr(d)\n"
            "!$acc parallel deviceptr(d) copy(out(1:n))\n"
            "!$acc loop\n"
            "do j = 1, n\n"
            "  d(j) = 3*j\n"
            "  out(j) = d(j) + 1\n"
            "end do\n"
            "!$acc end parallel\n"
            "!$acc end data"
        )
    else:
        fregion = _f_region(
            construct, "deviceptr(d) copy(out(1:n))",
            "d(j) = 3*j\n  out(j) = d(j) + 1",
        )
    f_code = f"""
program test_deviceptr
  implicit none
  integer :: i, j, err, n
  integer :: out({{{{N}}}})
  integer :: d(1)
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    out(i) = -1
  end do
  d = acc_malloc((n+1)*4)
  {fregion}
  call acc_free(d)
  do i = 1, n
    if (out(i) /= 3*i + 1) err = err + 1
  end do
  if (err == 0) main = 1
end program test_deviceptr
"""
    return _pair(
        construct, "deviceptr", c_code, f_code,
        "A raw acc_malloc allocation computed through a deviceptr binding, "
        "verified by copying results out through a mapped array (IV-B5).",
        crossexpect="same",
        extra_deps=("runtime.acc_malloc", "runtime.acc_free"),
    )


# ---------------------------------------------------------------------------
# data if: a false condition suppresses the data actions, so an inner
# `present` assertion must fail (the paper's IV-B cross methodology)
# ---------------------------------------------------------------------------

def _data_if() -> List[str]:
    inner = _c_region("parallel", "present(A[0:N]) copy(C[0:N])",
                      "C[j] = A[j] + 6;")
    c_code = f"""
int main() {{
  int i, j, error = 0;
  int N = {{{{N}}}};
  int A[{{{{N}}}}], C[{{{{N}}}}];
  for(i=0; i<N; i++){{ A[i]=i; C[i]=0; }}
  #pragma acc data {swap("if (1)", "if (0)")} copyin(A[0:N])
  {{
  {inner}
  }}
  for(i=0; i<N; i++) if(C[i] != A[i] + 6) error++;
  return (error == 0);
}}
"""
    finner = _f_region("parallel", "present(a(1:n)) copy(c(1:n))",
                       "c(j) = a(j) + 6")
    f_code = f"""
program test_data_if
  implicit none
  integer :: i, j, err, n
  integer :: a({{{{N}}}}), c({{{{N}}}})
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    a(i) = i
    c(i) = 0
  end do
  !$acc data {swap("if (1 == 1)", "if (1 == 0)")} copyin(a(1:n))
{finner}
  !$acc end data
  do i = 1, n
    if (c(i) /= a(i) + 6) err = err + 1
  end do
  if (err == 0) main = 1
end program test_data_if
"""
    desc = ("The data construct's if clause gates the data actions: with a "
            "false condition the inner present assertion must fail at "
            "runtime (the cross run flips the condition).")
    return [
        template_text(name="data_if.c", feature="data.if", language="c",
                      description=desc, defaults={"N": 50},
                      dependences=["data.copyin", "parallel.present"],
                      code=c_code),
        template_text(name="data_if.f", feature="data.if", language="fortran",
                      description=desc, defaults={"N": 50},
                      dependences=["data.copyin", "parallel.present"],
                      code=f_code),
    ]
