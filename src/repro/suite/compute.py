"""Tests for the parallel and kernels compute constructs (Section IV-A).

Covers the construct bodies themselves plus ``if``, ``async``,
``num_gangs``, ``num_workers``, ``vector_length``, ``reduction``,
``private`` and ``firstprivate``.  Data clauses on the compute constructs
are covered by the shared family builder in :mod:`repro.suite.datacls`.
"""

from __future__ import annotations

from typing import List

from repro.suite.builders import check, cross, swap, template_text


def templates() -> List[str]:
    out: List[str] = []
    out.extend(_construct_base())
    out.extend(_if_clause())
    out.extend(_async_clause())
    out.extend(_num_gangs())
    out.extend(_num_workers())
    out.extend(_vector_length())
    out.extend(_reduction())
    out.extend(_private())
    out.extend(_firstprivate())
    return out


# ---------------------------------------------------------------------------
# parallel / kernels base: region must execute on the accelerator
# ---------------------------------------------------------------------------

def _construct_base() -> List[str]:
    out = []
    for construct in ("parallel", "kernels"):
        c_code = f"""
int main() {{
  int ondev = 0;
  {check(f"#pragma acc {construct} copy(ondev)")}
  {{
    ondev = acc_on_device(acc_device_not_host);
  }}
  return (ondev == 1);
}}
"""
        out.append(template_text(
            name=f"{construct}.c",
            feature=construct,
            language="c",
            description=f"The {construct} region must execute on the accelerator "
                        "(observed via acc_on_device); removing the directive "
                        "leaves host execution, which must change the result.",
            dependences=[f"{construct}.copy", "runtime.acc_on_device"],
            code=c_code,
        ))
        f_code = f"""
program test_{construct}
  implicit none
  integer :: ondev
  ondev = 0
  {check(f"!$acc {construct} copy(ondev)")}
  ondev = acc_on_device(acc_device_not_host)
  {check(f"!$acc end {construct}")}
  if (ondev == 1) main = 1
end program test_{construct}
"""
        out.append(template_text(
            name=f"{construct}.f",
            feature=construct,
            language="fortran",
            description=f"Fortran variant of the {construct} base test.",
            dependences=[f"{construct}.copy", "runtime.acc_on_device"],
            code=f_code,
        ))
    return out


# ---------------------------------------------------------------------------
# if clause (Fig. 5 design): the host precomputes how many outer iterations
# run on the device; removing `if` offloads all of them
# ---------------------------------------------------------------------------

def _if_clause() -> List[str]:
    out = []
    for construct in ("parallel", "kernels"):
        c_code = f"""
int main() {{
  int i, m, error = 0, sum, device_iters;
  int N = {{{{N}}}};
  int A[{{{{N}}}}], B[{{{{N}}}}], C[{{{{N}}}}];
  for(i=0; i<N; i++){{ A[i]=i; B[i]=2*i+1; C[i]=0; }}
  sum = 1; device_iters = 0;
  for(m=0; m<N; m++){{ if(sum < N) device_iters++; sum += m; }}
  #pragma acc data copy(C[0:N]) copyin(A[0:N], B[0:N])
  {{
    sum = 1;
    for(m=0; m<N; m++){{
      #pragma acc {construct} loop {check("if (sum < N)")}
      for(int j=0; j<N; j++){{
        C[j] += A[j] + B[j];
      }}
      sum += m;
    }}
  }}
  for(i=0; i<N; i++){{
    if(C[i] != device_iters*(A[i] + B[i]))
      error++;
  }}
  return (error == 0);
}}
"""
        out.append(template_text(
            name=f"{construct}_if.c",
            feature=f"{construct}.if",
            language="c",
            description="When the if condition is false the region runs on the "
                        "host and its writes are overwritten by the data-region "
                        "copyout (Fig. 5); removing the clause offloads every "
                        "iteration.",
            dependences=["data.copy", "data.copyin", f"{construct} loop"],
            defaults={"N": 60},
            code=c_code,
        ))
        f_code = f"""
program test_if
  implicit none
  integer :: i, m, err, s, device_iters, n
  integer :: a({{{{N}}}}), b({{{{N}}}}), c({{{{N}}}})
  n = {{{{N}}}}
  err = 0
  do i = 1, n
    a(i) = i
    b(i) = 2*i + 1
    c(i) = 0
  end do
  s = 1
  device_iters = 0
  do m = 0, n-1
    if (s < n) device_iters = device_iters + 1
    s = s + m
  end do
  !$acc data copy(c(1:n)) copyin(a(1:n), b(1:n))
  s = 1
  do m = 0, n-1
    !$acc {construct} loop {check("if (s < n)")}
    do i = 1, n
      c(i) = c(i) + a(i) + b(i)
    end do
    !$acc end {construct} loop
    s = s + m
  end do
  !$acc end data
  do i = 1, n
    if (c(i) /= device_iters*(a(i) + b(i))) err = err + 1
  end do
  if (err == 0) main = 1
end program test_if
"""
        out.append(template_text(
            name=f"{construct}_if.f",
            feature=f"{construct}.if",
            language="fortran",
            description="Fortran variant of the if-clause test.",
            dependences=["data.copy", "data.copyin", f"{construct} loop"],
            defaults={"N": 60},
            code=f_code,
        ))
    return out


# ---------------------------------------------------------------------------
# async clause (Fig. 10 design): acc_async_test must observe incompleteness
# before the wait and completion after it
# ---------------------------------------------------------------------------

def _async_clause() -> List[str]:
    out = []
    for construct in ("parallel", "kernels"):
        c_code = f"""
int main() {{
  int i, ok = 1, is_sync = -1;
  int N = {{{{N}}}}, tag = 3;
  int A[{{{{N}}}}], C[{{{{N}}}}];
  for(i=0; i<N; i++){{ A[i]=i; C[i]=0; }}
  #pragma acc {construct} copyin(A[0:N]) copy(C[0:N]) {check("async(tag)")}
  {{
    #pragma acc loop
    for(i=0; i<N; i++)
      C[i] = A[i] + 1;
  }}
  is_sync = acc_async_test(tag);
  if (is_sync != 0) ok = 0;
  #pragma acc wait(tag)
  is_sync = acc_async_test(tag);
  if (is_sync == 0) ok = 0;
  for(i=0; i<N; i++) if (C[i] != A[i] + 1) ok = 0;
  return ok;
}}
"""
        out.append(template_text(
            name=f"{construct}_async.c",
            feature=f"{construct}.async",
            language="c",
            description="Asynchronous region: acc_async_test returns 0 before "
                        "the wait and nonzero after (Fig. 10); without async "
                        "the first test already sees completion.",
            dependences=["runtime.acc_async_test", "wait", "loop"],
            defaults={"N": 50},
            code=c_code,
        ))
        f_code = f"""
program test_async
  implicit none
  integer :: i, ok, is_sync, n, tag
  integer :: a({{{{N}}}}), c({{{{N}}}})
  n = {{{{N}}}}
  tag = 3
  ok = 1
  is_sync = -1
  do i = 1, n
    a(i) = i
    c(i) = 0
  end do
  !$acc {construct} copyin(a(1:n)) copy(c(1:n)) {check("async(tag)")}
  !$acc loop
  do i = 1, n
    c(i) = a(i) + 1
  end do
  !$acc end {construct}
  is_sync = acc_async_test(tag)
  if (is_sync /= 0) ok = 0
  !$acc wait(tag)
  is_sync = acc_async_test(tag)
  if (is_sync == 0) ok = 0
  do i = 1, n
    if (c(i) /= a(i) + 1) ok = 0
  end do
  main = ok
end program test_async
"""
        out.append(template_text(
            name=f"{construct}_async.f",
            feature=f"{construct}.async",
            language="fortran",
            description="Fortran variant of the async test.",
            dependences=["runtime.acc_async_test", "wait", "loop"],
            defaults={"N": 50},
            code=f_code,
        ))
    return out


# ---------------------------------------------------------------------------
# num_gangs (Fig. 9): a gang-count reduction must equal the requested count
# ---------------------------------------------------------------------------

def _num_gangs() -> List[str]:
    c_code = f"""
int main() {{
  int gang_num = 0;
  int known_gang_num = {{{{G}}}};
  #pragma acc parallel {check("num_gangs({{G}})")} reduction(+:gang_num)
  {{
    gang_num++;
  }}
  return (gang_num == known_gang_num);
}}
"""
    f_code = f"""
program test_num_gangs
  implicit none
  integer :: gang_num, known
  gang_num = 0
  known = {{{{G}}}}
  !$acc parallel {check("num_gangs({{G}})")} reduction(+:gang_num)
  gang_num = gang_num + 1
  !$acc end parallel
  if (gang_num == known) main = 1
end program test_num_gangs
"""
    deps = ["parallel.reduction"]
    desc = ("Every gang increments a reduction counter; the combined value "
            "must equal the requested gang count (Fig. 9).  Removing the "
            "clause leaves the implementation-default gang count.")
    return [
        template_text(name="parallel_num_gangs.c", feature="parallel.num_gangs",
                      language="c", description=desc, dependences=deps,
                      defaults={"G": 8}, code=c_code),
        template_text(name="parallel_num_gangs.f", feature="parallel.num_gangs",
                      language="fortran", description=desc, dependences=deps,
                      defaults={"G": 8}, code=f_code),
    ]


# ---------------------------------------------------------------------------
# num_workers (Fig. 4): gang loop over rows, worker loop reduction per gang.
# A conforming implementation produces the same values for any worker count,
# so the cross expectation is `same` (scheduling-only clause).
# ---------------------------------------------------------------------------

def _num_workers() -> List[str]:
    c_code = f"""
int main() {{
  int i, j, error = 0;
  int gangs = {{{{G}}}}, workers_load = {{{{L}}}};
  int gangs_red[{{{{G}}}}];
  for(i=0; i<gangs; i++)
    gangs_red[i] = 0;
  #pragma acc parallel copy(gangs_red[0:gangs]) num_gangs({{{{G}}}}) {check("num_workers({{W}})")}
  {{
    #pragma acc loop gang
    for(i=0; i<gangs; i++){{
      int to_reduct = 0;
      #pragma acc loop worker reduction(+:to_reduct)
      for(j=0; j<workers_load; j++)
        to_reduct++;
      gangs_red[i] = to_reduct;
    }}
  }}
  for(i=0; i<gangs; i++){{
    if(gangs_red[i] != workers_load)
      error++;
  }}
  return (error == 0);
}}
"""
    f_code = f"""
program test_num_workers
  implicit none
  integer :: i, j, err, gangs, workers_load, to_reduct
  integer :: gangs_red({{{{G}}}})
  gangs = {{{{G}}}}
  workers_load = {{{{L}}}}
  err = 0
  do i = 1, gangs
    gangs_red(i) = 0
  end do
  !$acc parallel copy(gangs_red(1:gangs)) num_gangs({{{{G}}}}) {check("num_workers({{W}})")}
  !$acc loop gang private(to_reduct)
  do i = 1, gangs
    to_reduct = 0
    !$acc loop worker reduction(+:to_reduct)
    do j = 1, workers_load
      to_reduct = to_reduct + 1
    end do
    gangs_red(i) = to_reduct
  end do
  !$acc end parallel
  do i = 1, gangs
    if (gangs_red(i) /= workers_load) err = err + 1
  end do
  if (err == 0) main = 1
end program test_num_workers
"""
    deps = ["parallel.num_gangs", "loop.gang", "loop.worker", "loop.reduction"]
    desc = ("Two-level nested loop: outer on gangs, inner reduction on the "
            "workers of one gang (Fig. 4).  The worker count must not change "
            "the reduction value, so the cross run legitimately matches.")
    return [
        template_text(name="parallel_num_workers.c", feature="parallel.num_workers",
                      language="c", description=desc, dependences=deps,
                      defaults={"G": 4, "W": 4, "L": 64}, crossexpect="same",
                      code=c_code),
        template_text(name="parallel_num_workers.f", feature="parallel.num_workers",
                      language="fortran", description=desc, dependences=deps,
                      defaults={"G": 4, "W": 4, "L": 64}, crossexpect="same",
                      code=f_code),
    ]


# ---------------------------------------------------------------------------
# vector_length: vector analogue of the num_workers design
# ---------------------------------------------------------------------------

def _vector_length() -> List[str]:
    c_code = f"""
int main() {{
  int i, j, error = 0;
  int gangs = {{{{G}}}}, lanes_load = {{{{L}}}};
  int gangs_red[{{{{G}}}}];
  for(i=0; i<gangs; i++)
    gangs_red[i] = 0;
  #pragma acc parallel copy(gangs_red[0:gangs]) num_gangs({{{{G}}}}) {check("vector_length({{V}})")}
  {{
    #pragma acc loop gang
    for(i=0; i<gangs; i++){{
      int to_reduct = 0;
      #pragma acc loop vector reduction(+:to_reduct)
      for(j=0; j<lanes_load; j++)
        to_reduct++;
      gangs_red[i] = to_reduct;
    }}
  }}
  for(i=0; i<gangs; i++){{
    if(gangs_red[i] != lanes_load)
      error++;
  }}
  return (error == 0);
}}
"""
    f_code = f"""
program test_vector_length
  implicit none
  integer :: i, j, err, gangs, lanes_load, to_reduct
  integer :: gangs_red({{{{G}}}})
  gangs = {{{{G}}}}
  lanes_load = {{{{L}}}}
  err = 0
  do i = 1, gangs
    gangs_red(i) = 0
  end do
  !$acc parallel copy(gangs_red(1:gangs)) num_gangs({{{{G}}}}) {check("vector_length({{V}})")}
  !$acc loop gang private(to_reduct)
  do i = 1, gangs
    to_reduct = 0
    !$acc loop vector reduction(+:to_reduct)
    do j = 1, lanes_load
      to_reduct = to_reduct + 1
    end do
    gangs_red(i) = to_reduct
  end do
  !$acc end parallel
  do i = 1, gangs
    if (gangs_red(i) /= lanes_load) err = err + 1
  end do
  if (err == 0) main = 1
end program test_vector_length
"""
    deps = ["parallel.num_gangs", "loop.gang", "loop.vector", "loop.reduction"]
    desc = ("Vector-level reduction inside a gang loop; the vector length is "
            "a scheduling knob that must not change the values (cross "
            "expectation `same`).")
    return [
        template_text(name="parallel_vector_length.c",
                      feature="parallel.vector_length", language="c",
                      description=desc, dependences=deps,
                      defaults={"G": 4, "V": 8, "L": 64}, crossexpect="same",
                      code=c_code),
        template_text(name="parallel_vector_length.f",
                      feature="parallel.vector_length", language="fortran",
                      description=desc, dependences=deps,
                      defaults={"G": 4, "V": 8, "L": 64}, crossexpect="same",
                      code=f_code),
    ]


# ---------------------------------------------------------------------------
# parallel reduction: gang-redundant increments combine across gangs; the
# cross run drops the clause, leaving the host value untouched
# ---------------------------------------------------------------------------

def _reduction() -> List[str]:
    c_code = f"""
int main() {{
  int red = 5;
  int expected = 5 + 3 * {{{{G}}}};
  #pragma acc parallel num_gangs({{{{G}}}}) {check("reduction(+:red)")}
  {{
    red = red + 3;
  }}
  return (red == expected);
}}
"""
    f_code = f"""
program test_parallel_reduction
  implicit none
  integer :: red, expected
  red = 5
  expected = 5 + 3 * {{{{G}}}}
  !$acc parallel num_gangs({{{{G}}}}) {check("reduction(+:red)")}
  red = red + 3
  !$acc end parallel
  if (red == expected) main = 1
end program test_parallel_reduction
"""
    deps = ["parallel.num_gangs"]
    desc = ("Each gang contributes 3 to a +-reduction initialised to 5; the "
            "result must be 5 + 3*num_gangs.  Without the clause the scalar "
            "is gang-firstprivate and the host value never changes.")
    return [
        template_text(name="parallel_reduction.c", feature="parallel.reduction",
                      language="c", description=desc, dependences=deps,
                      defaults={"G": 8}, code=c_code),
        template_text(name="parallel_reduction.f", feature="parallel.reduction",
                      language="fortran", description=desc, dependences=deps,
                      defaults={"G": 8}, code=f_code),
    ]


# ---------------------------------------------------------------------------
# parallel private: each gang gets its own copy (per Section IV-A2 a
# conforming implementation is also correct without the clause, so `same`)
# ---------------------------------------------------------------------------

def _private() -> List[str]:
    c_code = f"""
int main() {{
  int i, t = -1, error = 0;
  int b[{{{{G}}}}];
  for(i=0; i<{{{{G}}}}; i++) b[i] = 0;
  #pragma acc parallel num_gangs({{{{G}}}}) copy(b[0:{{{{G}}}}]) {check("private(t)")}
  {{
    #pragma acc loop gang
    for(i=0; i<{{{{G}}}}; i++){{
      t = 2*i;
      b[i] = t + 1;
    }}
  }}
  for(i=0; i<{{{{G}}}}; i++) if (b[i] != 2*i + 1) error++;
  if (t != -1) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_parallel_private
  implicit none
  integer :: i, t, err
  integer :: b({{{{G}}}})
  t = -1
  err = 0
  do i = 1, {{{{G}}}}
    b(i) = 0
  end do
  !$acc parallel num_gangs({{{{G}}}}) copy(b(1:{{{{G}}}})) {check("private(t)")}
  !$acc loop gang
  do i = 1, {{{{G}}}}
    t = 2*i
    b(i) = t + 1
  end do
  !$acc end parallel
  do i = 1, {{{{G}}}}
    if (b(i) /= 2*i + 1) err = err + 1
  end do
  if (t /= -1) err = err + 1
  if (err == 0) main = 1
end program test_parallel_private
"""
    deps = ["parallel.num_gangs", "parallel.copy", "loop.gang"]
    desc = ("Gang-private scratch variable feeding per-row writes; the host "
            "copy must remain untouched.  Implicit firstprivate gives the "
            "same observable behaviour, so the cross expectation is `same`.")
    return [
        template_text(name="parallel_private.c", feature="parallel.private",
                      language="c", description=desc, dependences=deps,
                      defaults={"G": 8}, crossexpect="same", code=c_code),
        template_text(name="parallel_private.f", feature="parallel.private",
                      language="fortran", description=desc, dependences=deps,
                      defaults={"G": 8}, crossexpect="same", code=f_code),
    ]


# ---------------------------------------------------------------------------
# parallel firstprivate: initialised from the host value; the cross run
# substitutes `private`, losing the initialisation (Section III)
# ---------------------------------------------------------------------------

def _firstprivate() -> List[str]:
    c_code = f"""
int main() {{
  int i, t = 7, error = 0;
  int b[{{{{G}}}}];
  for(i=0; i<{{{{G}}}}; i++) b[i] = 0;
  #pragma acc parallel num_gangs({{{{G}}}}) copy(b[0:{{{{G}}}}]) {swap("firstprivate(t)", "private(t)")}
  {{
    #pragma acc loop gang
    for(i=0; i<{{{{G}}}}; i++){{
      b[i] = t + i;
    }}
  }}
  for(i=0; i<{{{{G}}}}; i++) if (b[i] != 7 + i) error++;
  return (error == 0);
}}
"""
    f_code = f"""
program test_parallel_firstprivate
  implicit none
  integer :: i, t, err
  integer :: b({{{{G}}}})
  t = 7
  err = 0
  do i = 1, {{{{G}}}}
    b(i) = 0
  end do
  !$acc parallel num_gangs({{{{G}}}}) copy(b(1:{{{{G}}}})) {swap("firstprivate(t)", "private(t)")}
  !$acc loop gang
  do i = 1, {{{{G}}}}
    b(i) = t + i - 1
  end do
  !$acc end parallel
  do i = 1, {{{{G}}}}
    if (b(i) /= 7 + i - 1) err = err + 1
  end do
  if (err == 0) main = 1
end program test_parallel_firstprivate
"""
    deps = ["parallel.num_gangs", "parallel.copy", "loop.gang"]
    desc = ("firstprivate copies must start from the host value (7); the "
            "cross test substitutes private, whose copies are uninitialised, "
            "exactly the substitution methodology of Section III.")
    return [
        template_text(name="parallel_firstprivate.c",
                      feature="parallel.firstprivate", language="c",
                      description=desc, dependences=deps, defaults={"G": 8},
                      code=c_code),
        template_text(name="parallel_firstprivate.f",
                      feature="parallel.firstprivate", language="fortran",
                      description=desc, dependences=deps, defaults={"G": 8},
                      code=f_code),
    ]
