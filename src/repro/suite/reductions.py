"""The reduction test matrix (Section IV-C4).

"The reduction test covers combinations of different types of data (e.g.
int, float and double) and different types of reduction operations
(+, *, max, min, &&, ||, &, |, ^)."

Each test precomputes the oracle on the host with a sequential loop, then
performs the same reduction through a ``parallel loop reduction`` clause
(so the gang-distributed loop exercises cross-gang combination).  Floating
comparisons use the paper's 1e-9 rounding tolerance (Fig. 7).  The cross
run removes the clause: the scalar then defaults to gang-firstprivate and
the host value never changes, which must differ from the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.suite.builders import check, template_text


@dataclass(frozen=True)
class _OpSpec:
    key: str            # feature leaf: add/mul/max/min/bitand/...
    c_op: str           # clause spelling in C
    f_op: str           # clause spelling in Fortran
    c_combine: str      # C statement combining v with d[i]
    c_host: str         # C statement combining expected with d[i]
    f_combine: str      # Fortran statement combining v with d(i)
    f_host: str         # Fortran statement for the oracle
    c_data: str         # C expression for d[i]
    f_data: str         # Fortran expression for d(i)
    v0: str             # initial value (used in both languages)
    n: int = 64


_INT_OPS: List[_OpSpec] = [
    _OpSpec("add", "+", "+",
            "v = v + d[i];", "expected = expected + d[i];",
            "v = v + d(i)", "expected = expected + d(i)",
            "(i % 7) + 1", "mod(i, 7) + 1", "3"),
    _OpSpec("mul", "*", "*",
            "v = v * d[i];", "expected = expected * d[i];",
            "v = v * d(i)", "expected = expected * d(i)",
            "(i % 2) + 1", "mod(i, 2) + 1", "1", n=12),
    _OpSpec("max", "max", "max",
            "v = (d[i] > v) ? d[i] : v;",
            "expected = (d[i] > expected) ? d[i] : expected;",
            "v = max(v, d(i))", "expected = max(expected, d(i))",
            "(i * 37) % 101 - 50", "mod(i * 37, 101) - 50", "-100"),
    _OpSpec("min", "min", "min",
            "v = (d[i] < v) ? d[i] : v;",
            "expected = (d[i] < expected) ? d[i] : expected;",
            "v = min(v, d(i))", "expected = min(expected, d(i))",
            "(i * 37) % 101 - 50", "mod(i * 37, 101) - 50", "100"),
    _OpSpec("bitand", "&", "iand",
            "v = v & d[i];", "expected = expected & d[i];",
            "v = iand(v, d(i))", "expected = iand(expected, d(i))",
            "65535 - (1 << (i % 8))", "65535 - 2 ** mod(i, 8)", "65535"),
    _OpSpec("bitor", "|", "ior",
            "v = v | d[i];", "expected = expected | d[i];",
            "v = ior(v, d(i))", "expected = ior(expected, d(i))",
            "1 << (i % 12)", "2 ** mod(i, 12)", "0"),
    _OpSpec("bitxor", "^", "ieor",
            "v = v ^ d[i];", "expected = expected ^ d[i];",
            "v = ieor(v, d(i))", "expected = ieor(expected, d(i))",
            "1 << (i % 5)", "2 ** mod(i, 5)", "0"),
    _OpSpec("logand", "&&", ".and.",
            "v = v && d[i];", "expected = expected && d[i];",
            "v = merge(1, 0, v == 1 .and. d(i) == 1)",
            "expected = merge(1, 0, expected == 1 .and. d(i) == 1)",
            "(i != 37)", "merge(1, 0, i /= 37)", "1"),
    _OpSpec("logor", "||", ".or.",
            "v = v || d[i];", "expected = expected || d[i];",
            "v = merge(1, 0, v == 1 .or. d(i) == 1)",
            "expected = merge(1, 0, expected == 1 .or. d(i) == 1)",
            "(i == 37)", "merge(1, 0, i == 37)", "0"),
]

_FLOAT_OPS: List[_OpSpec] = [
    _OpSpec("add", "+", "+",
            "v = v + d[i];", "expected = expected + d[i];",
            "v = v + d(i)", "expected = expected + d(i)",
            "pow(0.5, i % 20)", "0.5 ** mod(i, 20)", "0.0", n=20),
    _OpSpec("mul", "*", "*",
            "v = v * d[i];", "expected = expected * d[i];",
            "v = v * d(i)", "expected = expected * d(i)",
            "0.5 + (i % 3) * 0.25", "0.5 + mod(i, 3) * 0.25", "1.0", n=12),
    _OpSpec("max", "max", "max",
            "v = (d[i] > v) ? d[i] : v;",
            "expected = (d[i] > expected) ? d[i] : expected;",
            "v = max(v, d(i))", "expected = max(expected, d(i))",
            "((i * 7) % 19) * 0.5 - 4.0", "mod(i * 7, 19) * 0.5 - 4.0",
            "-1000.0"),
    _OpSpec("min", "min", "min",
            "v = (d[i] < v) ? d[i] : v;",
            "expected = (d[i] < expected) ? d[i] : expected;",
            "v = min(v, d(i))", "expected = min(expected, d(i))",
            "((i * 7) % 19) * 0.5 - 4.0", "mod(i * 7, 19) * 0.5 - 4.0",
            "1000.0"),
]


def templates() -> List[str]:
    out: List[str] = []
    for spec in _INT_OPS:
        out.append(_c_template("int", spec))
        out.append(_f_template("integer", spec))
    for ctype, ftype in (("float", "real"), ("double", "doubleprecision")):
        for spec in _FLOAT_OPS:
            out.append(_c_template(ctype, spec))
            out.append(_f_template(ftype, spec))
    return out


def _feature(type_name: str, spec: _OpSpec) -> str:
    base = {"int": "int", "integer": "int",
            "float": "float", "real": "float",
            "double": "double", "doubleprecision": "double"}[type_name]
    return f"loop.reduction.{base}_{spec.key}"


def _c_template(ctype: str, spec: _OpSpec) -> str:
    feature = _feature(ctype, spec)
    leaf = feature.rsplit(".", 1)[-1]
    if ctype == "int":
        compare = "if (v != expected) error++;"
    else:
        fn = "fabsf" if ctype == "float" else "fabs"
        compare = f"if ({fn}(v - expected) > 1.0E-9) error++;"
    code = f"""
int main() {{
  int i, error = 0;
  int n = {spec.n};
  {ctype} v, expected;
  {ctype} d[{spec.n}];
  for(i=0; i<n; i++) d[i] = {spec.c_data};
  expected = {spec.v0};
  for(i=0; i<n; i++) {{
    {spec.c_host}
  }}
  v = {spec.v0};
  #pragma acc parallel loop {check(f"reduction({spec.c_op}:v)")} copyin(d[0:n])
  for(i=0; i<n; i++)
    {spec.c_combine}
  {compare}
  return (error == 0);
}}
"""
    return template_text(
        name=f"loop_reduction_{leaf}.c",
        feature=feature,
        language="c",
        description=f"{ctype} {spec.c_op} reduction against a host-computed "
                    "oracle (IV-C4); without the clause the scalar stays "
                    "gang-firstprivate and keeps its initial value.",
        dependences=["parallel loop", "parallel.copyin"],
        code=code,
    )


def _f_template(ftype: str, spec: _OpSpec) -> str:
    feature = _feature(ftype, spec)
    leaf = feature.rsplit(".", 1)[-1]
    decl_type = {"integer": "integer", "real": "real",
                 "doubleprecision": "double precision"}[ftype]
    if ftype == "integer":
        compare = "if (v /= expected) err = err + 1"
    else:
        compare = "if (abs(v - expected) > 1.0e-9) err = err + 1"
    code = f"""
program test_red_{leaf}
  implicit none
  integer :: i, err, n
  {decl_type} :: v, expected
  {decl_type} :: d({spec.n})
  err = 0
  n = {spec.n}
  do i = 1, n
    d(i) = {spec.f_data}
  end do
  expected = {spec.v0}
  do i = 1, n
    {spec.f_host}
  end do
  v = {spec.v0}
  !$acc parallel loop {check(f"reduction({spec.f_op}:v)")} copyin(d(1:n))
  do i = 1, n
    {spec.f_combine}
  end do
  !$acc end parallel loop
  {compare}
  if (err == 0) main = 1
end program test_red_{leaf}
"""
    return template_text(
        name=f"loop_reduction_{leaf}.f",
        feature=feature,
        language="fortran",
        description=f"Fortran {spec.f_op} reduction on {decl_type} data "
                    "against a host oracle (IV-C4).",
        dependences=["parallel loop", "parallel.copyin"],
        code=code,
    )
