"""The OpenACC 1.0 validation test corpus.

"In the current OpenACC validation testsuite, we have designed more than 160
test cases covering the OpenACC C and OpenACC Fortran feature set included
in 1.0 version.  These test cases cover tests for directives, clauses,
runtime library routine, as well as environment variables."  (Section III)

This package authors that corpus: one template per (feature, language),
written in the HTML-style template syntax of :mod:`repro.templates` and
registered in :mod:`repro.suite.registry`.  Repetitive families (the data
clauses across parallel/kernels/data; the reduction type x operator matrix)
are emitted by parametric builders, exactly the economy the template
infrastructure was designed for.
"""

from repro.suite.registry import (
    SuiteRegistry,
    combination_suite,
    default_suite,
    openacc10_suite,
    openacc20_suite,
)

__all__ = [
    "SuiteRegistry",
    "combination_suite",
    "default_suite",
    "openacc10_suite",
    "openacc20_suite",
]
