"""Pass 1: directive/clause legality and region scoping.

This module owns the **clause x directive legality matrix** — the explicit
encoding of which clauses OpenACC 1.0 permits on which directives (spec
sections 2.4-2.11; the 2.0 additions of Section V-C are carried separately
and merged in for 2.0-versioned templates).  The compiler pipeline imports
the same matrix (:data:`ALLOWED_CLAUSES`), so the simulated compilers and
the lint pass can never disagree about legality.

Emitted diagnostics (all errors):

* ``ACC101`` — clause not permitted on the directive, or a directive /
  clause that does not exist at the checked spec version;
* ``ACC102`` — a single-valued clause (``num_gangs``, ``if``, ...) given
  more than once;
* ``ACC103`` — one variable named in two data clauses of one directive;
* ``ACC104`` — ``seq`` combined with ``independent``/``gang``/``worker``/
  ``vector``;
* ``ACC105`` — loop parallelism nested inside finer parallelism (``gang``
  under ``worker``/``vector``, ``worker`` under ``vector``);
* ``ACC106`` — a compute region nested inside a compute region (1.0 has
  no nested parallelism);
* ``ACC107`` — ``cache`` outside any loop body;
* ``ACC108`` — ``update`` inside a compute region;
* ``ACC109`` — a reduction variable also listed in ``private`` /
  ``firstprivate`` on the same directive.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from repro.ir.acc import DATA_CLAUSES, Directive
from repro.ir.astnodes import AccLoop, Program
from repro.spec.versions import ACC_10, ACC_20, SpecVersion
from repro.staticcheck.diagnostics import Diagnostic, sort_diagnostics
from repro.staticcheck.regions import Region, walk_regions

# ---------------------------------------------------------------------------
# the legality matrix (OpenACC 1.0 sections 2.4-2.11)
# ---------------------------------------------------------------------------

_DATA_10 = frozenset({
    "copy", "copyin", "copyout", "create", "present",
    "present_or_copy", "present_or_copyin", "present_or_copyout",
    "present_or_create", "deviceptr",
})
_LOOP_10 = frozenset({
    "collapse", "gang", "worker", "vector", "seq", "independent",
    "private", "reduction",
})

#: clause x directive legality, OpenACC 1.0 only
LEGAL_CLAUSES_10: Dict[str, FrozenSet[str]] = {
    "parallel": _DATA_10 | {"if", "async", "num_gangs", "num_workers",
                            "vector_length", "reduction", "private",
                            "firstprivate"},
    "kernels": _DATA_10 | {"if", "async"},
    "data": _DATA_10 | {"if"},
    "host_data": frozenset({"use_device"}),
    "loop": _LOOP_10,
    "cache": frozenset({"cache"}),
    "declare": _DATA_10 | {"device_resident"},
    "update": frozenset({"host", "device", "if", "async"}),
    "wait": frozenset({"wait"}),
}
LEGAL_CLAUSES_10["parallel loop"] = LEGAL_CLAUSES_10["parallel"] | _LOOP_10
LEGAL_CLAUSES_10["kernels loop"] = LEGAL_CLAUSES_10["kernels"] | _LOOP_10

#: directives / clauses introduced by OpenACC 2.0 (Section V-C)
V20_DIRECTIVES = frozenset({"enter data", "exit data", "routine"})
V20_CLAUSES = frozenset({"default", "auto", "delete"})

_LEGAL_CLAUSES_20_ONLY: Dict[str, FrozenSet[str]] = {
    "enter data": frozenset({"if", "async", "wait", "copyin", "create",
                             "present_or_copyin", "present_or_create"}),
    "exit data": frozenset({"if", "async", "wait", "copyout", "delete"}),
    "routine": frozenset({"gang", "worker", "vector", "seq"}),
}

#: the merged (1.0 + 2.0) table the compiler pipeline consumes
ALLOWED_CLAUSES: Dict[str, Set[str]] = {
    kind: set(clauses) for kind, clauses in LEGAL_CLAUSES_10.items()
}
for _kind, _clauses in _LEGAL_CLAUSES_20_ONLY.items():
    ALLOWED_CLAUSES[_kind] = set(_clauses)


def legal_clauses(version: SpecVersion) -> Dict[str, FrozenSet[str]]:
    """The legality matrix at ``version`` (1.0 rows, plus 2.0 additions)."""
    if version < ACC_20:
        return dict(LEGAL_CLAUSES_10)
    table = dict(LEGAL_CLAUSES_10)
    table.update(_LEGAL_CLAUSES_20_ONLY)
    # 2.0 clause additions on 1.0 directives
    table["parallel"] = table["parallel"] | {"default"}
    table["loop"] = table["loop"] | {"auto"}
    table["parallel loop"] = table["parallel loop"] | {"default", "auto"}
    table["kernels loop"] = table["kernels loop"] | {"auto"}
    return table


#: clauses that take exactly one value and may therefore appear only once
SINGLE_VALUED_CLAUSES = frozenset({
    "if", "async", "num_gangs", "num_workers", "vector_length",
    "collapse", "default",
})

#: ranks for the 1.0 gang > worker > vector nesting order
_PARALLELISM_RANK = {"gang": 3, "worker": 2, "vector": 1}


# ---------------------------------------------------------------------------
# per-directive checks
# ---------------------------------------------------------------------------


def check_directive(d: Directive, version: SpecVersion = ACC_10) -> List[Diagnostic]:
    """Directive-local legality: matrix, duplicates, conflicts (ACC101-104,
    ACC109).  Region-scoping checks need the program context — see
    :func:`check_program_legality`."""
    diags: List[Diagnostic] = []
    table = legal_clauses(version)
    allowed = table.get(d.kind)
    if allowed is None:
        hint = ""
        if d.kind in V20_DIRECTIVES:
            hint = f"`{d.kind}` requires OpenACC 2.0"
        diags.append(Diagnostic(
            "ACC101",
            f"directive '{d.kind}' does not exist in OpenACC {version}",
            loc=d.loc, hint=hint,
        ))
        return diags

    seen_single: Dict[str, int] = {}
    data_vars: Dict[str, str] = {}
    for clause in d.clauses:
        if clause.name not in allowed:
            hint = ""
            if clause.name in V20_CLAUSES and version < ACC_20:
                hint = f"clause '{clause.name}' requires OpenACC 2.0"
            diags.append(Diagnostic(
                "ACC101",
                f"clause '{clause.name}' not permitted on '{d.kind}'",
                loc=clause.loc, hint=hint,
            ))
            continue
        if clause.name in SINGLE_VALUED_CLAUSES:
            count = seen_single.get(clause.name, 0)
            if count:
                diags.append(Diagnostic(
                    "ACC102",
                    f"clause '{clause.name}' appears more than once on "
                    f"'{d.kind}'",
                    loc=clause.loc,
                    hint="keep exactly one occurrence",
                ))
            seen_single[clause.name] = count + 1
        if clause.name in DATA_CLAUSES:
            for var in clause.var_names:
                first = data_vars.get(var)
                if first is not None and first != clause.name:
                    diags.append(Diagnostic(
                        "ACC103",
                        f"variable '{var}' appears in both '{first}' and "
                        f"'{clause.name}' on '{d.kind}'",
                        loc=clause.loc,
                        hint="a variable may have only one data attribute "
                             "per directive",
                    ))
                data_vars.setdefault(var, clause.name)

    # seq conflicts with any assertion or mapping of parallelism
    if d.has_clause("seq"):
        for other in ("independent", "gang", "worker", "vector"):
            conflict = d.clause(other)
            if conflict is not None:
                diags.append(Diagnostic(
                    "ACC104",
                    f"'seq' conflicts with '{other}' on '{d.kind}'",
                    loc=conflict.loc,
                    hint="a sequential loop cannot also be work-shared",
                ))

    # reduction vars must not also be privatised on the same directive
    reduction_vars = {
        var for c in d.clauses_named("reduction") for var in c.var_names
    }
    if reduction_vars:
        for c in d.clauses_named("private", "firstprivate"):
            for var in c.var_names:
                if var in reduction_vars:
                    diags.append(Diagnostic(
                        "ACC109",
                        f"reduction variable '{var}' also listed in "
                        f"'{c.name}' on '{d.kind}'",
                        loc=c.loc,
                        hint="the reduction clause already privatises the "
                             "accumulator",
                    ))
    return diags


# ---------------------------------------------------------------------------
# whole-program pass
# ---------------------------------------------------------------------------


def check_program_legality(
    program: Program, version: SpecVersion = ACC_10
) -> List[Diagnostic]:
    """The full legality pass: every directive plus region scoping."""
    diags: List[Diagnostic] = []
    for fn in program.functions:
        for d in fn.declares:
            diags.extend(check_directive(d, version))
    for region in walk_regions(program):
        d = region.directive
        if d is not None:
            diags.extend(check_directive(d, version))
        if region.kind == "compute":
            if region.enclosing_compute() is not None:
                diags.append(Diagnostic(
                    "ACC106",
                    f"compute construct '{d.kind}' nested inside a compute "
                    "region",
                    loc=d.loc,
                    hint="OpenACC 1.0 does not define nested parallelism",
                ))
        elif region.kind == "standalone":
            if d.kind == "cache" and not region.enclosing_loops():
                diags.append(Diagnostic(
                    "ACC107",
                    "cache directive must appear inside a loop body",
                    loc=d.loc,
                ))
            elif d.kind == "update" and region.in_compute():
                diags.append(Diagnostic(
                    "ACC108",
                    "update directive inside a compute region",
                    loc=d.loc,
                    hint="move the update outside the parallel/kernels "
                         "construct",
                ))
        if isinstance(region.node, AccLoop):
            diags.extend(_check_nesting_order(region))
    return sort_diagnostics(diags)


def _loop_rank(d: Optional[Directive]) -> Optional[int]:
    """Finest parallelism level a loop directive maps onto, or None."""
    if d is None:
        return None
    ranks = [
        _PARALLELISM_RANK[c.name]
        for c in d.clauses
        if c.name in _PARALLELISM_RANK
    ]
    return min(ranks) if ranks else None


def _check_nesting_order(region: Region) -> List[Diagnostic]:
    """Gang loops contain worker loops contain vector loops — never the
    reverse (ACC105)."""
    d = region.directive
    own = [
        (c.name, _PARALLELISM_RANK[c.name], c.loc)
        for c in d.clauses
        if c.name in _PARALLELISM_RANK
    ]
    if not own:
        return []
    coarsest = max(rank for _, rank, _ in own)
    for enclosing in region.ancestors():
        if not isinstance(enclosing.node, AccLoop):
            continue
        enclosing_rank = _loop_rank(enclosing.directive)
        if enclosing_rank is None:
            continue
        if coarsest > enclosing_rank:
            name = next(n for n, rank, _ in own if rank == coarsest)
            enclosing_name = next(
                c.name for c in enclosing.directive.clauses
                if c.name in _PARALLELISM_RANK
                and _PARALLELISM_RANK[c.name] == enclosing_rank
            )
            loc = next(l for n, _, l in own if n == name)
            return [Diagnostic(
                "ACC105",
                f"'{name}' loop nested inside a '{enclosing_name}' loop",
                loc=loc,
                hint="order parallelism gang > worker > vector from "
                     "outermost to innermost",
            )]
    return []
