"""Static analysis over the testsuite IR: semantic checking + corpus lint.

Three passes, one diagnostic vocabulary (see DESIGN.md "Static checking"):

* :mod:`repro.staticcheck.legality` — the OpenACC 1.0 clause x directive
  legality matrix, duplicate/conflict rules, and region-scoping checks
  (``ACC1xx``);
* :mod:`repro.staticcheck.dependence` — conservative loop-carried
  dependence and shared-scalar race detection (``ACC2xx``);
* :mod:`repro.staticcheck.corpus` — template-level corpus lint: parse
  cleanliness, functional/cross pair coherence (``ACC3xx``).

Entry points: :func:`lint_source` / :func:`lint_template` for one unit,
:func:`lint_suite` for a registry (what ``repro lint`` and the CI gate
run).
"""

from repro.staticcheck.corpus import (
    CorpusLintReport,
    TemplateLint,
    lint_program,
    lint_source,
    lint_suite,
    lint_template,
    merge_reports,
    render_lint_json,
    render_lint_text,
)
from repro.staticcheck.dependence import check_program_dependence
from repro.staticcheck.diagnostics import (
    CODE_CATALOG,
    Diagnostic,
    Severity,
    errors_only,
    sort_diagnostics,
    summarize,
)
from repro.staticcheck.legality import (
    ALLOWED_CLAUSES,
    LEGAL_CLAUSES_10,
    SINGLE_VALUED_CLAUSES,
    V20_CLAUSES,
    V20_DIRECTIVES,
    check_directive,
    check_program_legality,
    legal_clauses,
)
from repro.staticcheck.regions import Region, build_region_tree, walk_regions

__all__ = [
    "CODE_CATALOG",
    "Diagnostic",
    "Severity",
    "errors_only",
    "sort_diagnostics",
    "summarize",
    "ALLOWED_CLAUSES",
    "LEGAL_CLAUSES_10",
    "SINGLE_VALUED_CLAUSES",
    "V20_CLAUSES",
    "V20_DIRECTIVES",
    "check_directive",
    "check_program_legality",
    "legal_clauses",
    "check_program_dependence",
    "Region",
    "build_region_tree",
    "walk_regions",
    "CorpusLintReport",
    "TemplateLint",
    "lint_program",
    "lint_source",
    "lint_suite",
    "lint_template",
    "merge_reports",
    "render_lint_json",
    "render_lint_text",
]
