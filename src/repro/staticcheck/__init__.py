"""Static analysis over the testsuite IR: semantic checking + corpus lint.

Five passes, one diagnostic vocabulary (see DESIGN.md "Static checking"):

* :mod:`repro.staticcheck.legality` — the OpenACC 1.0 clause x directive
  legality matrix, duplicate/conflict rules, and region-scoping checks
  (``ACC1xx``);
* :mod:`repro.staticcheck.dependence` — conservative loop-carried
  dependence and shared-scalar race detection (``ACC2xx``);
* :mod:`repro.staticcheck.corpus` — template-level corpus lint: parse
  cleanliness, functional/cross pair coherence (``ACC3xx``);
* :mod:`repro.staticcheck.dataenv` — whole-program data-environment flow
  on a host/device memory-state lattice (``ACC4xx``);
* :mod:`repro.staticcheck.asyncgraph` — async/wait happens-before
  analysis over queues (``ACC5xx``).

Reporting infrastructure: :mod:`repro.staticcheck.sarif` (SARIF 2.1.0
export), :mod:`repro.staticcheck.suppress` (inline ``acc-lint``
suppressions + the checked-in baseline), :mod:`repro.staticcheck.lintcache`
(incremental template-hash cache).

Entry points: :func:`lint_source` / :func:`lint_template` for one unit,
:func:`lint_suite` for a registry (what ``repro lint`` and the CI gate
run).
"""

from repro.staticcheck.asyncgraph import check_program_async
from repro.staticcheck.corpus import (
    SHIPPED_BASELINE,
    CorpusLintReport,
    TemplateLint,
    lint_program,
    lint_source,
    lint_suite,
    lint_template,
    lint_template_raw,
    merge_reports,
    render_lint_json,
    render_lint_text,
)
from repro.staticcheck.dataenv import (
    check_program_dataenv,
    declared_arrays,
    flow_events,
    scalar_constants,
)
from repro.staticcheck.dependence import check_program_dependence
from repro.staticcheck.diagnostics import (
    CODE_CATALOG,
    Diagnostic,
    Severity,
    errors_only,
    sort_diagnostics,
    summarize,
)
from repro.staticcheck.legality import (
    ALLOWED_CLAUSES,
    LEGAL_CLAUSES_10,
    SINGLE_VALUED_CLAUSES,
    V20_CLAUSES,
    V20_DIRECTIVES,
    check_directive,
    check_program_legality,
    legal_clauses,
)
from repro.staticcheck.lintcache import (
    ANALYSIS_VERSION,
    LintCache,
    catalog_version,
    template_key,
)
from repro.staticcheck.regions import Region, build_region_tree, walk_regions
from repro.staticcheck.sarif import (
    render_lint_sarif,
    sarif_report,
    validate_sarif,
)
from repro.staticcheck.suppress import (
    Baseline,
    apply_suppressions,
    baseline_from_findings,
    load_baseline,
    loads_baseline,
    parse_suppressions,
    shipped_baseline,
)

__all__ = [
    "CODE_CATALOG",
    "Diagnostic",
    "Severity",
    "errors_only",
    "sort_diagnostics",
    "summarize",
    "ALLOWED_CLAUSES",
    "LEGAL_CLAUSES_10",
    "SINGLE_VALUED_CLAUSES",
    "V20_CLAUSES",
    "V20_DIRECTIVES",
    "check_directive",
    "check_program_legality",
    "legal_clauses",
    "check_program_dependence",
    "check_program_dataenv",
    "check_program_async",
    "declared_arrays",
    "flow_events",
    "scalar_constants",
    "Region",
    "build_region_tree",
    "walk_regions",
    "CorpusLintReport",
    "TemplateLint",
    "SHIPPED_BASELINE",
    "lint_program",
    "lint_source",
    "lint_suite",
    "lint_template",
    "lint_template_raw",
    "merge_reports",
    "render_lint_json",
    "render_lint_text",
    "render_lint_sarif",
    "sarif_report",
    "validate_sarif",
    "Baseline",
    "apply_suppressions",
    "baseline_from_findings",
    "load_baseline",
    "loads_baseline",
    "parse_suppressions",
    "shipped_baseline",
    "ANALYSIS_VERSION",
    "LintCache",
    "catalog_version",
    "template_key",
]
