"""Region tree: the nesting structure of OpenACC constructs in a program.

The legality pass needs to know *where* a directive sits (a ``cache`` must
be inside a loop, an ``update`` must not be inside a compute region, 1.0
forbids nested compute regions); the dependence pass needs the enclosing
compute construct and loop-directive stack of every analysed loop.  Both
consume the same tree, built by one ordered statement walk per function.

Node kinds:

* ``compute`` — ``parallel`` / ``kernels`` constructs and the combined
  ``parallel loop`` / ``kernels loop`` forms;
* ``data`` / ``host_data`` — structured data regions;
* ``accloop`` — a ``loop`` directive with its associated ``For``;
* ``for`` — a plain (undirectived) loop, kept so ``cache`` placement and
  implicit loop-variable privatisation see every enclosing loop;
* ``standalone`` — ``cache`` / ``update`` / ``wait`` / ``enter data`` /
  ``exit data`` directive statements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.ir.acc import Directive
from repro.ir.astnodes import (
    AccConstruct,
    AccLoop,
    AccStandalone,
    Block,
    For,
    Function,
    If,
    Node,
    Program,
    Stmt,
    While,
)

#: directive kinds that open a compute region
COMPUTE_KINDS = ("parallel", "kernels", "parallel loop", "kernels loop")


@dataclass
class Region:
    """One node of the region tree."""

    kind: str  # 'function' | 'compute' | 'data' | 'host_data' | 'accloop' | 'for' | 'standalone'
    node: Node
    directive: Optional[Directive] = None
    parent: Optional["Region"] = None
    children: List["Region"] = field(default_factory=list)

    def add(self, child: "Region") -> "Region":
        child.parent = self
        self.children.append(child)
        return child

    # ------------------------------------------------------------- queries

    def ancestors(self) -> Iterator["Region"]:
        """Enclosing regions, innermost first (excluding self)."""
        current = self.parent
        while current is not None:
            yield current
            current = current.parent

    def enclosing_compute(self) -> Optional["Region"]:
        """The innermost enclosing compute region, if any.

        A combined construct (``parallel loop``) region *is* its own
        compute region, so its loop body asks the parent chain.
        """
        for region in self.ancestors():
            if region.kind == "compute":
                return region
        return None

    def in_compute(self) -> bool:
        if self.kind == "compute":
            return True
        return self.enclosing_compute() is not None

    def enclosing_loops(self) -> List["Region"]:
        """Enclosing loop regions, innermost first: ``accloop``/``for``
        plus combined-construct compute regions (``parallel loop``), whose
        node carries a ``For`` as well."""
        return [
            r for r in self.ancestors()
            if r.kind in ("accloop", "for") or isinstance(r.node, AccLoop)
        ]

    def walk(self) -> Iterator["Region"]:
        """Pre-order traversal of self and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()


def build_region_tree(program: Program) -> List[Region]:
    """One root region per function, children in statement order."""
    roots: List[Region] = []
    for fn in program.functions:
        root = Region(kind="function", node=fn)
        _collect(fn.body, root)
        roots.append(root)
    return roots


def walk_regions(program: Program) -> Iterator[Region]:
    for root in build_region_tree(program):
        yield from root.walk()


def _collect(stmt: Optional[Stmt], parent: Region) -> None:
    if stmt is None:
        return
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            _collect(child, parent)
    elif isinstance(stmt, AccConstruct):
        kind = "compute" if stmt.directive.kind in COMPUTE_KINDS else (
            "host_data" if stmt.directive.kind == "host_data" else "data"
        )
        region = parent.add(Region(kind=kind, node=stmt,
                                   directive=stmt.directive))
        _collect(stmt.body, region)
    elif isinstance(stmt, AccLoop):
        kind = "compute" if stmt.directive.kind in COMPUTE_KINDS else "accloop"
        region = parent.add(Region(kind=kind, node=stmt,
                                   directive=stmt.directive))
        # the associated For is part of the directive's region, not a
        # separate child — but its body may open further regions
        _collect(stmt.loop.body, region)
    elif isinstance(stmt, AccStandalone):
        parent.add(Region(kind="standalone", node=stmt,
                          directive=stmt.directive))
    elif isinstance(stmt, For):
        region = parent.add(Region(kind="for", node=stmt))
        _collect(stmt.body, region)
    elif isinstance(stmt, While):
        _collect(stmt.body, parent)
    elif isinstance(stmt, If):
        _collect(stmt.then, parent)
        _collect(stmt.other, parent)
    # remaining statement kinds carry no region structure
