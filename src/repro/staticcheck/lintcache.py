"""Incremental lint cache: template content hash -> diagnostics.

Linting a template is dominated by generating and parsing its functional
variant; for an unchanged corpus that work is pure waste.  The cache maps

    sha256(template identity + code + generation inputs)
        -> the template's serialized diagnostics

and is keyed at the *file* level by a catalog version — a digest of
:data:`~repro.staticcheck.diagnostics.CODE_CATALOG` plus
:data:`ANALYSIS_VERSION` — so adding a code or changing pass logic
invalidates every entry at once rather than silently replaying stale
findings.  Diagnostics round-trip losslessly (code, message, severity,
location, hint), which is what makes a warm ``repro lint`` run
byte-identical to the cold one; hit/miss counters feed the obs bus
(``lint.cache.hit`` / ``lint.cache.miss``) so the live telemetry page and
the CI cache smoke can see the ratio.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.ioutil import atomic_write_text
from repro.ir.astnodes import SourceLocation
from repro.staticcheck.diagnostics import CODE_CATALOG, Diagnostic, Severity
from repro.templates.model import TestTemplate

#: bump when pass logic changes in a way that alters findings without a
#: catalog change (kept in the cache key alongside the catalog digest)
ANALYSIS_VERSION = 1

CACHE_FORMAT = "repro.lint-cache/v1"


def catalog_version() -> str:
    """Digest of the diagnostic catalog + analysis revision."""
    blob = json.dumps(
        {"catalog": dict(sorted(CODE_CATALOG.items())),
         "analysis": ANALYSIS_VERSION},
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def template_key(template: TestTemplate) -> str:
    """Content hash of everything that feeds one template's lint result."""
    blob = json.dumps(
        {
            "name": template.name,
            "feature": template.feature,
            "language": template.language,
            "version": getattr(template, "version", ""),
            "code": template.code,
            "description": template.description,
            "defaults": dict(sorted((template.defaults or {}).items())),
            "dependences": list(template.dependences or []),
            "crossexpect": getattr(template, "crossexpect", ""),
            "environment": dict(sorted(
                (getattr(template, "environment", None) or {}).items()
            )),
        },
        sort_keys=True, default=str,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _diag_to_dict(d: Diagnostic) -> Dict:
    return {
        "code": d.code,
        "message": d.message,
        "severity": d.severity.value,
        "file": d.loc.filename,
        "line": d.loc.line,
        "column": d.loc.column,
        "hint": d.hint,
    }


def _diag_from_dict(data: Dict) -> Diagnostic:
    return Diagnostic(
        code=data["code"],
        message=data["message"],
        severity=Severity(data["severity"]),
        loc=SourceLocation(
            filename=data.get("file", "<unknown>"),
            line=int(data.get("line", 0)),
            column=int(data.get("column", 0)),
        ),
        hint=data.get("hint", ""),
    )


class LintCache:
    """One cache file's worth of template lint results."""

    def __init__(self, path, metrics=None):
        self.path = Path(path)
        self.version = catalog_version()
        self.entries: Dict[str, List[Dict]] = {}
        self.hits = 0
        self.misses = 0
        self.stale = False  # version mismatch discarded a previous file
        self._metrics = metrics
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if payload.get("format") != CACHE_FORMAT:
            self.stale = True
            return
        if payload.get("catalog_version") != self.version:
            self.stale = True
            return
        entries = payload.get("entries", {})
        if isinstance(entries, dict):
            self.entries = entries

    # ------------------------------------------------------------- lookups

    def lookup(self, template: TestTemplate) -> Optional[List[Diagnostic]]:
        cached = self.entries.get(template_key(template))
        if cached is None:
            self.misses += 1
            if self._metrics is not None:
                self._metrics.counter("lint.cache.miss").inc()
            return None
        self.hits += 1
        if self._metrics is not None:
            self._metrics.counter("lint.cache.hit").inc()
        try:
            return [_diag_from_dict(d) for d in cached]
        except (KeyError, ValueError):
            # undecodable entry (e.g. code dropped from the catalog)
            self.hits -= 1
            self.misses += 1
            return None

    def store(self, template: TestTemplate,
              diags: List[Diagnostic]) -> None:
        self.entries[template_key(template)] = [
            _diag_to_dict(d) for d in diags
        ]

    # ------------------------------------------------------------ persists

    def save(self) -> None:
        payload = {
            "format": CACHE_FORMAT,
            "catalog_version": self.version,
            "entries": self.entries,
        }
        atomic_write_text(
            self.path, json.dumps(payload, sort_keys=True) + "\n"
        )

    @property
    def checked(self) -> int:
        return self.hits + self.misses

    def stats(self) -> str:
        total = self.checked
        ratio = (100.0 * self.hits / total) if total else 0.0
        return (f"lint cache: {self.hits} hit(s), {self.misses} miss(es) "
                f"({ratio:.0f}% warm)")
