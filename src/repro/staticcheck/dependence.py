"""Pass 2: conservative loop-carried-dependence and race analysis.

The paper's cross methodology only works if the *functional* variants are
actually race-free parallel programs: an ``independent`` asserted on a loop
with a carried dependence, or an unsynchronised accumulation, would make
pass rates depend on scheduling luck rather than implementation
correctness.  This pass flags the detectable cases, conservatively — it
only reports when the evidence is syntactically unambiguous:

* ``ACC201`` — ``independent`` on a loop where some array is written at
  ``i + c1`` and read (or written) at ``i + c2`` with ``c1 != c2``: a
  definite loop-carried dependence contradicting the assertion;
* ``ACC202`` — a ``s = s <op> ...`` accumulation into a shared scalar in a
  work-shared loop without a matching ``reduction`` clause;
* ``ACC203`` — any other write to a shared scalar in a work-shared loop
  (a data race: the final value depends on iteration interleaving).

"Work-shared" means the loop directive explicitly maps or asserts
parallelism (``gang``/``worker``/``vector``/``independent``) and does not
say ``seq``; loops the implementation is merely *allowed* to parallelise
(bare ``loop`` inside ``kernels``) are not flagged.  A scalar is "shared"
unless it is privatised by a ``private``/``firstprivate``/``reduction``
clause on the loop or an enclosing construct, declared inside the region,
or is the control variable of an enclosing loop (predetermined private).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.ir.acc import Directive
from repro.ir.astnodes import (
    AccConstruct,
    AccLoop,
    Assign,
    Binary,
    DeclStmt,
    Expr,
    For,
    Ident,
    Index,
    IntLit,
    Node,
    Program,
    walk,
)
from repro.staticcheck.diagnostics import Diagnostic, sort_diagnostics
from repro.staticcheck.regions import Region, walk_regions

#: clauses that make a loop directive work-shared when present
_WORKSHARE_CLAUSES = ("gang", "worker", "vector", "independent")


def is_workshared(d: Directive) -> bool:
    """The directive explicitly maps or asserts parallelism."""
    if d.has_clause("seq"):
        return False
    return any(d.has_clause(name) for name in _WORKSHARE_CLAUSES)


def check_program_dependence(program: Program) -> List[Diagnostic]:
    """The full dependence pass over every work-shared loop."""
    diags: List[Diagnostic] = []
    for region in walk_regions(program):
        node = region.node
        if not isinstance(node, AccLoop):
            continue
        if not is_workshared(node.directive):
            continue
        diags.extend(_check_loop(region, node))
    return sort_diagnostics(diags)


# ---------------------------------------------------------------------------
# per-loop analysis
# ---------------------------------------------------------------------------


def _check_loop(region: Region, node: AccLoop) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    loop = node.loop
    private = _privatised_vars(region)
    local = _declared_inside(loop.body)
    reduction_vars = {
        var
        for c in node.directive.clauses_named("reduction")
        for var in c.var_names
    }
    control_vars = _control_vars(region, loop)

    if node.directive.has_clause("independent"):
        dep = _carried_array_dependence(loop)
        if dep is not None:
            array, w_off, r_off, loc = dep
            diags.append(Diagnostic(
                "ACC201",
                f"'independent' asserted but '{array}' is written at "
                f"{_offset_str(loop.var, w_off)} and referenced at "
                f"{_offset_str(loop.var, r_off)}: a loop-carried dependence",
                loc=loc,
                hint="drop the independent clause or restructure the loop",
            ))

    shared_ok = private | local | reduction_vars | control_vars
    writes: Dict[str, List[Assign]] = {}
    for stmt in _own_statements(loop.body):
        if (
            isinstance(stmt, Assign)
            and isinstance(stmt.target, Ident)
            and stmt.target.name not in shared_ok
        ):
            writes.setdefault(stmt.target.name, []).append(stmt)
    # one diagnostic per scalar, anchored at its first write in source
    # order; an accumulation anywhere makes the scalar a missed reduction
    for name, stmts in writes.items():
        stmts.sort(key=lambda s: (s.loc.line, s.loc.column))
        if any(_is_accumulation(s, name) for s in stmts):
            diags.append(Diagnostic(
                "ACC202",
                f"accumulation into shared scalar '{name}' without a "
                "reduction clause",
                loc=stmts[0].loc,
                hint=f"add reduction(<op>:{name}) to the loop directive",
            ))
        else:
            diags.append(Diagnostic(
                "ACC203",
                f"shared scalar '{name}' written in a work-shared loop",
                loc=stmts[0].loc,
                hint=f"privatise '{name}' or make the loop seq",
            ))
    return diags


def _privatised_vars(region: Region) -> Set[str]:
    """Vars privatised by this loop's directive or any enclosing directive."""
    out: Set[str] = set()
    chain = [region] + list(region.ancestors())
    for r in chain:
        d = r.directive
        if d is None:
            continue
        for c in d.clauses_named("private", "firstprivate", "reduction"):
            out.update(c.var_names)
    return out


def _declared_inside(body: Node) -> Set[str]:
    """Vars declared inside the loop body (per-iteration locals)."""
    out: Set[str] = set()
    for stmt in walk(body):
        if isinstance(stmt, DeclStmt):
            out.update(decl.name for decl in stmt.decls)
    return out


def _control_vars(region: Region, loop: For) -> Set[str]:
    """Loop variables of this loop and every nested/enclosing loop —
    predetermined private in OpenACC."""
    out = {loop.var}
    for enclosing in region.enclosing_loops():
        node = enclosing.node
        out.add(node.loop.var if isinstance(node, AccLoop) else node.var)
    for stmt in walk(loop.body):
        if isinstance(stmt, For):
            out.add(stmt.var)
        elif isinstance(stmt, AccLoop):
            out.add(stmt.loop.var)
    return out


def _own_statements(body: Node) -> Iterator[Node]:
    """Walk ``body`` without descending into nested directive regions —
    a nested ``AccLoop``'s body is analysed separately, with its own
    clause context (reductions, privates) in scope."""
    from dataclasses import fields

    stack = [body]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (AccLoop, AccConstruct)):
            continue
        for f in fields(node):
            value = getattr(node, f.name)
            if isinstance(value, Node):
                stack.append(value)
            elif isinstance(value, (list, tuple)):
                stack.extend(v for v in value if isinstance(v, Node))


def _is_accumulation(stmt: Assign, name: str) -> bool:
    """``s = s <op> ...`` / ``s = ... <op> s`` / ``s op= ...``."""
    if stmt.op:  # compound assignment always reads the target
        return True
    return any(
        isinstance(n, Ident) and n.name == name for n in walk(stmt.value)
    )


# ---------------------------------------------------------------------------
# carried dependence detection
# ---------------------------------------------------------------------------


def _carried_array_dependence(
    loop: For,
) -> Optional[Tuple[str, int, int, object]]:
    """A definite carried dependence: the same array written at ``i + c1``
    and referenced at ``i + c2`` with ``c1 != c2`` (both offsets constant).

    Returns ``(array, write_offset, other_offset, loc)`` or None.
    """
    var = loop.var
    writes: List[Tuple[str, int, object]] = []
    refs: Dict[str, Set[int]] = {}
    for node in walk(loop.body):
        if isinstance(node, Assign) and isinstance(node.target, Index):
            entry = _indexed_access(node.target, var)
            if entry is not None:
                writes.append((entry[0], entry[1], node.loc))
        if isinstance(node, Index):
            entry = _indexed_access(node, var)
            if entry is not None:
                refs.setdefault(entry[0], set()).add(entry[1])
    for array, w_off, loc in writes:
        for r_off in refs.get(array, ()):  # includes the writes themselves
            if r_off != w_off:
                return (array, w_off, r_off, loc)
    return None


def _indexed_access(node: Index, var: str) -> Optional[Tuple[str, int]]:
    """``a[i + c]`` (any single index position of form ``i +- c``) ->
    ``(array_name, c)``; None when the shape is not recognised."""
    if not isinstance(node.base, Ident):
        return None
    for index in node.indices:
        offset = _affine_offset(index, var)
        if offset is not None:
            return (node.base.name, offset)
    return None


def _affine_offset(expr: Expr, var: str) -> Optional[int]:
    """``i`` -> 0, ``i + c``/``c + i`` -> c, ``i - c`` -> -c, else None."""
    if isinstance(expr, Ident):
        return 0 if expr.name == var else None
    if isinstance(expr, Binary) and expr.op in ("+", "-"):
        left, right = expr.left, expr.right
        if (isinstance(left, Ident) and left.name == var
                and isinstance(right, IntLit)):
            return right.value if expr.op == "+" else -right.value
        if (expr.op == "+" and isinstance(right, Ident) and right.name == var
                and isinstance(left, IntLit)):
            return left.value
    return None


def _offset_str(var: str, offset: int) -> str:
    if offset == 0:
        return f"[{var}]"
    sign = "+" if offset > 0 else "-"
    return f"[{var} {sign} {abs(offset)}]"
