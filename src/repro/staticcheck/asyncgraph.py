"""Pass 5: async/wait happens-before analysis (ACC5xx).

OpenACC ``async(q)`` puts compute constructs and ``update`` transfers on
device queues that run concurrently with the host thread and with each
other; only ``wait`` (directive, clause, or ``acc_async_wait*`` runtime
call) and data-region exit impose ordering.  This pass replays each
function's :mod:`~repro.staticcheck.dataenv` flow-event stream, keeping
the set of *pending* async operations per queue — the frontier of the
happens-before DAG — and diagnoses:

``ACC501``
    two operations on provably different queues touch the same array and
    at least one writes (write-write or read-write, no ordering edge);
``ACC502``
    a ``wait`` that names a queue no ``async`` clause in the function
    ever uses (the wait is dead — usually a wrong tag);
``ACC503``
    the host thread reads or writes an array with pending async work on
    it, or observes completion state (``acc_async_test``) of a busy
    queue, before any wait edge — behaviour then depends on scheduling.

Queue ids are resolved with a one-shot constant propagation
(:func:`~repro.staticcheck.dataenv.scalar_constants`), so the idiomatic
``int tag = 2; ... async(tag) ... wait(tag)`` chains resolve to concrete
queues.  Two queue ids only count as *different* when both are known
(concrete integers or the bare-``async`` default queue); symbolic or
unresolved tags never produce ACC501 — the pass prefers silence to a
speculative race report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.ir.acc import Directive
from repro.ir.astnodes import (
    Expr,
    Function,
    Ident,
    IntLit,
    Program,
    SourceLocation,
    Unary,
)
from repro.staticcheck.dataenv import (
    FlowOp,
    declared_arrays,
    flow_events,
    scalar_constants,
)
from repro.staticcheck.diagnostics import Diagnostic, Severity, sort_diagnostics

#: the bare-``async`` queue (its own queue, distinct from every numbered one)
DEFAULT_QUEUE = "default"

#: queue key: concrete int, the default queue, a symbolic tag, or unknown
QueueKey = Union[int, str, Tuple[str, str]]
UNKNOWN = "unknown"

_WAIT_CALLS = frozenset({"acc_async_wait", "acc_wait"})
_WAIT_ALL_CALLS = frozenset({"acc_async_wait_all", "acc_wait_all"})
_TEST_CALLS = frozenset({"acc_async_test"})
_TEST_ALL_CALLS = frozenset({"acc_async_test_all"})


@dataclass
class PendingOp:
    """One enqueued-but-not-awaited async operation."""

    label: str  # 'compute' | 'update'
    queue: QueueKey
    loc: SourceLocation
    reads: FrozenSet[str]
    writes: FrozenSet[str]

    def touches(self) -> FrozenSet[str]:
        return self.reads | self.writes


def _queue_name(key: QueueKey) -> str:
    if key == DEFAULT_QUEUE:
        return "the default async queue"
    if isinstance(key, tuple):
        return f"queue '{key[1]}'"
    return f"queue {key}"


def _resolve(expr: Optional[Expr],
             consts: Dict[str, int]) -> QueueKey:
    """Resolve an async/wait tag expression to a queue key."""
    if expr is None:
        return DEFAULT_QUEUE
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, Unary) and expr.op in ("-", "+") and \
            isinstance(expr.operand, IntLit):
        value = expr.operand.value
        return -value if expr.op == "-" else value
    if isinstance(expr, Ident):
        if expr.name in consts:
            return consts[expr.name]
        return ("sym", expr.name)
    return UNKNOWN


def _definitely_different(a: QueueKey, b: QueueKey) -> bool:
    """True only when the two keys provably name different queues."""
    if a == UNKNOWN or b == UNKNOWN:
        return False
    if a == b:
        return False
    known_a = isinstance(a, int) or a == DEFAULT_QUEUE
    known_b = isinstance(b, int) or b == DEFAULT_QUEUE
    return known_a and known_b


class _FunctionAsync:
    def __init__(self, fn: Function):
        self.fn = fn
        self.arrays = declared_arrays(fn)
        self.consts = scalar_constants(fn)
        self.events = flow_events(fn, self.arrays)
        self.pending: Dict[QueueKey, List[PendingOp]] = {}
        self.escaped: Set[str] = set()
        self.diags: List[Diagnostic] = []
        self.reported: Set[tuple] = set()
        #: every queue an async clause targets anywhere in the function
        self.ever_async: Set[QueueKey] = set()
        for op in self.events:
            if op.directive is not None and op.directive.has_clause("async"):
                cl = op.directive.clause("async")
                self.ever_async.add(_resolve(cl.expr, self.consts))

    # ------------------------------------------------------------- helpers

    def _report(self, code: str, message: str, loc: SourceLocation,
                dedup: tuple, hint: str = "") -> None:
        key = (code,) + dedup
        if key in self.reported:
            return
        self.reported.add(key)
        self.diags.append(Diagnostic(
            code, message, severity=(
                Severity.ERROR if code == "ACC501" else Severity.WARNING
            ),
            loc=loc, hint=hint,
        ))

    def _live(self, names: FrozenSet[str]) -> FrozenSet[str]:
        return frozenset(n for n in names if n not in self.escaped)

    def _drain(self, queue: Optional[QueueKey]) -> None:
        if queue is None:
            self.pending.clear()
        else:
            self.pending.pop(queue, None)
            if isinstance(queue, int):
                # a concrete wait also covers a symbolic tag that constant
                # propagation resolved to the same value elsewhere
                for key in [k for k in self.pending
                            if isinstance(k, tuple)
                            and self.consts.get(k[1]) == queue]:
                    self.pending.pop(key, None)

    def _all_pending(self) -> List[PendingOp]:
        return [op for ops in self.pending.values() for op in ops]

    # ------------------------------------------------------- device ops

    def _device_op(self, label: str, flow: FlowOp,
                   reads: FrozenSet[str], writes: FrozenSet[str]) -> None:
        directive = flow.directive
        assert directive is not None
        for cl in directive.clauses_named("wait"):
            # wait *clause*: join edge before this op launches
            self._wait_tag(cl.expr, flow.loc, from_clause=True)
        async_clause = directive.clause("async")
        queue = (
            _resolve(async_clause.expr, self.consts)
            if async_clause is not None else None
        )
        reads, writes = self._live(reads), self._live(writes)
        op = PendingOp(label=label, queue=queue if queue is not None
                       else "sync", loc=flow.loc,
                       reads=reads, writes=writes)
        for other in self._all_pending():
            if queue is not None and \
                    not _definitely_different(queue, other.queue):
                continue
            # a synchronous device op overlaps every pending queue
            conflicts = sorted(
                (writes & other.touches()) | (other.writes & reads)
            )
            for name in conflicts:
                self._report(
                    "ACC501",
                    f"array '{name}' is accessed from "
                    f"{_queue_name(other.queue)} and "
                    + (f"{_queue_name(queue)}" if queue is not None
                       else f"a synchronous {label}")
                    + " with no ordering wait (at least one access "
                      "writes)",
                    flow.loc,
                    dedup=(name, frozenset((queue, other.queue))),
                    hint=f"add wait({_queue_name(other.queue).split()[-1]})"
                         " or put both operations on one queue",
                )
        if queue is not None:
            self.pending.setdefault(queue, []).append(op)

    # ---------------------------------------------------------- wait edges

    def _wait_tag(self, expr: Optional[Expr], loc: SourceLocation,
                  from_clause: bool = False) -> None:
        if expr is None:
            # bare wait: join every queue
            if not self.ever_async and not from_clause:
                self._report(
                    "ACC502",
                    "wait but the function never enqueues async work",
                    loc, dedup=("bare",),
                    hint="drop the wait or add the intended async clause",
                )
            self._drain(None)
            return
        queue = _resolve(expr, self.consts)
        if queue == UNKNOWN:
            self._drain(None)  # can't tell which queue: assume it joins all
            return
        unresolved_async = any(
            isinstance(q, tuple) or q == UNKNOWN for q in self.ever_async
        )
        if queue not in self.ever_async and not unresolved_async:
            self._report(
                "ACC502",
                f"wait targets {_queue_name(queue)} but no async clause "
                "ever uses it",
                loc, dedup=(queue,),
                hint="the tag is probably wrong; async work on other "
                     "queues stays unsynchronized",
            )
        self._drain(queue)

    def _wait_directive(self, flow: FlowOp) -> None:
        directive = flow.directive
        assert directive is not None
        tags = directive.clauses_named("wait")
        if not tags:
            self._wait_tag(None, flow.loc)
            return
        for cl in tags:
            self._wait_tag(cl.expr, flow.loc)

    # ------------------------------------------------------------ host ops

    def _host(self, flow: FlowOp) -> None:
        self.escaped.update(flow.escapes)
        for name, args in flow.calls:
            lowered = name.lower()
            if lowered in _WAIT_ALL_CALLS:
                self._drain(None)
            elif lowered in _WAIT_CALLS:
                self._wait_tag(args[0] if args else None, flow.loc)
            elif lowered in _TEST_ALL_CALLS:
                if self._all_pending():
                    self._report(
                        "ACC503",
                        "host observes completion state of pending async "
                        "work (acc_async_test_all before any wait)",
                        flow.loc, dedup=("test", "all"),
                        hint="the result depends on scheduling; wait "
                             "first if a fixed answer is expected",
                    )
            elif lowered in _TEST_CALLS:
                queue = _resolve(args[0] if args else None, self.consts)
                busy = [
                    q for q in self.pending
                    if q == queue or not _definitely_different(q, queue)
                ]
                if busy:
                    self._report(
                        "ACC503",
                        f"host observes completion state of "
                        f"{_queue_name(queue)} while its async work is "
                        "pending (acc_async_test before wait)",
                        flow.loc, dedup=("test", queue),
                        hint="the result depends on scheduling; wait "
                             "first if a fixed answer is expected",
                    )
        reads = self._live(flow.reads)
        writes = self._live(flow.writes)
        if not reads and not writes:
            return
        for other in self._all_pending():
            conflicts = sorted(
                (reads & other.writes)
                | (writes & other.touches())
            )
            for name in conflicts:
                access = "writes" if name in writes else "reads"
                self._report(
                    "ACC503",
                    f"host {access} array '{name}' while a pending "
                    f"{other.label} on {_queue_name(other.queue)} also "
                    "touches it",
                    flow.loc, dedup=(name, other.queue),
                    hint="insert wait (or acc_async_wait) before the "
                         "host access",
                )

    # ---------------------------------------------------------------- run

    def run(self) -> List[Diagnostic]:
        for flow in self.events:
            if flow.kind == "host":
                self._host(flow)
            elif flow.kind == "compute":
                self._device_op("compute", flow, flow.reads, flow.writes)
                self.escaped.update(flow.escapes)
            elif flow.kind == "update":
                assert flow.directive is not None
                named: Set[str] = set()
                for cl in flow.directive.clauses_named("host", "device"):
                    named.update(n for n in cl.var_names
                                 if n in self.arrays)
                # a transfer reads one copy and writes the other: both
                # sides count for conflict purposes
                touched = frozenset(named)
                self._device_op("update", flow, touched, touched)
            elif flow.kind == "wait":
                self._wait_directive(flow)
            elif flow.kind == "data_exit":
                # region exit must complete outstanding work on its data:
                # an implicit join edge for everything pending
                self._drain(None)
            elif flow.kind == "escape":
                self.escaped.update(flow.escapes)
        return self.diags


def check_program_async(program: Program) -> List[Diagnostic]:
    """Run the async happens-before pass over every function."""
    diags: List[Diagnostic] = []
    for fn in program.functions:
        diags.extend(_FunctionAsync(fn).run())
    return sort_diagnostics(diags)
