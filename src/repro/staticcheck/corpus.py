"""Pass 3: corpus lint — template-level checks over a suite registry.

For every template: the generated *functional* variant must parse and be
clean under the legality (ACC1xx) and dependence (ACC2xx) passes; the
functional/cross pair may differ only at the tested feature (``ACC302``);
and the declared ``crossexpect`` must be coherent with the substitution
(``ACC303``).  The CLI's ``repro lint`` and the CI corpus gate are thin
wrappers over :func:`lint_suite`.
"""

from __future__ import annotations

import difflib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.frontend.errors import FrontendError
from repro.ir.astnodes import SourceLocation
from repro.spec.versions import ACC_10, SpecVersion
from repro.staticcheck.asyncgraph import check_program_async
from repro.staticcheck.dataenv import check_program_dataenv
from repro.staticcheck.dependence import check_program_dependence
from repro.staticcheck.diagnostics import (
    Diagnostic,
    errors_only,
    sort_diagnostics,
)
from repro.staticcheck.legality import check_program_legality
from repro.staticcheck.suppress import (
    Baseline,
    apply_suppressions,
    shipped_baseline,
)
from repro.templates import (
    TemplateError,
    TestTemplate,
    generate_cross,
    generate_functional,
)

#: sentinel: "apply the checked-in corpus baseline"
SHIPPED_BASELINE = "shipped"


def _resolve_baseline(baseline) -> Optional[Baseline]:
    if baseline is SHIPPED_BASELINE or baseline == SHIPPED_BASELINE:
        return shipped_baseline()
    return baseline

#: line prefixes that mark a directive line in generated source
_DIRECTIVE_PREFIXES = ("#pragma acc", "!$acc")


def _template_version(template: TestTemplate) -> SpecVersion:
    try:
        return SpecVersion.parse(template.version)
    except (ValueError, AttributeError):
        return ACC_10


def _parse_source(source: str, language: str, name: str):
    if language == "fortran":
        from repro.minifort import parse_program
    else:
        from repro.minic import parse_program
    return parse_program(source, filename=name, name=name)


def lint_program(program, version: SpecVersion = ACC_10) -> List[Diagnostic]:
    """Legality, dependence, data-environment and async passes over one
    parsed program."""
    diags = check_program_legality(program, version)
    diags.extend(check_program_dependence(program))
    diags.extend(check_program_dataenv(program))
    diags.extend(check_program_async(program))
    return sort_diagnostics(diags)


def lint_source(
    source: str, language: str = "c", name: str = "<lint>",
    version: SpecVersion = ACC_10,
) -> List[Diagnostic]:
    """Parse and lint one standalone program text.

    Inline ``acc-lint: disable`` comments in the source are honoured.
    """
    try:
        program = _parse_source(source, language, name)
    except FrontendError as err:
        return [Diagnostic(
            "ACC301",
            f"program does not parse: {err.message}",
            loc=err.loc,
        )]
    diags, _ = apply_suppressions(lint_program(program, version), source)
    return diags


def lint_template_raw(template: TestTemplate) -> List[Diagnostic]:
    """All passes for one template, minus the baseline allowance.

    Inline suppressions in the generated functional source are applied
    (they are part of the template's own text); the checked-in baseline
    is not — callers wanting the net view use :func:`lint_template`.
    """
    version = _template_version(template)
    diags: List[Diagnostic] = []
    try:
        functional = generate_functional(template)
    except TemplateError as err:
        return [Diagnostic("ACC301", f"functional variant fails to "
                                     f"generate: {err}")]
    try:
        program = _parse_source(
            functional.source, template.language, template.name
        )
    except FrontendError as err:
        diags.append(Diagnostic(
            "ACC301",
            f"functional variant does not parse: {err.message}",
            loc=err.loc,
        ))
    else:
        diags.extend(check_program_legality(program, version))
        diags.extend(check_program_dependence(program))
        diags.extend(check_program_dataenv(program))
        diags.extend(check_program_async(program))

    if template.has_cross:
        try:
            cross = generate_cross(template)
        except TemplateError as err:
            diags.append(Diagnostic(
                "ACC301", f"cross variant fails to generate: {err}"
            ))
        else:
            diags.extend(_check_pair(template, functional.source,
                                     cross.source))
    diags, _ = apply_suppressions(diags, functional.source)
    return sort_diagnostics(diags)


def lint_template(
    template: TestTemplate, baseline=SHIPPED_BASELINE
) -> List[Diagnostic]:
    """All passes for one template (the harness lint gate's view).

    Findings covered by the baseline allowance (the shipped corpus
    baseline by default; pass ``baseline=None`` for the raw view) are
    dropped.
    """
    raw = lint_template_raw(template)
    resolved = _resolve_baseline(baseline)
    if resolved is None:
        return raw
    kept, _ = resolved.apply(template.name, raw)
    return kept


# ---------------------------------------------------------------------------
# functional/cross pair coherence
# ---------------------------------------------------------------------------


def _feature_tokens(template: TestTemplate) -> List[str]:
    """Identifier fragments that tie a changed line to the tested feature:
    the feature's dotted components and its root directive words."""
    tokens: List[str] = []
    for part in template.feature.split("."):
        tokens.extend(part.split())
    # clause spelling aliases: present_or_copy is written pcopy in source
    aliased = {
        "present_or_copy": "pcopy", "present_or_copyin": "pcopyin",
        "present_or_copyout": "pcopyout", "present_or_create": "pcreate",
    }
    tokens.extend(aliased[t] for t in list(tokens) if t in aliased)
    return [t for t in tokens if t]


def _is_directive_line(line: str) -> bool:
    stripped = line.strip().lower()
    return any(stripped.startswith(p) for p in _DIRECTIVE_PREFIXES)


def _changed_lines(functional: str, cross: str) -> List[str]:
    """Lines present in exactly one of the two generated programs."""
    matcher = difflib.SequenceMatcher(
        a=functional.splitlines(), b=cross.splitlines(), autojunk=False
    )
    changed: List[str] = []
    for tag, a0, a1, b0, b1 in matcher.get_opcodes():
        if tag == "equal":
            continue
        changed.extend(matcher.a[a0:a1])
        changed.extend(matcher.b[b0:b1])
    return changed


def _directive_block_lines(template: TestTemplate) -> frozenset:
    """Stripped lines of marker blocks that contain a directive line.

    When a substitution block is centred on the tested directive, the whole
    block is the feature's region — a cross may e.g. replace an
    ``independent`` loop with a genuinely dependent one, rewriting the loop
    body alongside the asserting directive.  Blocks with *no* directive
    (runtime-routine substitutions) get no such licence: their changed
    lines must name the feature explicitly.
    """
    from repro.templates.markers import CHECK_RE, CROSS_RE

    allowed: set = set()
    for regex in (CHECK_RE, CROSS_RE):
        for match in regex.finditer(template.code):
            lines = [l.strip() for l in match.group(1).splitlines()]
            if any(_is_directive_line(l) for l in lines):
                allowed.update(l for l in lines if l)
    return frozenset(allowed)


def _check_pair(
    template: TestTemplate, functional: str, cross: str
) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    if functional == cross:
        if template.crossexpect == "different":
            diags.append(Diagnostic(
                "ACC303",
                "crossexpect is 'different' but the cross variant is "
                "textually identical to the functional variant",
                hint="the substitution has no effect; fix the markers or "
                     "declare crossexpect 'same'",
            ))
        return diags
    tokens = _feature_tokens(template)
    block_lines = _directive_block_lines(template)
    for line in _changed_lines(functional, cross):
        text = line.strip()
        if not text:
            continue
        if _is_directive_line(text):
            continue
        if text in block_lines:
            # part of a directive-bearing substitution block
            continue
        lowered = text.lower()
        if any(token.lower() in lowered for token in tokens):
            # non-directive change naming the tested feature (runtime
            # routine calls, environment probes)
            continue
        diags.append(Diagnostic(
            "ACC302",
            "functional/cross pair diverges outside the tested feature's "
            f"directive: {text[:60]!r}",
            hint="cross substitution may only change the tested "
                 "directive/clause or calls to the tested routine",
        ))
    return diags


# ---------------------------------------------------------------------------
# suite-level lint
# ---------------------------------------------------------------------------


@dataclass
class TemplateLint:
    """Lint outcome for one template."""

    name: str
    feature: str
    language: str
    suite: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: known findings dropped by the baseline allowance
    baselined: int = 0

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    @property
    def error_count(self) -> int:
        return len(errors_only(self.diagnostics))


@dataclass
class CorpusLintReport:
    """Aggregated lint over one or more suites."""

    suites: List[str] = field(default_factory=list)
    entries: List[TemplateLint] = field(default_factory=list)

    @property
    def checked(self) -> int:
        return len(self.entries)

    @property
    def diagnostics(self) -> List[Diagnostic]:
        return [d for e in self.entries for d in e.diagnostics]

    @property
    def error_count(self) -> int:
        return sum(e.error_count for e in self.entries)

    @property
    def clean(self) -> bool:
        return self.error_count == 0

    @property
    def baselined(self) -> int:
        return sum(e.baselined for e in self.entries)

    def codes(self) -> Dict[str, int]:
        """Histogram of diagnostic codes, sorted by code."""
        out: Dict[str, int] = {}
        for d in self.diagnostics:
            out[d.code] = out.get(d.code, 0) + 1
        return dict(sorted(out.items()))


def lint_suite(
    suite,
    templates: Optional[Sequence[TestTemplate]] = None,
    cache=None,
    baseline=SHIPPED_BASELINE,
) -> CorpusLintReport:
    """Lint every (selected) template of one registry.

    ``cache`` is an optional :class:`~repro.staticcheck.lintcache.LintCache`;
    cached entries hold the raw (pre-baseline) findings, so warm runs are
    byte-identical to cold ones.  ``baseline`` is a
    :class:`~repro.staticcheck.suppress.Baseline`, ``None`` for the raw
    view, or :data:`SHIPPED_BASELINE` (the default) for the checked-in
    corpus allowance.
    """
    report = CorpusLintReport(suites=[suite.label])
    pool = list(templates) if templates is not None else list(suite)
    resolved = _resolve_baseline(baseline)
    for template in pool:
        raw: Optional[List[Diagnostic]] = None
        if cache is not None:
            raw = cache.lookup(template)
        if raw is None:
            raw = lint_template_raw(template)
            if cache is not None:
                cache.store(template, raw)
        if resolved is not None:
            diags, baselined = resolved.apply(template.name, raw)
        else:
            diags, baselined = list(raw), 0
        report.entries.append(TemplateLint(
            name=template.name,
            feature=template.feature,
            language=template.language,
            suite=suite.label,
            diagnostics=diags,
            baselined=baselined,
        ))
    return report


def merge_reports(reports: Sequence[CorpusLintReport]) -> CorpusLintReport:
    merged = CorpusLintReport()
    for report in reports:
        merged.suites.extend(report.suites)
        merged.entries.extend(report.entries)
    return merged


# ---------------------------------------------------------------------------
# rendering (the CLI's text / JSON formats)
# ---------------------------------------------------------------------------


def render_lint_text(report: CorpusLintReport) -> str:
    lines: List[str] = []
    lines.append(
        f"lint: {report.checked} template(s) checked across "
        f"{', '.join(report.suites)}"
    )
    for entry in report.entries:
        if entry.clean:
            continue
        lines.append(f"{entry.name} ({entry.feature}, {entry.language}):")
        for d in sort_diagnostics(entry.diagnostics):
            lines.append(f"  {d.render()}")
    codes = report.codes()
    if report.baselined:
        lines.append(f"{report.baselined} known finding(s) covered by "
                     "the baseline")
    if codes:
        lines.append("diagnostic codes: " + ", ".join(
            f"{code}={count}" for code, count in codes.items()
        ))
        lines.append(f"{len(report.diagnostics)} diagnostic(s), "
                     f"{report.error_count} error(s)")
    else:
        lines.append("corpus is lint-clean")
    return "\n".join(lines) + "\n"


def render_lint_json(report: CorpusLintReport) -> str:
    def loc_fields(loc: SourceLocation) -> Dict[str, object]:
        return {"file": loc.filename, "line": loc.line, "column": loc.column}

    payload = {
        "format": "repro.lint/v1",
        "suites": report.suites,
        "templates_checked": report.checked,
        "error_count": report.error_count,
        "clean": report.clean,
        "baselined": report.baselined,
        "codes": report.codes(),
        "diagnostics": [
            {
                "template": entry.name,
                "feature": entry.feature,
                "language": entry.language,
                "suite": entry.suite,
                "code": d.code,
                "severity": d.severity.value,
                "message": d.message,
                "hint": d.hint,
                **loc_fields(d.loc),
            }
            for entry in report.entries
            for d in sort_diagnostics(entry.diagnostics)
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"
