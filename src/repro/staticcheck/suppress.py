"""Inline suppression comments and the checked-in lint baseline.

Two mechanisms keep intentional findings out of the lint signal without
weakening the passes:

**Inline suppressions** live in the template/program source itself::

    c[i] = a[i];           // acc-lint: disable=ACC401
    // acc-lint: disable-next-line=ACC501,ACC503
    #pragma acc parallel loop async(1)
    ! acc-lint: disable-file=ACC503        (Fortran comment form)

``disable`` silences the named codes on its own line, ``disable-next-line``
on the following line, ``disable-file`` everywhere in the file.  Codes are
comma-separated; the comment marker is ``//`` in C and ``!`` in Fortran
(``!$acc`` directive sentinels never match).

**The baseline** is a checked-in JSON inventory of known findings keyed by
``template name -> code -> count`` — the testsuite corpus deliberately
probes host/device divergence and async timing (``copyin`` discard
semantics, ``acc_async_test`` while busy), and those expected findings
must stay green without being globally disabled.  A baseline entry is an
*allowance*: up to ``count`` findings of that code are dropped for that
template, so a template that regresses further still fires.  The shipped
allowance for the built-in suites lives next to this module in
``corpus_baseline.json`` and is applied by default; ``repro lint
--update-baseline`` regenerates it from a raw run.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.staticcheck.diagnostics import CODE_CATALOG, Diagnostic

#: the comment tag this module recognises
_SUPPRESS_RE = re.compile(
    r"(?://|(?<!\$)!)\s*acc-lint:\s*"
    r"(disable(?:-next-line|-file)?)\s*=\s*"
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: format tag of the baseline file
BASELINE_FORMAT = "repro.lint-baseline/v1"

#: shipped allowance for the built-in suites
_SHIPPED_PATH = Path(__file__).with_name("corpus_baseline.json")


# ---------------------------------------------------------------------------
# inline suppressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Suppressions:
    """Parsed ``acc-lint`` comments of one source file."""

    file_codes: FrozenSet[str] = frozenset()
    line_codes: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not self.file_codes and not self.line_codes

    def covers(self, diag: Diagnostic) -> bool:
        if diag.code in self.file_codes:
            return True
        at_line = self.line_codes.get(diag.loc.line)
        return bool(at_line) and diag.code in at_line


def parse_suppressions(source: str) -> Suppressions:
    """Scan one program text for ``acc-lint`` comments (1-based lines)."""
    file_codes: set = set()
    line_codes: Dict[int, set] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        for match in _SUPPRESS_RE.finditer(line):
            kind = match.group(1)
            codes = {
                c.strip().upper() for c in match.group(2).split(",")
                if c.strip()
            }
            codes &= set(CODE_CATALOG)  # unknown codes never match anything
            if not codes:
                continue
            if kind == "disable-file":
                file_codes |= codes
            elif kind == "disable-next-line":
                line_codes.setdefault(lineno + 1, set()).update(codes)
            else:
                line_codes.setdefault(lineno, set()).update(codes)
    return Suppressions(
        file_codes=frozenset(file_codes),
        line_codes={k: frozenset(v) for k, v in line_codes.items()},
    )


def apply_suppressions(
    diags: Sequence[Diagnostic], source: str
) -> Tuple[List[Diagnostic], int]:
    """Drop findings covered by the source's inline comments.

    Returns ``(kept, suppressed_count)``.  Findings without a line anchor
    (``loc.line == 0``) can only be silenced file-wide.
    """
    sup = parse_suppressions(source)
    if sup.empty:
        return list(diags), 0
    kept = [d for d in diags if not sup.covers(d)]
    return kept, len(diags) - len(kept)


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------


@dataclass
class Baseline:
    """Allowance of known findings: ``template -> code -> count``."""

    entries: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(sum(codes.values()) for codes in self.entries.values())

    def allowance(self, template: str, code: str) -> int:
        return self.entries.get(template, {}).get(code, 0)

    def apply(
        self, template: str, diags: Sequence[Diagnostic]
    ) -> Tuple[List[Diagnostic], int]:
        """Drop up to the allowed count per code, oldest-position first.

        Returns ``(kept, baselined_count)``.
        """
        budget = dict(self.entries.get(template, {}))
        if not budget:
            return list(diags), 0
        kept: List[Diagnostic] = []
        dropped = 0
        for d in diags:
            if budget.get(d.code, 0) > 0:
                budget[d.code] -= 1
                dropped += 1
            else:
                kept.append(d)
        return kept, dropped

    def render(self) -> str:
        payload = {
            "format": BASELINE_FORMAT,
            "templates": {
                name: dict(sorted(codes.items()))
                for name, codes in sorted(self.entries.items())
                if codes
            },
        }
        return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def loads_baseline(text: str) -> Baseline:
    payload = json.loads(text)
    if payload.get("format") != BASELINE_FORMAT:
        raise ValueError(
            f"not a lint baseline file (format "
            f"{payload.get('format')!r}, expected {BASELINE_FORMAT!r})"
        )
    entries: Dict[str, Dict[str, int]] = {}
    for name, codes in payload.get("templates", {}).items():
        entries[name] = {str(c): int(n) for c, n in codes.items()}
    return Baseline(entries=entries)


def load_baseline(path) -> Baseline:
    return loads_baseline(Path(path).read_text(encoding="utf-8"))


_shipped_cache: Optional[Baseline] = None


def shipped_baseline() -> Baseline:
    """The checked-in allowance for the built-in suites (cached)."""
    global _shipped_cache
    if _shipped_cache is None:
        if _SHIPPED_PATH.exists():
            _shipped_cache = load_baseline(_SHIPPED_PATH)
        else:
            _shipped_cache = Baseline()
    return _shipped_cache


def baseline_from_findings(
    findings: Sequence[Tuple[str, Diagnostic]]
) -> Baseline:
    """Build an allowance from ``(template_name, diagnostic)`` pairs."""
    entries: Dict[str, Dict[str, int]] = {}
    for name, diag in findings:
        codes = entries.setdefault(name, {})
        codes[diag.code] = codes.get(diag.code, 0) + 1
    return Baseline(entries=entries)
