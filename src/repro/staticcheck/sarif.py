"""SARIF 2.1.0 export for the lint report.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is the
lingua franca code-scanning UIs ingest; ``repro lint --format sarif``
renders a :class:`~repro.staticcheck.corpus.CorpusLintReport` as one run:

* every catalogued code becomes a ``rule`` in the tool's driver (stable
  ``ruleIndex`` order = sorted code), severities mapped
  ``ERROR -> "error"``, ``WARNING -> "warning"``;
* every diagnostic becomes a ``result`` whose physical location is the
  *template* (artifact URI) and the line/column inside its generated
  functional source; template/feature/suite metadata rides in
  ``properties`` so dashboards can facet on them.

:func:`validate_sarif` is a structural validator for the subset of the
2.1.0 schema the exporter emits (the toolchain has no external JSON-schema
dependency); CI runs it over the corpus artifact, and it is deliberately
strict about the invariants consumers rely on — version string, rule
index coherence, 1-based regions.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.staticcheck.corpus import CorpusLintReport
from repro.staticcheck.diagnostics import CODE_CATALOG, sort_diagnostics

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"
TOOL_URI = "https://github.com/openacc/validation-testsuite"

#: codes whose usual emission is warning severity (heuristic smells);
#: individual results still carry their own level
_WARNING_BY_DEFAULT = frozenset({
    "ACC403", "ACC405", "ACC406", "ACC502", "ACC503",
})


def sarif_report(report: CorpusLintReport) -> Dict:
    """The SARIF 2.1.0 payload for one lint report, as plain dicts."""
    codes = sorted(CODE_CATALOG)
    rule_index = {code: i for i, code in enumerate(codes)}
    rules = [
        {
            "id": code,
            "name": code,
            "shortDescription": {"text": CODE_CATALOG[code]},
            "defaultConfiguration": {
                "level": "warning" if code in _WARNING_BY_DEFAULT
                else "error",
            },
        }
        for code in codes
    ]
    results: List[Dict] = []
    for entry in report.entries:
        for d in sort_diagnostics(entry.diagnostics):
            result: Dict = {
                "ruleId": d.code,
                "ruleIndex": rule_index[d.code],
                "level": d.severity.value,
                "message": {"text": d.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": entry.name},
                    },
                }],
                "properties": {
                    "template": entry.name,
                    "feature": entry.feature,
                    "language": entry.language,
                    "suite": entry.suite,
                },
            }
            if d.loc.line > 0:
                region: Dict = {"startLine": d.loc.line}
                if d.loc.column > 0:
                    region["startColumn"] = d.loc.column
                result["locations"][0]["physicalLocation"]["region"] = region
            if d.hint:
                result["properties"]["hint"] = d.hint
            results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri": TOOL_URI,
                    "rules": rules,
                },
            },
            "columnKind": "unicodeCodePoints",
            "results": results,
            "properties": {
                "suites": report.suites,
                "templatesChecked": report.checked,
                "errorCount": report.error_count,
            },
        }],
    }


def render_lint_sarif(report: CorpusLintReport) -> str:
    return json.dumps(sarif_report(report), indent=2, sort_keys=False) + "\n"


def validate_sarif(payload: Dict) -> List[str]:
    """Structural 2.1.0 validation; returns a list of problems (empty = ok)."""
    problems: List[str] = []

    def check(cond: bool, message: str) -> bool:
        if not cond:
            problems.append(message)
        return cond

    if not check(isinstance(payload, dict), "payload is not an object"):
        return problems
    check(payload.get("version") == SARIF_VERSION,
          f"version must be {SARIF_VERSION!r}")
    check(isinstance(payload.get("$schema"), str) and
          "sarif" in payload.get("$schema", ""),
          "$schema must reference the SARIF schema")
    runs = payload.get("runs")
    if not check(isinstance(runs, list) and len(runs) >= 1,
                 "runs must be a non-empty array"):
        return problems
    for ri, run in enumerate(runs):
        where = f"runs[{ri}]"
        if not check(isinstance(run, dict), f"{where} is not an object"):
            continue
        driver = run.get("tool", {}).get("driver")
        if not check(isinstance(driver, dict),
                     f"{where}.tool.driver missing"):
            continue
        check(bool(driver.get("name")), f"{where} driver has no name")
        rules = driver.get("rules", [])
        rule_ids: List[str] = []
        for qi, rule in enumerate(rules):
            rwhere = f"{where}.rules[{qi}]"
            if not check(isinstance(rule, dict) and bool(rule.get("id")),
                         f"{rwhere} has no id"):
                continue
            rule_ids.append(rule["id"])
            check(bool(rule.get("shortDescription", {}).get("text")),
                  f"{rwhere} has no shortDescription.text")
        results = run.get("results")
        if not check(isinstance(results, list),
                     f"{where}.results must be an array"):
            continue
        for si, result in enumerate(results):
            swhere = f"{where}.results[{si}]"
            if not check(isinstance(result, dict),
                         f"{swhere} is not an object"):
                continue
            rule_id = result.get("ruleId")
            check(bool(rule_id), f"{swhere} has no ruleId")
            if rule_id and rule_ids:
                if check(rule_id in rule_ids,
                         f"{swhere} ruleId {rule_id!r} not in driver rules"):
                    index = result.get("ruleIndex")
                    if index is not None:
                        check(
                            0 <= index < len(rule_ids)
                            and rule_ids[index] == rule_id,
                            f"{swhere} ruleIndex does not match ruleId",
                        )
            check(result.get("level") in ("error", "warning", "note",
                                          "none"),
                  f"{swhere} has invalid level")
            check(bool(result.get("message", {}).get("text")),
                  f"{swhere} has no message.text")
            for li, loc in enumerate(result.get("locations", [])):
                lwhere = f"{swhere}.locations[{li}]"
                phys = loc.get("physicalLocation", {})
                check(bool(phys.get("artifactLocation", {}).get("uri")),
                      f"{lwhere} has no artifactLocation.uri")
                region = phys.get("region")
                if region is not None:
                    check(isinstance(region.get("startLine"), int)
                          and region["startLine"] >= 1,
                          f"{lwhere} region.startLine must be >= 1")
    return problems
