"""Diagnostic model for the static analyses.

A :class:`Diagnostic` is one finding of one pass: a stable code, a severity,
a human message, the source location it anchors to and an optional fix
hint.  Codes are partitioned by the pass that emits them (see DESIGN.md
"Static checking"):

* ``ACC1xx`` — directive/clause legality (matrix, duplicates, conflicts,
  region scoping);
* ``ACC2xx`` — conservative loop dependence / race analysis;
* ``ACC3xx`` — corpus lint (template-level: parse failures, functional/
  cross divergence, crossexpect coherence);
* ``ACC4xx`` — whole-program data-environment flow (stale host/device
  copies, dead transfers, conflicting nested mappings);
* ``ACC5xx`` — async/wait happens-before (cross-queue races, host
  accesses overlapping pending async work, dead waits).

Every code the passes can emit is declared in :data:`CODE_CATALOG`; the
CI corpus gate treats any code outside a run's recorded baseline as a
regression, so new codes must be added here (and documented) first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.ir.astnodes import SourceLocation


class Severity(Enum):
    ERROR = "error"
    WARNING = "warning"

    def __lt__(self, other: "Severity") -> bool:
        order = {"error": 0, "warning": 1}
        return order[self.value] < order[other.value]


#: every diagnostic code the passes may emit, with its one-line meaning
CODE_CATALOG: Dict[str, str] = {
    # -- ACC1xx: directive/clause legality --------------------------------
    "ACC101": "clause not permitted on this directive (legality matrix)",
    "ACC102": "single-valued clause appears more than once",
    "ACC103": "variable named in more than one data clause",
    "ACC104": "conflicting scheduling clauses (seq with independent/"
              "gang/worker/vector)",
    "ACC105": "loop parallelism nesting order violated (gang inside "
              "worker/vector, worker inside vector)",
    "ACC106": "compute region nested inside a compute region "
              "(illegal in OpenACC 1.0)",
    "ACC107": "cache directive not inside a loop body",
    "ACC108": "update directive inside a compute region",
    "ACC109": "reduction variable also has a private/firstprivate copy",
    # -- ACC2xx: loop dependence / race analysis --------------------------
    "ACC201": "independent asserted on a loop with a detectable "
              "loop-carried dependence",
    "ACC202": "reduction-pattern accumulation in a work-shared loop "
              "without a reduction clause",
    "ACC203": "shared scalar written in a work-shared loop (race)",
    # -- ACC3xx: corpus lint ----------------------------------------------
    "ACC301": "generated functional variant does not parse",
    "ACC302": "functional/cross pair diverges outside the tested feature",
    "ACC303": "crossexpect incoherent with the substitution",
    # -- ACC4xx: whole-program data-environment flow ----------------------
    "ACC401": "host reads an array whose device copy is newer (stale "
              "host copy; missing update host / copyout)",
    "ACC402": "device reads an array whose device copy is stale "
              "(missing update device, or created without transfer)",
    "ACC403": "dead copyout: device copy is never written in the region",
    "ACC404": "conflicting data clause for an array already present "
              "from an enclosing region",
    "ACC405": "update directive names an array with no device copy",
    "ACC406": "dead copyin: device copy is never read in the region",
    # -- ACC5xx: async/wait happens-before --------------------------------
    "ACC501": "unsynchronized write-write or read-write on one array "
              "from different async queues",
    "ACC502": "wait targets a queue no async clause ever uses",
    "ACC503": "host touches data (or observes completion state) of "
              "async work that has not been waited on",
}


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding."""

    code: str
    message: str
    severity: Severity = Severity.ERROR
    loc: SourceLocation = field(default_factory=SourceLocation)
    #: suggested remediation, shown after the message in text output
    hint: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODE_CATALOG:
            raise ValueError(
                f"undeclared diagnostic code {self.code!r}; add it to "
                "repro.staticcheck.diagnostics.CODE_CATALOG first"
            )

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def render(self) -> str:
        """``line:col: error: ACC101 message (hint: ...)``"""
        where = ""
        if self.loc.line or self.loc.column:
            where = f"{self.loc.line}:{self.loc.column}: "
        hint = f" (hint: {self.hint})" if self.hint else ""
        return f"{where}{self.severity.value}: {self.code} {self.message}{hint}"

    def __str__(self) -> str:
        return f"{self.code} {self.message}"


def sort_diagnostics(diags: List[Diagnostic]) -> List[Diagnostic]:
    """Deterministic order: source position, then code, then message.

    The harness lint gate folds diagnostics into report rows, so the order
    must never depend on traversal accidents or scheduling.
    """
    return sorted(
        diags,
        key=lambda d: (d.loc.line, d.loc.column, d.code, d.message),
    )


def errors_only(diags: List[Diagnostic]) -> List[Diagnostic]:
    return [d for d in diags if d.is_error]


def summarize(diags: List[Diagnostic], limit: int = 3) -> str:
    """Compact one-line summary for report cells and harness attribution."""
    shown = sort_diagnostics(list(diags))[:limit]
    text = "; ".join(str(d) for d in shown)
    extra = len(diags) - len(shown)
    if extra > 0:
        text += f" (+{extra} more)"
    return text
