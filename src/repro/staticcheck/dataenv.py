"""Pass 4: whole-program data-environment flow analysis (ACC4xx).

The ACC1xx/ACC2xx passes judge each directive or loop in isolation; this
pass reasons *across* regions.  Every function is flattened into an ordered
stream of :class:`FlowOp` events (host statements, compute constructs,
data-region entry/exit, ``update``/``wait`` directives) and a forward
dataflow walk tracks, per locally-declared array, where the freshest copy
of its data lives on a four-point memory-state lattice:

``host-only``
    no device copy exists; the host copy is authoritative.
``present``
    host and device copies exist and agree.
``stale-host``
    the device copy is newer (a compute region wrote it and the host never
    fetched it back) — a host read here is ACC401.
``stale-device``
    the host copy is newer (host wrote while present, or the copy was
    created without a transfer) — a device read here is ACC402.

Data-clause semantics follow the 1.0 spec as encoded in ``legality.py``:
``copy``/``copyin`` transfer on entry, ``copy``/``copyout`` on exit,
``create`` allocates without transfer, and the ``present_or_*`` family
only transfers when this region actually created the copy.  Compute
constructs are treated as atomic device operations (async timing is
``asyncgraph``'s concern); arrays that appear in no clause fall back to
the 1.0 implicit ``present_or_copy`` rule.

Deliberate approximations, chosen so that every *error*-severity finding
is near-certain: analysis is path-insensitive (``if`` branches and loop
bodies are walked once, in order), array granularity is whole-object, and
an array escapes (is dropped from tracking) the moment it is passed to an
unknown call, named in ``deviceptr``/``use_device``/``device_resident``,
or managed by unstructured ``enter data``/``exit data``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.ir.acc import Directive
from repro.ir.astnodes import (
    AccConstruct,
    AccLoop,
    AccStandalone,
    Assign,
    Binary,
    Block,
    Call,
    Cast,
    Conditional,
    DeclStmt,
    Expr,
    For,
    Function,
    Ident,
    If,
    Index,
    IntLit,
    Node,
    Program,
    Return,
    SourceLocation,
    Stmt,
    Unary,
    VarDecl,
    While,
)
from repro.staticcheck.diagnostics import Diagnostic, Severity, sort_diagnostics
from repro.staticcheck.regions import COMPUTE_KINDS

# ---------------------------------------------------------------------------
# the flow-event stream (shared with repro.staticcheck.asyncgraph)
# ---------------------------------------------------------------------------

#: data clauses that copy host -> device on region entry
ENTRY_TRANSFER = frozenset({
    "copy", "copyin", "present_or_copy", "present_or_copyin",
})
#: data clauses that copy device -> host on region exit
EXIT_TRANSFER = frozenset({
    "copy", "copyout", "present_or_copy", "present_or_copyout",
})
#: data clauses that allocate a device copy without an entry transfer
ALLOC_ONLY = frozenset({
    "create", "copyout", "present_or_create", "present_or_copyout",
})
#: clauses whose plain (non-present_or) spelling re-maps unconditionally
STRICT_MAPPING = frozenset({"copy", "copyin", "copyout", "create"})
#: clauses that surrender the array to opaque device-pointer handling
ESCAPE_CLAUSES = frozenset({"deviceptr", "device_resident", "use_device"})


@dataclass
class FlowOp:
    """One atomic event of a function's flattened execution order.

    ``kind`` is one of:

    * ``host`` — one host statement; ``reads``/``writes`` are the tracked
      arrays it touches, ``calls`` the runtime routines it invokes;
    * ``compute`` — a whole compute construct as one atomic device op
      (its directive carries the data clauses and any ``async``);
    * ``data_enter`` / ``data_exit`` — a structured ``data`` region;
    * ``update`` / ``wait`` — the standalone directives;
    * ``escape`` — arrays leaving the analysable world (``host_data``,
      ``enter data``/``exit data``, address-taken calls).
    """

    kind: str
    loc: SourceLocation
    directive: Optional[Directive] = None
    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()
    escapes: FrozenSet[str] = frozenset()
    calls: Tuple[Tuple[str, tuple], ...] = ()


def declared_arrays(fn: Function) -> Set[str]:
    """Names of arrays declared in the function body (the tracked set)."""
    out: Set[str] = set()
    for node in _walk_stmts(fn.body):
        if isinstance(node, DeclStmt):
            for decl in node.decls:
                if decl.dims:
                    out.add(decl.name)
    return out


def _walk_stmts(stmt: Optional[Stmt]) -> Iterable[Stmt]:
    if stmt is None:
        return
    yield stmt
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            yield from _walk_stmts(child)
    elif isinstance(stmt, (If,)):
        yield from _walk_stmts(stmt.then)
        yield from _walk_stmts(stmt.other)
    elif isinstance(stmt, (For, While)):
        yield from _walk_stmts(stmt.body)
    elif isinstance(stmt, AccConstruct):
        yield from _walk_stmts(stmt.body)
    elif isinstance(stmt, AccLoop):
        yield from _walk_stmts(stmt.loop)


class _Accesses:
    """Mutable collector for one statement / one region body."""

    def __init__(self, arrays: Set[str]):
        self.arrays = arrays
        self.reads: Set[str] = set()
        self.writes: Set[str] = set()
        self.escapes: Set[str] = set()
        self.calls: List[Tuple[str, tuple]] = []

    def expr(self, e: Optional[Expr]) -> None:
        if e is None:
            return
        if isinstance(e, Index):
            if isinstance(e.base, Ident):
                if e.base.name in self.arrays:
                    self.reads.add(e.base.name)
            else:
                self.expr(e.base)
            for idx in e.indices:
                self.expr(idx)
        elif isinstance(e, Ident):
            # a bare array name (no subscript) — address taken / aliased
            if e.name in self.arrays:
                self.escapes.add(e.name)
        elif isinstance(e, Call):
            self.calls.append((e.name, tuple(e.args)))
            for arg in e.args:
                self.expr(arg)
        elif isinstance(e, Binary):
            self.expr(e.left)
            self.expr(e.right)
        elif isinstance(e, Unary):
            self.expr(e.operand)
        elif isinstance(e, Conditional):
            self.expr(e.cond)
            self.expr(e.then)
            self.expr(e.other)
        elif isinstance(e, Cast):
            self.expr(e.operand)
        # literals and slices carry no array accesses

    def assign(self, stmt: Assign) -> None:
        target = stmt.target
        if isinstance(target, Index) and isinstance(target.base, Ident):
            if target.base.name in self.arrays:
                self.writes.add(target.base.name)
                if stmt.op:  # compound assignment also reads
                    self.reads.add(target.base.name)
            for idx in target.indices:
                self.expr(idx)
        else:
            # scalar target (or odd shape): indices/value still read
            if not isinstance(target, Ident):
                self.expr(target)
        self.expr(stmt.value)


def _private_arrays(directive: Directive, arrays: Set[str]) -> Set[str]:
    """Arrays privatised on a compute directive (device-private copies —
    their accesses never touch the mapped copy)."""
    out: Set[str] = set()
    for cl in directive.clauses_named("private", "firstprivate", "reduction"):
        out.update(n for n in cl.var_names if n in arrays)
    return out


def _device_accesses(stmt: Stmt, arrays: Set[str],
                     private: Set[str]) -> _Accesses:
    """Array accesses a compute construct's body performs on the device."""
    acc = _Accesses(arrays - private)
    for node in _walk_stmts(stmt):
        if isinstance(node, Assign):
            acc.assign(node)
        elif isinstance(node, DeclStmt):
            for decl in node.decls:
                acc.expr(decl.init)
        elif isinstance(node, If):
            acc.expr(node.cond)
        elif isinstance(node, While):
            acc.expr(node.cond)
        elif isinstance(node, For):
            acc.expr(node.start)
            acc.expr(node.bound)
            acc.expr(node.step)
        elif isinstance(node, Return):
            acc.expr(node.value)
        elif isinstance(node, AccLoop):
            # nested loop directives may privatise more arrays
            acc.arrays = acc.arrays - _private_arrays(node.directive, arrays)
        elif hasattr(node, "expr"):
            acc.expr(node.expr)
    return acc


def flow_events(fn: Function, arrays: Optional[Set[str]] = None) -> List[FlowOp]:
    """Flatten one function into its ordered :class:`FlowOp` stream."""
    tracked = declared_arrays(fn) if arrays is None else arrays
    ops: List[FlowOp] = []
    _flatten(fn.body, tracked, ops)
    return ops


def _host_op(loc: SourceLocation, acc: _Accesses) -> FlowOp:
    return FlowOp(
        kind="host", loc=loc,
        reads=frozenset(acc.reads), writes=frozenset(acc.writes),
        escapes=frozenset(acc.escapes), calls=tuple(acc.calls),
    )


def _flatten(stmt: Optional[Stmt], arrays: Set[str],
             ops: List[FlowOp]) -> None:
    if stmt is None:
        return
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            _flatten(child, arrays, ops)
    elif isinstance(stmt, DeclStmt):
        acc = _Accesses(arrays)
        for decl in stmt.decls:
            acc.expr(decl.init)
            for dim in decl.dims:
                acc.expr(dim)
        ops.append(_host_op(stmt.loc, acc))
    elif isinstance(stmt, Assign):
        acc = _Accesses(arrays)
        acc.assign(stmt)
        ops.append(_host_op(stmt.loc, acc))
    elif isinstance(stmt, Return):
        acc = _Accesses(arrays)
        acc.expr(stmt.value)
        ops.append(_host_op(stmt.loc, acc))
    elif isinstance(stmt, If):
        acc = _Accesses(arrays)
        acc.expr(stmt.cond)
        ops.append(_host_op(stmt.loc, acc))
        _flatten(stmt.then, arrays, ops)
        _flatten(stmt.other, arrays, ops)
    elif isinstance(stmt, While):
        acc = _Accesses(arrays)
        acc.expr(stmt.cond)
        ops.append(_host_op(stmt.loc, acc))
        _flatten(stmt.body, arrays, ops)
    elif isinstance(stmt, For):
        acc = _Accesses(arrays)
        acc.expr(stmt.start)
        acc.expr(stmt.bound)
        acc.expr(stmt.step)
        ops.append(_host_op(stmt.loc, acc))
        _flatten(stmt.body, arrays, ops)
    elif isinstance(stmt, AccConstruct):
        kind = stmt.directive.kind
        if kind in COMPUTE_KINDS:
            ops.append(_compute_op(stmt.directive, stmt.body, arrays))
        elif kind == "data":
            ops.append(FlowOp(kind="data_enter", loc=stmt.directive.loc,
                              directive=stmt.directive))
            _flatten(stmt.body, arrays, ops)
            ops.append(FlowOp(kind="data_exit", loc=stmt.directive.loc,
                              directive=stmt.directive))
        else:  # host_data: device-pointer code is opaque to this analysis
            escaped: Set[str] = set()
            for cl in stmt.directive.clauses_named("use_device"):
                escaped.update(n for n in cl.var_names if n in arrays)
            body_acc = _device_accesses(stmt.body, arrays, set())
            escaped |= body_acc.reads | body_acc.writes | body_acc.escapes
            ops.append(FlowOp(kind="escape", loc=stmt.directive.loc,
                              directive=stmt.directive,
                              escapes=frozenset(escaped)))
    elif isinstance(stmt, AccLoop):
        if stmt.directive.kind in COMPUTE_KINDS:
            ops.append(_compute_op(stmt.directive, stmt.loop, arrays))
        else:
            # an orphaned `loop` directive outside any compute region
            # executes on the host
            _flatten(stmt.loop, arrays, ops)
    elif isinstance(stmt, AccStandalone):
        kind = stmt.directive.kind
        if kind == "update":
            ops.append(FlowOp(kind="update", loc=stmt.directive.loc,
                              directive=stmt.directive))
        elif kind == "wait":
            ops.append(FlowOp(kind="wait", loc=stmt.directive.loc,
                              directive=stmt.directive))
        elif kind in ("enter data", "exit data"):
            escaped = set()
            for cl in stmt.directive.data_clauses():
                escaped.update(n for n in cl.var_names if n in arrays)
            ops.append(FlowOp(kind="escape", loc=stmt.directive.loc,
                              directive=stmt.directive,
                              escapes=frozenset(escaped)))
        # cache / declare / routine: no data motion at this level
    else:
        # ExprStmt, Break, Continue and friends
        expr = getattr(stmt, "expr", None)
        acc = _Accesses(arrays)
        acc.expr(expr)
        ops.append(_host_op(stmt.loc, acc))


def _compute_op(directive: Directive, body: Stmt,
                arrays: Set[str]) -> FlowOp:
    private = _private_arrays(directive, arrays)
    acc = _device_accesses(body, arrays, private)
    return FlowOp(
        kind="compute", loc=directive.loc, directive=directive,
        reads=frozenset(acc.reads), writes=frozenset(acc.writes),
        escapes=frozenset(acc.escapes),
    )


def scalar_constants(fn: Function) -> Dict[str, int]:
    """Scalars assigned exactly one integer literal in the whole function.

    Queue tags are almost always ``int tag = 5`` — this tiny constant
    propagation lets the async pass resolve ``async(tag)``/``wait(tag)``
    to concrete queue ids.
    """
    values: Dict[str, List[int]] = {}
    for node in _walk_stmts(fn.body):
        if isinstance(node, DeclStmt):
            for decl in node.decls:
                if not decl.dims and isinstance(decl.init, IntLit):
                    values.setdefault(decl.name, []).append(decl.init.value)
                elif not decl.dims and decl.init is not None:
                    values.setdefault(decl.name, []).append(None)
        elif isinstance(node, Assign) and isinstance(node.target, Ident):
            if isinstance(node.value, IntLit) and not node.op:
                values.setdefault(node.target.name, []).append(node.value.value)
            else:
                values.setdefault(node.target.name, []).append(None)
    return {
        name: vals[0]
        for name, vals in values.items()
        if len(vals) == 1 and vals[0] is not None
    }


# ---------------------------------------------------------------------------
# the dataflow walk
# ---------------------------------------------------------------------------

HOST_ONLY = "host-only"
PRESENT = "present"
STALE_HOST = "stale-host"
STALE_DEVICE = "stale-device"


@dataclass
class _EnvEntry:
    """One array mapped by one region's data clause."""

    name: str
    clause: str
    loc: SourceLocation
    created: bool      # this region allocated the device copy
    dup: bool = False  # conflicting nested mapping (ACC404): exit no-ops
    declare: bool = False  # mapped by a declare directive (scratch idiom)
    device_written: bool = False
    device_read: bool = False


class _FunctionFlow:
    def __init__(self, fn: Function, version_label: str = "1.0"):
        self.fn = fn
        self.arrays = declared_arrays(fn)
        self.states: Dict[str, str] = {a: HOST_ONLY for a in self.arrays}
        self.escaped: Set[str] = set()
        self.virgin: Set[str] = set()  # declare-mapped, no device access yet
        self.env_stack: List[List[_EnvEntry]] = []
        self.diags: List[Diagnostic] = []
        self.reported: Set[Tuple[str, str]] = set()  # (code, array) dedup
        self._seed_declares()

    # ------------------------------------------------------------- helpers

    def _seed_declares(self) -> None:
        for directive in self.fn.declares:
            entries: List[_EnvEntry] = []
            for cl in directive.data_clauses():
                for ref in cl.refs:
                    if ref.name not in self.arrays:
                        continue
                    if cl.name in ESCAPE_CLAUSES:
                        self.escaped.add(ref.name)
                        continue
                    if cl.name in ENTRY_TRANSFER:
                        self.states[ref.name] = PRESENT
                        # the declare transfer is not observable before the
                        # first device access, so host initialisation that
                        # textually follows the declare line still reaches
                        # the device (the 1.0 testsuite relies on this)
                        self.virgin.add(ref.name)
                    else:
                        self.states[ref.name] = STALE_DEVICE
                    entries.append(_EnvEntry(
                        name=ref.name, clause=cl.name, loc=cl.loc,
                        created=True, declare=True,
                    ))
            if entries:
                self.env_stack.append(entries)

    def _tracked(self, name: str) -> bool:
        return name in self.arrays and name not in self.escaped

    def _covering(self, name: str) -> List[_EnvEntry]:
        return [
            e for env in self.env_stack for e in env
            if e.name == name and not e.dup
        ]

    def _has_device_copy(self, name: str) -> bool:
        return bool(self._covering(name))

    def _report(self, code: str, name: str, message: str,
                loc: SourceLocation, severity: Severity,
                hint: str = "") -> None:
        if (code, name) in self.reported:
            return
        self.reported.add((code, name))
        self.diags.append(Diagnostic(
            code, message, severity=severity, loc=loc, hint=hint,
        ))

    def _escape(self, names: Iterable[str]) -> None:
        for name in names:
            if name in self.arrays:
                self.escaped.add(name)

    # -------------------------------------------------------- region entry

    def _enter(self, directive: Directive) -> List[_EnvEntry]:
        entries: List[_EnvEntry] = []
        for cl in directive.data_clauses():
            if cl.name in ("host", "device", "delete"):
                continue  # update/exit-data motion clauses, not mappings
            for ref in cl.refs:
                name = ref.name
                if not self._tracked(name):
                    continue
                if cl.name in ESCAPE_CLAUSES:
                    self._escape([name])
                    continue
                already = self._has_device_copy(name)
                if already and cl.name in STRICT_MAPPING:
                    self._report(
                        "ACC404", name,
                        f"array '{name}' is already present from an "
                        f"enclosing region; nested '{cl.name}' re-maps it",
                        cl.loc, Severity.ERROR,
                        hint=f"use present or present_or_{cl.name} "
                             f"(p{cl.name}) on the inner directive",
                    )
                    entries.append(_EnvEntry(
                        name=name, clause=cl.name, loc=cl.loc,
                        created=False, dup=True,
                    ))
                    continue
                created = not already
                entries.append(_EnvEntry(
                    name=name, clause=cl.name, loc=cl.loc, created=created,
                ))
                if created:
                    if cl.name in ENTRY_TRANSFER:
                        if self.states[name] == STALE_HOST:
                            self._report(
                                "ACC401", name,
                                f"array '{name}' is copied to the device "
                                "after its previous device writes were "
                                "discarded (stale host copy)",
                                cl.loc, Severity.WARNING,
                                hint="copy the data back (copyout / update "
                                     "host) before the earlier region ends",
                            )
                        self.states[name] = PRESENT
                    else:
                        self.states[name] = STALE_DEVICE
                # present / present_or_* on an existing copy: no transfer,
                # outer state stands
        return entries

    # --------------------------------------------------------- region exit

    def _exit(self, entries: List[_EnvEntry]) -> None:
        for e in entries:
            if e.dup or not self._tracked(e.name):
                continue
            explicit_out = e.clause in ("copyout", "present_or_copyout")
            explicit_in = e.clause in ("copyin", "present_or_copyin")
            if e.created:
                if explicit_out and not e.device_written:
                    self._report(
                        "ACC403", e.name,
                        f"'{e.clause}' of array '{e.name}' but the region "
                        "never writes its device copy",
                        e.loc, Severity.WARNING,
                        hint="drop the clause or use copyin/present if the "
                             "data only flows host-to-device",
                    )
                if explicit_in and not e.device_read:
                    self._report(
                        "ACC406", e.name,
                        f"'{e.clause}' of array '{e.name}' but the device "
                        "copy is never read in the region",
                        e.loc, Severity.WARNING,
                        hint="use create if the array is only written on "
                             "the device",
                    )
                if e.clause in EXIT_TRANSFER:
                    self.states[e.name] = HOST_ONLY
                elif e.device_written:
                    # device writes are discarded with the copy
                    self.states[e.name] = STALE_HOST
                else:
                    self.states[e.name] = HOST_ONLY
            # not created: present / present_or_* over an existing copy —
            # no exit transfer, the enclosing region still owns the state

    def _mark(self, name: str, read: bool = False,
              write: bool = False) -> None:
        for e in self._covering(name):
            if read:
                e.device_read = True
            if write:
                e.device_written = True

    # ------------------------------------------------------------ visitors

    def host(self, op: FlowOp) -> None:
        self._escape(op.escapes)
        for name in sorted(op.reads):
            if not self._tracked(name):
                continue
            if self.states[name] == STALE_HOST:
                covering = self._covering(name)
                declare_only = bool(covering) and all(
                    e.declare for e in covering
                )
                if covering and not declare_only:
                    # a live device copy holds newer data and nothing will
                    # ever copy it back before this read: near-certain bug
                    self._report(
                        "ACC401", name,
                        f"host reads array '{name}' but the device copy "
                        "is newer",
                        op.loc, Severity.ERROR,
                        hint="insert update host / copyout before the "
                             "host read",
                    )
                elif declare_only:
                    # the declare scratch idiom keeps a deliberately
                    # divergent host copy; flag softly
                    self._report(
                        "ACC401", name,
                        f"host reads array '{name}' while its declare'd "
                        "device copy holds newer data",
                        op.loc, Severity.WARNING,
                        hint="insert update host if the device values "
                             "were meant to be visible here",
                    )
                else:
                    # the writes were discarded with the copy — the 1.0
                    # spec guarantees this, and tests probe it on purpose
                    self._report(
                        "ACC401", name,
                        f"host reads array '{name}' whose device writes "
                        "were discarded at region exit",
                        op.loc, Severity.WARNING,
                        hint="add copyout (or update host before exit) if "
                             "the device values were meant to survive",
                    )
                self.states[name] = PRESENT if covering else HOST_ONLY
        for name in sorted(op.writes):
            if not self._tracked(name):
                continue
            if name in self.virgin:
                continue  # declare transfer not yet materialised
            if self._has_device_copy(name):
                self.states[name] = STALE_DEVICE
            else:
                self.states[name] = HOST_ONLY

    def compute(self, op: FlowOp) -> None:
        assert op.directive is not None
        entries = self._enter(op.directive)
        self.env_stack.append(entries)
        self._escape(op.escapes)
        clause_names = {e.name for e in entries}
        implicit: List[_EnvEntry] = []
        for name in sorted((op.reads | op.writes) - clause_names):
            if not self._tracked(name):
                continue
            if not self._has_device_copy(name):
                # OpenACC 1.0 implicit rule: arrays default present_or_copy
                if self.states[name] == STALE_HOST:
                    self._report(
                        "ACC401", name,
                        f"array '{name}' is implicitly copied to the "
                        "device after its previous device writes were "
                        "discarded (stale host copy)",
                        op.loc, Severity.WARNING,
                        hint="copy the data back before the earlier "
                             "region ends",
                    )
                entry = _EnvEntry(name=name, clause="present_or_copy",
                                  loc=op.loc, created=True)
                implicit.append(entry)
                self.states[name] = PRESENT
        if implicit:
            self.env_stack[-1] = entries = entries + implicit
        for name in sorted(op.reads):
            if not self._tracked(name):
                continue
            self.virgin.discard(name)
            if self.states[name] == STALE_DEVICE and name not in op.writes:
                # reads of an array the same region writes may read its
                # own values (scratch initialisation) — only a pure read
                # of a stale copy is near-certain
                self._report(
                    "ACC402", name,
                    f"compute region reads array '{name}' but its device "
                    "copy is stale",
                    op.loc, Severity.ERROR,
                    hint=f"insert update device({name}) before the region "
                         "(or copy the data in)",
                )
                self.states[name] = PRESENT
            self._mark(name, read=True)
        for name in sorted(op.writes):
            if not self._tracked(name):
                continue
            self.virgin.discard(name)
            self._mark(name, write=True)
            self.states[name] = STALE_HOST
        self.env_stack.pop()
        self._exit(entries)

    def update(self, op: FlowOp) -> None:
        assert op.directive is not None
        for cl in op.directive.clauses_named("host"):
            for ref in cl.refs:
                name = ref.name
                if not self._tracked(name):
                    continue
                if not self._has_device_copy(name):
                    self._report(
                        "ACC405", name,
                        f"update host of array '{name}' but no device "
                        "copy is present",
                        cl.loc, Severity.WARNING,
                        hint="the update is outside any data region "
                             "holding the array",
                    )
                    continue
                self.virgin.discard(name)
                self._mark(name, read=True)
                self.states[name] = PRESENT
        for cl in op.directive.clauses_named("device"):
            for ref in cl.refs:
                name = ref.name
                if not self._tracked(name):
                    continue
                if not self._has_device_copy(name):
                    self._report(
                        "ACC405", name,
                        f"update device of array '{name}' but no device "
                        "copy is present",
                        cl.loc, Severity.WARNING,
                        hint="the update is outside any data region "
                             "holding the array",
                    )
                    continue
                self.virgin.discard(name)
                self._mark(name, write=True)
                self.states[name] = PRESENT

    # ---------------------------------------------------------------- run

    def run(self) -> List[Diagnostic]:
        pending_envs: List[List[_EnvEntry]] = []
        for op in flow_events(self.fn, self.arrays):
            if op.kind == "host":
                self.host(op)
            elif op.kind == "compute":
                self.compute(op)
            elif op.kind == "data_enter":
                assert op.directive is not None
                entries = self._enter(op.directive)
                self.env_stack.append(entries)
                pending_envs.append(entries)
            elif op.kind == "data_exit":
                if pending_envs:
                    entries = pending_envs.pop()
                    if self.env_stack and self.env_stack[-1] is entries:
                        self.env_stack.pop()
                    self._exit(entries)
            elif op.kind == "update":
                self.update(op)
            elif op.kind == "escape":
                self._escape(op.escapes)
            # wait: timing only — no data-state effect in this pass
        return self.diags


def check_program_dataenv(program: Program) -> List[Diagnostic]:
    """Run the data-environment flow pass over every function."""
    diags: List[Diagnostic] = []
    for fn in program.functions:
        diags.extend(_FunctionFlow(fn).run())
    return sort_diagnostics(diags)
