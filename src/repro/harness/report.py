"""Report generation (Section III "Results").

"We can generate the validation results in any of the formats such as plain
text, HTML and CSV" — and "we append the bug reports with code snippets for
vendors' convenience".
"""

from __future__ import annotations

import csv
import html as _html
import io
from typing import List, Optional

from repro.harness.runner import SuiteRunReport, TestResult


def render_text(report: SuiteRunReport) -> str:
    """Plain-text summary table plus failure details."""
    lines: List[str] = []
    lines.append(f"OpenACC validation report — {report.compiler_label}")
    lines.append(
        f"iterations per test: {report.config.iterations}; "
        f"tests run: {len(report.results)}"
    )
    lines.append("")
    header = f"{'feature':40s} {'lang':8s} {'result':8s} {'certainty':9s} detail"
    lines.append(header)
    lines.append("-" * len(header))
    for r in report.results:
        status = "PASS" if r.passed else "FAIL"
        detail = ""
        if not r.passed:
            detail = f"[{r.failure_kind.value}] {r.functional.failure_detail()[:60]}"
        elif r.cross_inconclusive_unexpectedly:
            detail = "(cross inconclusive: directive may have no effect)"
        lines.append(
            f"{r.feature:40s} {r.language:8s} {status:8s} "
            f"{r.certainty:8.2%} {detail}"
        )
    lines.append("")
    for lang in ("c", "fortran"):
        pool = report.for_language(lang)
        if pool:
            lines.append(
                f"{lang:8s}: {report.pass_rate(lang):6.2f}% pass "
                f"({len(report.failures(lang))} failures / {len(pool)} tests)"
            )
    lines.append(f"overall : {report.pass_rate():6.2f}% pass")
    kinds = report.by_failure_kind()
    if kinds:
        lines.append("failure kinds: " + ", ".join(
            f"{k.value}={v}" for k, v in sorted(kinds.items(), key=lambda kv: kv[0].value)
        ))
    return "\n".join(lines) + "\n"


def render_csv(report: SuiteRunReport) -> str:
    """Machine-readable CSV (one row per test).

    Built with the stdlib ``csv`` writer, not string interpolation: a
    feature name or failure detail containing a comma, quote or newline is
    quoted per RFC 4180 instead of silently corrupting the table.
    ``lineterminator`` is pinned to ``\\n`` to keep reports byte-stable
    across platforms (the module defaults to ``\\r\\n``).
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["feature", "language", "result", "failure_kind",
                     "certainty", "cross_conclusive", "detail"])
    for r in report.results:
        kind = r.failure_kind.value if r.failure_kind else ""
        conclusive = "" if r.cross_conclusive is None else str(r.cross_conclusive).lower()
        detail = "" if r.passed else r.functional.failure_detail()
        writer.writerow([r.feature, r.language,
                         "pass" if r.passed else "fail",
                         kind, f"{r.certainty:.4f}", conclusive, detail])
    return buffer.getvalue()


def render_html(report: SuiteRunReport) -> str:
    """Self-contained HTML report.

    Every interpolated field goes through ``html.escape`` — including
    ``r.language`` and the *formatted* numeric strings.  Numbers are
    formatted first and the resulting text escaped, so even a value whose
    ``__format__`` emits markup cannot break out of its table cell.
    """
    rows = []
    for r in report.results:
        status = "pass" if r.passed else "fail"
        detail = r.functional.failure_detail() if not r.passed else ""
        cells = [
            _html.escape(str(r.feature)),
            _html.escape(str(r.language)),
            _html.escape(status.upper()),
            _html.escape(f"{r.certainty:.2%}"),
            _html.escape(detail[:120]),
        ]
        rows.append(
            f"<tr class='{status}'>"
            + "".join(f"<td>{cell}</td>" for cell in cells)
            + "</tr>"
        )
    summary = _html.escape(" | ".join(
        f"{lang}: {report.pass_rate(lang):.1f}%"
        for lang in ("c", "fortran")
        if report.for_language(lang)
    ))
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>OpenACC validation — {_html.escape(report.compiler_label)}</title>
<style>
 body {{ font-family: sans-serif; }}
 table {{ border-collapse: collapse; }}
 td, th {{ border: 1px solid #999; padding: 2px 8px; }}
 tr.pass td {{ background: #e7f7e7; }}
 tr.fail td {{ background: #f7e7e7; }}
</style></head>
<body>
<h1>OpenACC validation report — {_html.escape(report.compiler_label)}</h1>
<p>{_html.escape(str(len(report.results)))} tests, {_html.escape(str(report.config.iterations))} iterations each.
Pass rates: {summary}</p>
<table>
<tr><th>feature</th><th>language</th><th>result</th><th>certainty</th><th>detail</th></tr>
{chr(10).join(rows)}
</table>
</body></html>
"""


def render_metrics_text(report: SuiteRunReport) -> str:
    """Engine/run metrics as a plain-text block (the CLI's ``--metrics``).

    Kept out of :func:`render_text` on purpose: timing and utilization vary
    run to run, while the validation report itself is byte-identical across
    execution policies.
    """
    m = report.metrics
    if m is None:
        return "no run metrics recorded (report not produced by run_suite)\n"
    lines: List[str] = []
    lines.append(f"run metrics — {report.compiler_label}")
    lines.append(f"  policy             : {m.policy} (workers={m.workers})")
    lines.append(f"  wall time          : {m.wall_s:.3f} s")
    lines.append(f"  compile time (sum) : {m.compile_s:.3f} s")
    lines.append(f"  execute time (sum) : {m.execute_s:.3f} s")
    lines.append(f"  templates          : {m.templates}")
    lines.append(f"  program runs       : {m.iterations_run}")
    lines.append(
        f"  compile cache      : {m.cache_hits} hits / {m.cache_misses} "
        f"misses ({m.cache_hit_rate:.1%} hit rate)"
    )
    lines.append(
        f"  worker utilization : {m.worker_utilization:.1%} across "
        f"{len(m.worker_busy_s)} worker(s)"
    )
    if m.failure_kinds:
        lines.append("  failure kinds      : " + ", ".join(
            f"{kind}={count}" for kind, count in sorted(m.failure_kinds.items())
        ))
    return "\n".join(lines) + "\n"


def render_metrics_csv(report: SuiteRunReport) -> str:
    """Engine/run metrics as ``metric,value`` rows (stdlib ``csv`` writer,
    same quoting and ``\\n`` line-terminator rules as :func:`render_csv`)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["metric", "value"])
    m = report.metrics
    if m is None:
        return buffer.getvalue()
    writer.writerow(["policy", m.policy])
    writer.writerow(["workers", m.workers])
    writer.writerow(["wall_s", f"{m.wall_s:.6f}"])
    writer.writerow(["compile_s", f"{m.compile_s:.6f}"])
    writer.writerow(["execute_s", f"{m.execute_s:.6f}"])
    writer.writerow(["templates", m.templates])
    writer.writerow(["iterations_run", m.iterations_run])
    writer.writerow(["cache_hits", m.cache_hits])
    writer.writerow(["cache_misses", m.cache_misses])
    writer.writerow(["cache_hit_rate", f"{m.cache_hit_rate:.4f}"])
    writer.writerow(["worker_utilization", f"{m.worker_utilization:.4f}"])
    for kind, count in sorted(m.failure_kinds.items()):
        writer.writerow([f"failures.{kind}", count])
    return buffer.getvalue()


def render_bug_report(report: SuiteRunReport, max_snippet_lines: int = 40) -> str:
    """Failure-focused report with code snippets (for vendor convenience)."""
    lines: List[str] = []
    lines.append(f"Bug report — {report.compiler_label}")
    failures = report.failures()
    lines.append(f"{len(failures)} failing tests of {len(report.results)}")
    for r in failures:
        lines.append("")
        lines.append("=" * 70)
        lines.append(f"feature : {r.feature} ({r.language})")
        lines.append(f"test    : {r.template.name}")
        kind = r.failure_kind.value if r.failure_kind else "?"
        lines.append(f"class   : {kind}")
        lines.append(f"detail  : {r.functional.failure_detail()}")
        if r.template.description:
            lines.append(f"purpose : {r.template.description}")
        lines.append("--- generated functional test " + "-" * 30)
        snippet = r.functional.source.strip("\n").split("\n")
        lines.extend(snippet[:max_snippet_lines])
        if len(snippet) > max_snippet_lines:
            lines.append(f"... ({len(snippet) - max_snippet_lines} more lines)")
    inconclusive = report.inconclusive_crosses()
    if inconclusive:
        lines.append("")
        lines.append("=" * 70)
        lines.append(
            "Cross tests that unexpectedly matched the functional result "
            "(the tested directive may have no effect; test to be redesigned):"
        )
        for r in inconclusive:
            lines.append(f"  - {r.feature} ({r.language})")
    return "\n".join(lines) + "\n"
