"""Execution engine: pluggable policies for suite runs.

``ValidationRunner.run_suite`` used to walk the template list strictly
serially, although the workload — compile, run M times, classify, next
template — is embarrassingly parallel.  This module supplies the paper's
"runs on random nodes / tracks large sweeps" scale-out shape as three
interchangeable policies behind ``HarnessConfig.policy``/``workers``:

* ``serial`` — the original in-order loop (the default);
* ``thread`` — a thread pool sharing one runner and one compile cache
  (useful for I/O-bound behaviours and as a determinism cross-check);
* ``process`` — a process pool: ``(behavior, config)`` are shipped to each
  worker once via the pool initializer, then work units carry only
  ``(index, template)`` and ship a finished :class:`TestResult` back.

Determinism guarantee: results are reassembled in template order, and every
per-iteration RNG seed derives from ``HarnessConfig`` alone (``rng_seed +
k``), never from scheduling — so serial and parallel runs of the same
configuration render byte-identical text/CSV/HTML reports.

Every run also assembles a :class:`RunMetrics` (attached to the report):
per-phase wall time, compile-cache hit rate, per-worker busy time and
failure-kind counters — the observability side of the scale-out work.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, TYPE_CHECKING

from repro.harness.config import EXECUTION_POLICIES, HarnessConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.compiler import CompilerBehavior
    from repro.harness.runner import SuiteRunReport, TestResult, ValidationRunner
    from repro.templates import TestTemplate

#: ordered (TestResult, worker id) pairs, one per template
EngineOutcomes = List[Tuple["TestResult", str]]


@dataclass
class RunMetrics:
    """Observability counters for one suite run."""

    policy: str
    workers: int
    #: wall-clock time of the whole suite run
    wall_s: float = 0.0
    #: compile-phase time summed over all phases (cache lookups included)
    compile_s: float = 0.0
    #: execution time summed over all phases (all iterations)
    execute_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    templates: int = 0
    #: total program executions (functional + cross, all iterations)
    iterations_run: int = 0
    #: busy seconds per worker (thread name / worker pid)
    worker_busy_s: Dict[str, float] = field(default_factory=dict)
    #: failure-kind value -> count, e.g. {"compile_error": 3}
    failure_kinds: Dict[str, int] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def busy_s(self) -> float:
        return sum(self.worker_busy_s.values())

    @property
    def worker_utilization(self) -> float:
        """Fraction of the pool's wall-clock capacity spent on work units."""
        if self.wall_s <= 0.0 or self.workers < 1:
            return 0.0
        return self.busy_s / (self.wall_s * self.workers)


# ---------------------------------------------------------------------------
# policies
# ---------------------------------------------------------------------------


class SerialEngine:
    """The original strictly-ordered in-process loop."""

    policy = "serial"

    def __init__(self, workers: int = 1):
        self.workers = 1  # serial by definition

    def run(self, templates: Sequence["TestTemplate"],
            runner: "ValidationRunner") -> EngineOutcomes:
        worker = "main"
        return [(runner.run_template(t), worker) for t in templates]


class ThreadEngine:
    """A thread pool sharing one runner (and its compile cache)."""

    policy = "thread"

    def __init__(self, workers: int):
        self.workers = workers

    def run(self, templates: Sequence["TestTemplate"],
            runner: "ValidationRunner") -> EngineOutcomes:
        if not templates:
            return []

        def unit(payload: Tuple[int, "TestTemplate"]):
            index, template = payload
            return index, runner.run_template(template), threading.current_thread().name

        with ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="harness"
        ) as pool:
            raw = list(pool.map(unit, enumerate(templates)))
        raw.sort(key=lambda item: item[0])
        return [(result, worker) for _, result, worker in raw]


# -- process-pool plumbing: one runner per worker process, built once -------

_WORKER_RUNNER: "ValidationRunner" = None


def _process_worker_init(behavior: "CompilerBehavior", config: HarnessConfig,
                         trace_profile: bool = None) -> None:
    """Pool initializer: build this worker's runner (own compile cache).

    ``trace_profile`` is None when the parent runs untraced; otherwise the
    worker gets its own :class:`repro.obs.Tracer` with that profile flag,
    drained back to the parent after every work unit.
    """
    global _WORKER_RUNNER
    from repro.harness.runner import ValidationRunner

    tracer = None
    if trace_profile is not None:
        from repro.obs import Tracer

        tracer = Tracer(profile=trace_profile)
    _WORKER_RUNNER = ValidationRunner(behavior, config, tracer=tracer)


def _process_run_unit(payload: Tuple[int, "TestTemplate"]):
    index, template = payload
    result = _WORKER_RUNNER.run_template(template)
    tracer = _WORKER_RUNNER.tracer
    trace_payload = tracer.drain() if tracer.enabled else None
    return index, result, f"pid-{os.getpid()}", trace_payload


class ProcessEngine:
    """A process pool; work units pickle ``(index, template)`` only and ship
    back a finished result plus (when tracing) the unit's trace payload."""

    policy = "process"

    def __init__(self, workers: int):
        self.workers = workers

    def run(self, templates: Sequence["TestTemplate"],
            runner: "ValidationRunner") -> EngineOutcomes:
        if not templates:
            return []
        tracer = runner.tracer
        payloads = list(enumerate(templates))
        chunksize = max(1, len(payloads) // (self.workers * 4))
        with ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_process_worker_init,
            initargs=(runner.behavior, runner.config,
                      tracer.profile if tracer.enabled else None),
        ) as pool:
            raw = list(pool.map(_process_run_unit, payloads, chunksize=chunksize))
        raw.sort(key=lambda item: item[0])
        # adopt worker traces in template order so event sequencing is
        # deterministic; run_suite re-parents the unit roots afterwards
        for _, _, worker, trace_payload in raw:
            if trace_payload is not None:
                tracer.adopt(trace_payload, worker=worker)
        return [(result, worker) for _, result, worker, _ in raw]


_ENGINES = {
    "serial": SerialEngine,
    "thread": ThreadEngine,
    "process": ProcessEngine,
}
assert set(_ENGINES) == set(EXECUTION_POLICIES)


def create_engine(policy: str, workers: int = 1):
    """Instantiate the engine for a config-validated policy name."""
    try:
        engine_cls = _ENGINES[policy]
    except KeyError:
        raise ValueError(
            f"unknown policy {policy!r}; expected one of "
            f"{', '.join(EXECUTION_POLICIES)}"
        ) from None
    return engine_cls(workers)


# ---------------------------------------------------------------------------
# metrics assembly
# ---------------------------------------------------------------------------


def build_metrics(
    report: "SuiteRunReport",
    policy: str,
    workers: int,
    outcomes: EngineOutcomes,
) -> RunMetrics:
    """Fold per-phase instrumentation into one :class:`RunMetrics`.

    Cache counters come from the per-phase ``cache_hit`` flags carried in
    the results, so they are exact under every policy — including process
    pools, where each worker holds a private cache whose own counters never
    leave the worker.
    """
    metrics = RunMetrics(policy=policy, workers=workers,
                         wall_s=report.elapsed_s, templates=len(report.results))
    for result, worker in outcomes:
        busy = metrics.worker_busy_s.setdefault(worker, 0.0)
        metrics.worker_busy_s[worker] = busy + result.elapsed_s
        for phase in (result.functional, result.cross):
            if phase is None:
                continue
            metrics.compile_s += phase.compile_s
            metrics.execute_s += phase.run_s
            metrics.iterations_run += len(phase.iterations)
            if phase.cache_hit:
                metrics.cache_hits += 1
            else:
                metrics.cache_misses += 1
    for kind, count in report.by_failure_kind().items():
        metrics.failure_kinds[kind.value] = count
    return metrics
