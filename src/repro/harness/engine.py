"""Execution engine: pluggable policies for suite runs.

``ValidationRunner.run_suite`` used to walk the template list strictly
serially, although the workload — compile, run M times, classify, next
template — is embarrassingly parallel.  This module supplies the paper's
"runs on random nodes / tracks large sweeps" scale-out shape as three
interchangeable policies behind ``HarnessConfig.policy``/``workers``:

* ``serial`` — the original in-order loop (the default);
* ``thread`` — a thread pool sharing one runner and one compile cache
  (useful for I/O-bound behaviours and as a determinism cross-check);
* ``process`` — a process pool: ``(behavior, config)`` are shipped to each
  worker once via the pool initializer, then work units carry only
  ``(index, template)`` and ship a finished :class:`TestResult` back.

Determinism guarantee: results are reassembled in template order, and every
per-iteration RNG seed derives from ``HarnessConfig`` alone (``rng_seed +
k``), never from scheduling — so serial and parallel runs of the same
configuration render byte-identical text/CSV/HTML reports.

Every run also assembles a :class:`RunMetrics` (attached to the report):
per-phase wall time, compile-cache hit rate, per-worker busy time and
failure-kind counters — the observability side of the scale-out work.

Resilience: every policy funnels work units through
:func:`run_unit_resilient` — bounded retry with exponential backoff for
harness faults (injected or real), degrading to a HARNESS_ERROR-marked
result once the budget is exhausted — and :class:`ProcessEngine`
additionally survives worker death by respawning its pool and re-running
only the lost units (serial fallback after :data:`MAX_POOL_DEATHS` broken
pools).  A healed run is byte-identical to a fault-free run of the same
configuration, because retries replay the same config-derived seeds.

Durability: every policy reports each finished unit through an optional
per-unit completion callback, invoked from the coordinating thread in
completion order — the hook :mod:`repro.journal` uses to append fsync'd
records the moment results exist.

Cancellation: every campaign owns a :class:`CancelToken`.  Cancelling it
makes the engines finish their in-flight units and raise
:class:`CampaignInterrupted` instead of starting new ones, so an
interrupted campaign exits with everything completed so far journaled.
Tokens are per-campaign state, so one campaign's cancel never drains a
concurrent neighbour and never poisons later runs in the same process —
the :mod:`repro.server` relies on this to cancel one client's campaign
while the rest keep running.  The legacy process-global drain API
(:func:`request_drain`/:func:`drain_requested`/:func:`reset_drain`) is
kept as a deprecated shim over a module-default token: ``request_drain``
additionally cancels every *active* campaign token, so the CLI's
SIGINT/SIGTERM path behaves exactly as before.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.harness.config import EXECUTION_POLICIES, HarnessConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.compiler import CompilerBehavior
    from repro.harness.runner import SuiteRunReport, TestResult, ValidationRunner
    from repro.templates import TestTemplate

#: ordered (TestResult, worker id) pairs, one per template
EngineOutcomes = List[Tuple["TestResult", str]]

#: per-unit completion callback: (index into the engine's template list,
#: template, finished result) — invoked by every policy from the
#: *coordinating* thread, in completion order, exactly once per unit.
#: This is the journal's hook: appends happen the moment a result exists.
UnitCallback = Callable[[int, "TestTemplate", "TestResult"], None]

#: broken process pools tolerated before ProcessEngine falls back to
#: running the remaining units serially in the parent
MAX_POOL_DEATHS = 3


# ---------------------------------------------------------------------------
# cancellation (graceful drain: finish in-flight units, then stop)
# ---------------------------------------------------------------------------


class CampaignInterrupted(RuntimeError):
    """A graceful drain was requested (cancel token / SIGINT/SIGTERM) and
    the engine stopped dispatching work.  Completed units were already
    handed to the completion callback (journaled); the campaign is
    resumable."""


class CancelToken:
    """A per-campaign cancellation handle.

    ``run_suite`` (and Titan) check the token between work units:
    cancelling makes the engines finish their in-flight units, skip the
    rest, and raise :class:`CampaignInterrupted`.  Each campaign gets its
    own token (``run_suite(cancel=...)``, defaulting to a fresh one), so
    cancelling one campaign never touches a concurrent neighbour and a
    finished/cancelled campaign never poisons the next run_suite call in
    the same process — the two historical bugs of the process-global
    ``_DRAIN`` event this class replaced.

    Thread-safe: ``cancel()`` may be called from any thread or from a
    signal handler (it only sets a :class:`threading.Event`).
    """

    __slots__ = ("_event", "_reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reason: Optional[str] = None

    def cancel(self, reason: Optional[str] = None) -> None:
        """Request a graceful drain of the campaign holding this token."""
        if reason is not None and self._reason is None:
            self._reason = reason
        self._event.set()

    def cancelled(self) -> bool:
        return self._event.is_set()

    def reset(self) -> None:
        """Re-arm the token (used by the deprecated ``reset_drain`` shim;
        fresh campaigns should just build a fresh token)."""
        self._event.clear()
        self._reason = None

    def check(self) -> None:
        """Raise :class:`CampaignInterrupted` if cancelled."""
        if self._event.is_set():
            raise CampaignInterrupted(
                self._reason
                or "graceful drain requested: in-flight units finished, "
                   "remaining units not started"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled() else "armed"
        return f"<CancelToken {state} at {id(self):#x}>"


#: tokens of campaigns currently inside an engine run; ``request_drain``
#: (the SIGINT/SIGTERM handler) cancels all of them.  A list, not a set:
#: Titan re-registers its token around every inner run_suite call.
_ACTIVE_TOKENS: List[CancelToken] = []
_ACTIVE_LOCK = threading.Lock()

#: the token behind the deprecated module-level drain API; the CLI's
#: reset_drain()/request_drain() signal path operates on this one
_DEFAULT_TOKEN = CancelToken()


class _TokenActivation:
    """Context manager registering a token as an active campaign."""

    __slots__ = ("_token",)

    def __init__(self, token: CancelToken) -> None:
        self._token = token

    def __enter__(self) -> CancelToken:
        with _ACTIVE_LOCK:
            _ACTIVE_TOKENS.append(self._token)
        return self._token

    def __exit__(self, *exc_info) -> None:
        with _ACTIVE_LOCK:
            try:
                _ACTIVE_TOKENS.remove(self._token)
            except ValueError:  # pragma: no cover - double-exit guard
                pass


def activate_token(token: CancelToken) -> _TokenActivation:
    """Register ``token`` as an active campaign for the duration of a
    ``with`` block, making it reachable from :func:`request_drain` (the
    CLI's SIGINT/SIGTERM handler)."""
    return _TokenActivation(token)


def request_drain(signum: Optional[int] = None, frame=None) -> None:
    """Deprecated shim: ask *every* active campaign to drain gracefully.

    Signature is signal-handler compatible, so the CLI installs it
    directly for SIGINT/SIGTERM — a console interrupt should stop
    everything in the process, which is exactly this shim's semantics.
    Library callers who want to cancel *one* campaign should pass a
    :class:`CancelToken` to ``run_suite(cancel=...)`` and cancel that
    instead.
    """
    reason = None
    if signum is not None:
        reason = (
            f"graceful drain requested (signal {signum}): in-flight units "
            "finished, remaining units not started"
        )
    _DEFAULT_TOKEN.cancel(reason)
    with _ACTIVE_LOCK:
        active = list(_ACTIVE_TOKENS)
    for token in active:
        token.cancel(reason)


def drain_requested() -> bool:
    """Deprecated shim: state of the module-default token only (it cannot
    see per-campaign tokens; ask your own token instead)."""
    return _DEFAULT_TOKEN.cancelled()


def reset_drain() -> None:
    """Deprecated shim: re-arm the module-default token."""
    _DEFAULT_TOKEN.reset()


@dataclass
class RunMetrics:
    """Observability counters for one suite run."""

    policy: str
    workers: int
    #: wall-clock time of the whole suite run
    wall_s: float = 0.0
    #: compile-phase time summed over all phases (cache lookups included)
    compile_s: float = 0.0
    #: execution time summed over all phases (all iterations)
    execute_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    templates: int = 0
    #: total program executions (functional + cross, all iterations)
    iterations_run: int = 0
    #: busy seconds per worker (thread name / worker pid)
    worker_busy_s: Dict[str, float] = field(default_factory=dict)
    #: failure-kind value -> count, e.g. {"compile_error": 3}
    failure_kinds: Dict[str, int] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def busy_s(self) -> float:
        return sum(self.worker_busy_s.values())

    @property
    def worker_utilization(self) -> float:
        """Fraction of the pool's wall-clock capacity spent on work units."""
        if self.wall_s <= 0.0 or self.workers < 1:
            return 0.0
        return self.busy_s / (self.wall_s * self.workers)


# ---------------------------------------------------------------------------
# the retry layer: every policy funnels work units through here
# ---------------------------------------------------------------------------


def harness_error_result(template: "TestTemplate",
                         error: Optional[BaseException]) -> "TestResult":
    """A TestResult marking a unit the *harness* failed to run.

    The suite keeps going: one HARNESS_ERROR row in the report instead of
    an aborted process, so a large campaign's bookkeeping survives
    infrastructure faults and triage can separate them from compiler bugs.
    """
    from repro.harness.runner import PhaseResult, TestResult

    detail = repr(error) if error is not None else "unknown harness fault"
    phase = PhaseResult(mode="functional", source="",
                        harness_error=f"harness gave up on this unit: {detail}")
    return TestResult(template=template, functional=phase)


def run_unit_resilient(runner: "ValidationRunner", template: "TestTemplate",
                       base_attempt: int = 0) -> "TestResult":
    """Run one work unit under the config's bounded retry budget.

    Any exception escaping ``run_template`` is a *harness* fault (test
    verdicts — wrong values, crashes, step-budget timeouts — are values,
    not exceptions): injected faults, internal compiler crashes, template
    wall-clock timeouts, or genuine harness bugs.  Each is retried with
    exponential backoff (``retry_backoff_s * 2**n`` via the runner's
    injectable sleeper) and, once the budget is exhausted, degraded to a
    HARNESS_ERROR-marked result.  Never raises — with one exception: when
    the campaign's :class:`CancelToken` (``runner.cancel``, set by
    run_suite for the run's duration) is cancelled between retry
    attempts, the unit gives up immediately with
    :class:`CampaignInterrupted` so a drain is not held up by a retry
    backoff ladder.

    ``base_attempt`` threads the engine-level attempt number (pool
    respawns) into the fault injector so transient injected faults do not
    re-fire on re-runs.
    """
    config = runner.config
    tracer = runner.tracer
    cancel = getattr(runner, "cancel", None)
    # live telemetry (repro.obs.live): set by run_suite in the coordinating
    # process for serial/thread runs; process-pool workers rebuild their
    # runner without it (sinks live only in the parent), so their retries
    # surface via the returned results, not live events
    live = getattr(runner, "live", None)
    unit_key = f"{template.feature}:{template.language}"
    error: Optional[BaseException] = None
    for n in range(config.retries + 1):
        attempt = base_attempt + n
        try:
            with runner.faults.attempt(unit_key, attempt):
                return runner.run_template(template)
        except Exception as err:
            error = err
            if n >= config.retries:
                break
            if cancel is not None:
                # a draining campaign must not sit out a backoff ladder;
                # the unit is simply not journaled and re-runs on resume
                cancel.check()
            if tracer.enabled:
                tracer.event("engine.retry", template=unit_key,
                             attempt=attempt, error=repr(err))
                tracer.metrics.counter("engine.retry").inc()
            if live is not None:
                live.event("engine.retry", template=unit_key,
                           attempt=attempt)
            backoff = config.retry_backoff_s * (2 ** n)
            if backoff > 0:
                runner.sleeper(backoff)
    if tracer.enabled:
        tracer.event("engine.harness_error", template=unit_key,
                     error=repr(error))
        tracer.metrics.counter("engine.harness_error").inc()
    if live is not None:
        live.event("engine.harness_error", template=unit_key)
    return harness_error_result(template, error)


# ---------------------------------------------------------------------------
# policies
# ---------------------------------------------------------------------------


class SerialEngine:
    """The original strictly-ordered in-process loop."""

    policy = "serial"

    def __init__(self, workers: int = 1):
        self.workers = 1  # serial by definition

    def run(self, templates: Sequence["TestTemplate"],
            runner: "ValidationRunner",
            on_complete: Optional[UnitCallback] = None,
            cancel: Optional[CancelToken] = None) -> EngineOutcomes:
        cancel = cancel if cancel is not None else CancelToken()
        worker = "main"
        outcomes: EngineOutcomes = []
        for index, template in enumerate(templates):
            cancel.check()
            result = run_unit_resilient(runner, template)
            outcomes.append((result, worker))
            if on_complete is not None:
                on_complete(index, template, result)
        return outcomes


class ThreadEngine:
    """A thread pool sharing one runner (and its compile cache)."""

    policy = "thread"

    def __init__(self, workers: int):
        self.workers = workers

    def run(self, templates: Sequence["TestTemplate"],
            runner: "ValidationRunner",
            on_complete: Optional[UnitCallback] = None,
            cancel: Optional[CancelToken] = None) -> EngineOutcomes:
        if not templates:
            return []
        cancel = cancel if cancel is not None else CancelToken()
        cancel.check()

        def unit(payload: Tuple[int, "TestTemplate"]):
            index, template = payload
            result = run_unit_resilient(runner, template)
            return index, result, threading.current_thread().name

        raw = []
        with ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="harness"
        ) as pool:
            futures = [pool.submit(unit, item) for item in enumerate(templates)]
            try:
                # completion order, in this (coordinating) thread: the
                # journal callback sees each result the moment it exists
                for future in as_completed(futures):
                    index, result, worker = future.result()
                    raw.append((index, result, worker))
                    if on_complete is not None:
                        on_complete(index, templates[index], result)
                    cancel.check()
            except BaseException:
                # drain or a callback failure (e.g. an injected journal
                # tear): drop queued units, let in-flight ones finish
                pool.shutdown(wait=True, cancel_futures=True)
                raise
        raw.sort(key=lambda item: item[0])
        return [(result, worker) for _, result, worker in raw]


# -- process-pool plumbing: one runner per worker process, built once -------

_WORKER_RUNNER: "ValidationRunner" = None


def _process_worker_init(behavior: "CompilerBehavior", config: HarnessConfig,
                         trace_profile: bool = None) -> None:
    """Pool initializer: build this worker's runner (own compile cache).

    ``trace_profile`` is None when the parent runs untraced; otherwise the
    worker gets its own :class:`repro.obs.Tracer` with that profile flag,
    drained back to the parent after every work unit.
    """
    global _WORKER_RUNNER
    from repro.harness.runner import ValidationRunner

    # the parent coordinates graceful drains (and Ctrl-C reaches the whole
    # foreground process group): workers ignore SIGINT so an interactive
    # interrupt cannot masquerade as a BrokenProcessPool worker death
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    tracer = None
    if trace_profile is not None:
        from repro.obs import Tracer

        tracer = Tracer(profile=trace_profile)
    _WORKER_RUNNER = ValidationRunner(behavior, config, tracer=tracer)


def _process_run_unit(payload: Tuple[int, "TestTemplate", int]):
    index, template, attempt = payload
    runner = _WORKER_RUNNER
    unit_key = f"{template.feature}:{template.language}"
    if runner.faults.worker_site(unit_key, attempt):
        # injected worker death: hard-exit so the parent sees exactly what
        # a crashed node/process looks like (BrokenProcessPool)
        os._exit(78)
    result = run_unit_resilient(runner, template, base_attempt=attempt)
    tracer = runner.tracer
    trace_payload = tracer.drain() if tracer.enabled else None
    return index, result, f"pid-{os.getpid()}", trace_payload


class ProcessEngine:
    """A process pool; work units pickle ``(index, template, attempt)`` only
    and ship back a finished result plus (when tracing) the unit's trace
    payload.

    Survives worker death: a broken pool is respawned and only the lost
    units are re-submitted (with a bumped attempt number, so injected
    transient deaths do not recur).  After :data:`MAX_POOL_DEATHS` broken
    pools the engine stops trusting process isolation and runs whatever is
    left serially in the parent — degraded throughput, never a crashed
    suite.
    """

    policy = "process"

    def __init__(self, workers: int):
        self.workers = workers

    def run(self, templates: Sequence["TestTemplate"],
            runner: "ValidationRunner",
            on_complete: Optional[UnitCallback] = None,
            cancel: Optional[CancelToken] = None) -> EngineOutcomes:
        if not templates:
            return []
        cancel = cancel if cancel is not None else CancelToken()
        cancel.check()
        tracer = runner.tracer
        initargs = (runner.behavior, runner.config,
                    tracer.profile if tracer.enabled else None)
        #: template index -> engine-level attempt number
        pending: Dict[int, int] = {i: 0 for i in range(len(templates))}
        done: Dict[int, Tuple["TestResult", str, Optional[dict]]] = {}
        pool_deaths = 0
        while pending and pool_deaths <= MAX_POOL_DEATHS:
            broken = False
            with ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_process_worker_init,
                initargs=initargs,
            ) as pool:
                futures = {
                    pool.submit(_process_run_unit,
                                (i, templates[i], attempt)): i
                    for i, attempt in sorted(pending.items())
                }
                try:
                    for future in as_completed(futures):
                        try:
                            index, result, worker, trace_payload = future.result()
                        except BrokenExecutor:
                            # a worker died; this unit (and every other unit
                            # still in flight or queued) was lost with the pool
                            broken = True
                            continue
                        except Exception as err:  # unpicklable result etc.
                            index = futures[future]
                            result, worker, trace_payload = (
                                harness_error_result(templates[index], err),
                                "pool", None,
                            )
                        done[index] = (result, worker, trace_payload)
                        pending.pop(index, None)
                        if on_complete is not None:
                            # results ship back to this (parent) process as
                            # they finish; the journal append happens here,
                            # before any more completions are awaited
                            on_complete(index, templates[index], result)
                        cancel.check()
                except BaseException:
                    pool.shutdown(wait=True, cancel_futures=True)
                    raise
            if broken:
                pool_deaths += 1
                if tracer.enabled:
                    tracer.event("engine.worker_lost",
                                 lost_units=len(pending),
                                 pool_deaths=pool_deaths)
                    tracer.metrics.counter("engine.worker_lost").inc()
                live = getattr(runner, "live", None)
                if live is not None:
                    live.event("engine.worker_lost",
                               lost_units=len(pending),
                               pool_deaths=pool_deaths)
                pending = {i: attempt + 1 for i, attempt in pending.items()}
        if pending and tracer.enabled:
            tracer.event("engine.serial_fallback", units=len(pending),
                         pool_deaths=pool_deaths)
        for i, attempt in sorted(pending.items()):
            # serial fallback: the pool kept dying, run the rest in-process
            cancel.check()
            result = run_unit_resilient(runner, templates[i],
                                        base_attempt=attempt)
            done[i] = (result, "fallback", None)
            if on_complete is not None:
                on_complete(i, templates[i], result)
        # adopt worker traces in template order so event sequencing is
        # deterministic; run_suite re-parents the unit roots afterwards
        for i in range(len(templates)):
            _, worker, trace_payload = done[i]
            if trace_payload is not None:
                tracer.adopt(trace_payload, worker=worker)
        return [(done[i][0], done[i][1]) for i in range(len(templates))]


_ENGINES = {
    "serial": SerialEngine,
    "thread": ThreadEngine,
    "process": ProcessEngine,
}
assert set(_ENGINES) == set(EXECUTION_POLICIES)


def create_engine(policy: str, workers: int = 1):
    """Instantiate the engine for a config-validated policy name."""
    try:
        engine_cls = _ENGINES[policy]
    except KeyError:
        raise ValueError(
            f"unknown policy {policy!r}; expected one of "
            f"{', '.join(EXECUTION_POLICIES)}"
        ) from None
    return engine_cls(workers)


# ---------------------------------------------------------------------------
# metrics assembly
# ---------------------------------------------------------------------------


def build_metrics(
    report: "SuiteRunReport",
    policy: str,
    workers: int,
    outcomes: EngineOutcomes,
) -> RunMetrics:
    """Fold per-phase instrumentation into one :class:`RunMetrics`.

    Cache counters come from the per-phase ``cache_hit`` flags carried in
    the results, so they are exact under every policy — including process
    pools, where each worker holds a private cache whose own counters never
    leave the worker.
    """
    metrics = RunMetrics(policy=policy, workers=workers,
                         wall_s=report.elapsed_s, templates=len(report.results))
    for result, worker in outcomes:
        busy = metrics.worker_busy_s.setdefault(worker, 0.0)
        metrics.worker_busy_s[worker] = busy + result.elapsed_s
        for phase in (result.functional, result.cross):
            if (
                phase is None
                or phase.harness_error is not None
                or phase.static_error is not None
            ):
                # the unit never reached the compiler: charging a cache
                # miss or phase timings would skew the real counters
                continue
            metrics.compile_s += phase.compile_s
            metrics.execute_s += phase.run_s
            metrics.iterations_run += len(phase.iterations)
            if phase.cache_hit:
                metrics.cache_hits += 1
            else:
                metrics.cache_misses += 1
    for kind, count in report.by_failure_kind().items():
        metrics.failure_kinds[kind.value] = count
    return metrics
