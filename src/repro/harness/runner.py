"""The validation runner: functional -> cross pipeline (Fig. 3).

For every template: generate the functional program, compile it with the
implementation under test, run it ``M`` times on fresh simulated machines,
and classify the outcome using the paper's error taxonomy (Section V):

* ``COMPILE_ERROR`` — "assertion violations or other internal compilation
  errors", e.g. an unsupported feature;
* ``WRONG_VALUE`` — the vicious silent class: the program runs but returns
  a failing status;
* ``RUNTIME_CRASH`` — a code crash (simulated runtime exception);
* ``TIMEOUT`` — "the code executes forever" (step budget exceeded).

If the functional test passes and the template defines cross markers, the
cross program runs next; ``nf`` incorrect cross runs out of ``M`` give the
certainty ``pc = 1 - (1 - nf/M)^M``.  A cross that unexpectedly matches the
functional result is *inconclusive* — per the paper it is reported (so the
test can be redesigned), not charged to the compiler.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.accsim.errors import AccRuntimeError, ExecutionTimeout
from repro.compiler import (
    CompileError,
    Compiler,
    CompilerBehavior,
    CompilerCrashError,
    ExecutionLimits,
)
from repro.compiler.cache import CompileCache
from repro.faults import FaultInjector, FaultyCompiler, NULL_INJECTOR
from repro.harness.config import HarnessConfig
from repro.harness.stats import certainty
from repro.obs import NULL_TRACER
from repro.suite.registry import SuiteRegistry
from repro.templates import TestTemplate, generate_cross, generate_functional


class FailureKind(Enum):
    COMPILE_ERROR = "compile_error"
    WRONG_VALUE = "wrong_value"
    RUNTIME_CRASH = "runtime_crash"
    TIMEOUT = "timeout"
    #: the harness (not the implementation under test) failed on this unit
    #: and exhausted its retry budget — infrastructure, not a compiler bug
    HARNESS_ERROR = "harness_error"
    #: the *template* failed static checking (``HarnessConfig.lint``): the
    #: test itself is ill-formed, so no compile/run verdict was produced —
    #: a corpus defect, never charged to the implementation under test
    STATIC_ERROR = "static_error"


class EmptySelectionError(ValueError):
    """A suite run selected zero templates.

    Mirrors the ``iterations=0`` guard: a run over nothing would print
    ``overall: 0.00% pass`` and exit cleanly, silently validating nothing.
    """


class TemplateTimeout(RuntimeError):
    """A template exceeded its wall-clock budget (``template_timeout_s``).

    Distinct from the interpreter step budget (the paper's "executes
    forever" TIMEOUT verdict): this is the *harness* giving up on a stalled
    unit, checked cooperatively between iterations, and is handled by the
    engine's retry layer rather than classified as a test result.
    """


@dataclass
class IterationOutcome:
    """One execution of one generated program."""

    ok: bool
    value: Optional[int] = None
    error: Optional[str] = None
    kind: Optional[FailureKind] = None
    steps: int = 0
    #: execution profile (zeros when the run died before finishing); never
    #: rendered in reports, surfaced via repro.obs when profiling is on
    bytes_to_device: int = 0
    bytes_to_host: int = 0
    queue_waits: int = 0
    queue_max_pending: int = 0


@dataclass
class PhaseResult:
    """All iterations of one phase (functional or cross)."""

    mode: str  # 'functional' | 'cross'
    source: str
    compile_error: Optional[str] = None
    iterations: List[IterationOutcome] = field(default_factory=list)
    #: set when the harness itself failed on this unit (retries exhausted);
    #: never the implementation's fault — see FailureKind.HARNESS_ERROR
    harness_error: Optional[str] = None
    #: set when the lint gate rejected the template before compilation; the
    #: summary of the static diagnostics — see FailureKind.STATIC_ERROR
    static_error: Optional[str] = None
    #: instrumentation (feeds engine.RunMetrics; never rendered in reports,
    #: so serial and parallel reports stay byte-identical)
    compile_s: float = 0.0
    run_s: float = 0.0
    cache_hit: bool = False
    #: lowering-cache outcome for the closures backend (None under the tree
    #: backend, which never lowers) — instrumentation like cache_hit
    lower_hit: Optional[bool] = None

    @property
    def incorrect_runs(self) -> int:
        if (
            self.compile_error is not None
            or self.harness_error is not None
            or self.static_error is not None
        ):
            return len(self.iterations) or 1
        return sum(1 for it in self.iterations if not it.ok)

    @property
    def all_correct(self) -> bool:
        return (
            self.compile_error is None
            and self.harness_error is None
            and self.static_error is None
            and all(it.ok for it in self.iterations)
        )

    def dominant_failure(self) -> Optional[FailureKind]:
        if self.static_error is not None:
            return FailureKind.STATIC_ERROR
        if self.harness_error is not None:
            return FailureKind.HARNESS_ERROR
        if self.compile_error is not None:
            return FailureKind.COMPILE_ERROR
        for it in self.iterations:
            if it.kind is not None:
                return it.kind
        return None

    def failure_detail(self) -> str:
        if self.static_error is not None:
            return self.static_error
        if self.harness_error is not None:
            return self.harness_error
        if self.compile_error is not None:
            return self.compile_error
        for it in self.iterations:
            if not it.ok:
                return it.error or f"returned {it.value}"
        return ""


@dataclass
class TestResult:
    """Verdict for one (feature, language) template."""

    template: TestTemplate
    functional: PhaseResult
    cross: Optional[PhaseResult] = None
    elapsed_s: float = 0.0

    @property
    def feature(self) -> str:
        return self.template.feature

    @property
    def language(self) -> str:
        return self.template.language

    @property
    def passed(self) -> bool:
        return self.functional.all_correct

    @property
    def failure_kind(self) -> Optional[FailureKind]:
        if self.passed:
            return None
        return self.functional.dominant_failure()

    @property
    def cross_conclusive(self) -> Optional[bool]:
        """True/False once a cross ran; None when no cross was executed."""
        if self.cross is None:
            return None
        return self.cross.incorrect_runs > 0

    @property
    def cross_inconclusive_unexpectedly(self) -> bool:
        """The paper's "directive does not take any effect" signal."""
        return (
            self.cross is not None
            and self.template.crossexpect == "different"
            and self.cross.incorrect_runs == 0
        )

    @property
    def certainty(self) -> float:
        """pc over the cross iterations (0 when no conclusive cross ran)."""
        if self.cross is None or not self.cross.iterations:
            if self.cross is not None and self.cross.compile_error is not None:
                return 1.0  # the cross variant cannot even compile
            return 0.0
        m = len(self.cross.iterations)
        return certainty(self.cross.incorrect_runs, m)


@dataclass
class SuiteRunReport:
    """All results of one suite run against one implementation."""

    compiler_label: str
    config: HarnessConfig
    results: List[TestResult] = field(default_factory=list)
    elapsed_s: float = 0.0
    #: filled by run_suite (see repro.harness.engine.RunMetrics)
    metrics: Optional["RunMetrics"] = None

    def for_language(self, language: str) -> List[TestResult]:
        return [r for r in self.results if r.language == language]

    def pass_rate(self, language: Optional[str] = None) -> float:
        pool = self.for_language(language) if language else self.results
        if not pool:
            return 0.0
        return 100.0 * sum(1 for r in pool if r.passed) / len(pool)

    def failures(self, language: Optional[str] = None) -> List[TestResult]:
        pool = self.for_language(language) if language else self.results
        return [r for r in pool if not r.passed]

    def failed_features(self, language: Optional[str] = None) -> List[str]:
        return [r.feature for r in self.failures(language)]

    def inconclusive_crosses(self) -> List[TestResult]:
        return [r for r in self.results if r.cross_inconclusive_unexpectedly]

    def by_failure_kind(self) -> Dict[FailureKind, int]:
        out: Dict[FailureKind, int] = {}
        for r in self.failures():
            kind = r.failure_kind
            if kind is not None:
                out[kind] = out.get(kind, 0) + 1
        return out


class ValidationRunner:
    """Runs templates against one simulated implementation."""

    def __init__(
        self,
        behavior: Optional[CompilerBehavior] = None,
        config: Optional[HarnessConfig] = None,
        cache: Optional[CompileCache] = None,
        tracer=None,
        live=None,
    ):
        self.compiler = Compiler(behavior) if behavior is not None else Compiler()
        self.config = config or HarnessConfig()
        if cache is None and self.config.compile_cache:
            cache = CompileCache()
        self.cache = cache
        #: a repro.obs.Tracer; the default NULL_TRACER records nothing
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: a repro.obs.live.LiveTelemetry pipeline, or None.  Deliberately
        #: NOT auto-built here from the config's live knobs: process-pool
        #: workers rebuild a runner from the same config, and sinks (stream
        #: files, .prom writers) must only ever be opened by the
        #: coordinating process — run_suite builds them when needed
        self.live = live
        #: the campaign's repro.harness.engine.CancelToken while run_suite
        #: is executing (the retry layer polls it between attempts); None
        #: otherwise.  Like ``live``, never auto-built here: process-pool
        #: workers rebuild a runner from the same config and their units
        #: are cancelled pool-wide by the coordinating parent instead
        self.cancel = None
        #: the retry layer's backoff sleep — injectable so tests are instant
        self.sleeper = time.sleep
        #: fault injector built from the config's plan (NULL_INJECTOR = off)
        plan = self.config.fault_plan
        if plan is not None and plan.active:
            self.faults = FaultInjector(plan)
            self.compiler = FaultyCompiler(self.compiler, self.faults)
        else:
            self.faults = NULL_INJECTOR

    @property
    def behavior(self) -> CompilerBehavior:
        return self.compiler.behavior

    # ------------------------------------------------------------ execution

    def run_template(self, template: TestTemplate) -> TestResult:
        tracer = self.tracer
        tkey = f"{template.feature}:{template.language}"
        timeout = self.config.template_timeout_s
        deadline = time.monotonic() + timeout if timeout is not None else None
        with tracer.span("template", key=tkey) as span:
            functional = None
            if self.config.lint:
                functional = self._lint_gate(template, tkey)
            if functional is None:
                functional = self._run_phase(template, "functional", tkey,
                                             deadline=deadline)
            cross: Optional[PhaseResult] = None
            if (
                self.config.run_cross
                and functional.all_correct
                and template.has_cross
            ):
                self._check_deadline(deadline, tkey)
                cross = self._run_phase(template, "cross", tkey,
                                        deadline=deadline)
            result = TestResult(
                template=template, functional=functional, cross=cross
            )
        result.elapsed_s = span.duration
        if tracer.enabled:
            kind = result.failure_kind
            span.set(
                feature=template.feature,
                language=template.language,
                passed=result.passed,
                certainty=result.certainty,
                failure_kind=kind.value if kind is not None else None,
            )
            tracer.metrics.counter("templates.run").inc()
            if kind is not None:
                tracer.metrics.counter(f"templates.failed.{kind.value}").inc()
        return result

    def run_suite(
        self,
        suite: SuiteRegistry,
        templates: Optional[Iterable[TestTemplate]] = None,
        journal=None,
        cancel=None,
        engine=None,
    ) -> SuiteRunReport:
        """Run the (selected) suite; see class docstring.

        ``journal`` is an optional :class:`repro.journal.JournalWriter`:
        units with an intact journal record are *replayed* (never re-run),
        and every freshly-run unit is appended — fsync'd — the moment its
        engine reports completion, making the campaign resumable after a
        crash at any instant.

        ``cancel`` is this campaign's
        :class:`repro.harness.engine.CancelToken`; cancelling it drains
        the run gracefully (:class:`CampaignInterrupted` after the
        in-flight units finish).  Defaults to a fresh token, so a cancel —
        or a process-wide ``request_drain`` — in an earlier or concurrent
        campaign never bleeds into this one.

        ``engine`` overrides the execution engine (anything honouring the
        ``run(templates, runner, on_complete=, cancel=)`` protocol, e.g. a
        :mod:`repro.sched` backend's); by default it is built from the
        config's ``policy``/``workers``.  Purely an execution knob:
        reports stay byte-identical across engines.
        """
        from repro.harness.engine import CancelToken, activate_token

        config = self.config
        cancel = cancel if cancel is not None else CancelToken()
        if templates is None:
            templates = suite.select(
                languages=config.languages,
                features=config.features,
                prefixes=config.feature_prefixes,
            )
        templates = list(templates)
        if not templates:
            raise EmptySelectionError(
                "suite selection matched no templates "
                f"(languages={list(config.languages)!r}, "
                f"features={config.features!r}, "
                f"prefixes={config.feature_prefixes!r}): a run over nothing "
                "would report a vacuous 0.00% pass and validate nothing"
            )
        from repro.harness.engine import build_metrics, create_engine

        if engine is None:
            engine = create_engine(config.policy, config.workers)
        report = SuiteRunReport(
            compiler_label=self.behavior.label, config=config
        )
        tracer = self.tracer

        # -- live telemetry: build the sink pipeline the config asks for.
        # Only here, never in __init__ — process-pool workers construct a
        # runner from this same config, and only the coordinating process
        # may open the stream/prom sinks.
        live = self.live
        owns_live = False
        if live is None and config.live_enabled:
            from repro.obs.live import LiveTelemetry

            live = LiveTelemetry.from_config(config)
            owns_live = live is not None

        # -- journal replay: partition into replayed and still-pending units
        replayed: Dict[int, TestResult] = {}
        on_complete = None
        keys: Optional[List[str]] = None
        if journal is not None or live is not None:
            from repro.journal import unit_keys

            keys = unit_keys(templates)
        if journal is not None:
            from repro.journal import decode_result, encode_result

            for i, (template, key) in enumerate(zip(templates, keys)):
                payload = journal.get(key)
                if payload is not None:
                    replayed[i] = decode_result(payload, template)
            if replayed and tracer.enabled:
                tracer.event("journal.replayed", units=len(replayed))
                tracer.metrics.counter("journal.replayed").inc(len(replayed))
            pending_keys = [keys[i] for i in range(len(templates))
                            if i not in replayed]

            def journal_complete(index, template, result):
                journal.append(pending_keys[index], encode_result(result))

            on_complete = journal_complete

        if live is not None:
            if live.began:
                live.extend_total(len(templates))
            else:
                live.begin(
                    total_units=len(templates), replayed=len(replayed),
                    compiler=self.behavior.label,
                    policy=config.policy, workers=config.workers,
                    backend=config.backend,
                )
            # replayed units count toward progress immediately, marked so
            for i in sorted(replayed):
                live.unit(i, keys[i], replayed[i],
                          backend=config.backend, replayed=True)
            pending_indices = [i for i in range(len(templates))
                               if i not in replayed]
            journal_cb = on_complete

            def live_complete(index, template, result):
                if journal_cb is not None:
                    # journal first: durability before observation, so a
                    # torn journal append never loses the fsync'd record
                    journal_cb(index, template, result)
                i = pending_indices[index]
                live.unit(i, keys[i], result,
                          backend=config.backend, replayed=False)

            on_complete = live_complete

        pending = [templates[i] for i in range(len(templates))
                   if i not in replayed]
        # expose the live pipeline and the cancel token to the retry layer
        # for the duration of the run (engine.retry / engine.worker_lost
        # events; prompt drain out of a backoff ladder)
        self.live = live
        previous_cancel = self.cancel
        self.cancel = cancel
        try:
            # while the engine runs, the token is an *active* campaign:
            # request_drain (the CLI's SIGINT/SIGTERM handler) reaches it
            with activate_token(cancel), tracer.span(
                "run", key=self.behavior.label,
                policy=engine.policy, workers=engine.workers,
            ) as root:
                start = time.perf_counter()
                outcomes = engine.run(pending, self, on_complete=on_complete,
                                      cancel=cancel)
                report.elapsed_s = time.perf_counter() - start
        except BaseException:
            # interrupted (drain, injected tear, Ctrl-C): finalize the
            # sinks with a non-report final snapshot so the stream is
            # readable and the .prom file reflects the last known state
            if owns_live and live is not None:
                live.end(None)
            raise
        finally:
            self.cancel = previous_cancel
            if owns_live:
                self.live = None
        # spans recorded off the main thread (thread pools) or adopted from
        # worker processes have no parent: stitch them under this run's root
        tracer.reparent_orphans(root)
        if replayed:
            # merge back in template order; replayed units are attributed
            # to the "journal" pseudo-worker in the run metrics
            merged: List[Tuple[TestResult, str]] = []
            fresh = iter(outcomes)
            for i in range(len(templates)):
                if i in replayed:
                    merged.append((replayed[i], "journal"))
                else:
                    merged.append(next(fresh))
            outcomes = merged
        report.results = [result for result, _ in outcomes]
        report.metrics = build_metrics(
            report, engine.policy, engine.workers, outcomes
        )
        if owns_live and live is not None:
            # the final snapshot embeds the authoritative RunMetrics block:
            # integer tallies folded from the stream reconcile exactly, and
            # readers take the float timings from here (float summation
            # order varies across completion orders)
            live.end(report)
        if tracer.enabled:
            root.set(templates=len(report.results),
                     pass_rate=report.pass_rate())
            metrics = tracer.metrics
            metrics.gauge("run.wall_s").set(report.metrics.wall_s)
            metrics.gauge("run.cache_hit_rate").set(
                report.metrics.cache_hit_rate
            )
            metrics.gauge("run.worker_utilization").set(
                report.metrics.worker_utilization
            )
        return report

    # -------------------------------------------------------------- internals

    def _lint_gate(self, template: TestTemplate,
                   tkey: str) -> Optional[PhaseResult]:
        """Static pre-compile gate (``HarnessConfig.lint``).

        Returns a STATIC_ERROR phase when the template fails static
        checking — the unit is charged to the *corpus*, never to the
        implementation under test — or None when it is clean and the normal
        functional phase should run.  Diagnostics are deterministically
        ordered, so reports stay byte-identical across execution policies.
        """
        from repro.staticcheck import errors_only, lint_template, summarize

        tracer = self.tracer
        with tracer.span("lint", key=tkey) as span:
            diags = errors_only(lint_template(template))
            if tracer.enabled:
                span.set(diagnostics=len(diags))
                tracer.metrics.counter("lint.checked").inc()
                for d in diags:
                    tracer.metrics.counter(f"lint.diagnostic.{d.code}").inc()
        if not diags:
            return None
        if tracer.enabled:
            tracer.event(
                "lint.failed", template=tkey,
                codes=sorted({d.code for d in diags}),
            )
        try:
            source = generate_functional(template).source
        except Exception:  # the template may not even generate
            source = ""
        return PhaseResult(
            mode="functional", source=source,
            static_error=summarize(diags),
        )

    def _run_phase(self, template: TestTemplate, mode: str,
                   tkey: Optional[str] = None,
                   deadline: Optional[float] = None) -> PhaseResult:
        if mode == "functional":
            generated = generate_functional(template)
        else:
            generated = generate_cross(template)
        phase = PhaseResult(mode=mode, source=generated.source)
        tracer = self.tracer
        pkey = f"{tkey or template.feature}:{mode}"
        # the spans are the timers: compile_s/run_s are copied from the span
        # durations, so a recorded trace reconciles with RunMetrics exactly
        with tracer.span("phase", key=pkey, mode=mode):
            compiled = None
            with tracer.span("compile", key=pkey) as compile_span:
                if self.cache is not None:
                    outcome = self.cache.get_or_compile(
                        self.compiler, generated.source, template.language,
                        template.name,
                        tracer=tracer if tracer.enabled else None,
                    )
                    phase.cache_hit = outcome.hit
                    if isinstance(outcome.error, CompilerCrashError):
                        # infrastructure fault, not a diagnostic: escalate
                        # to the engine's retry layer instead of charging
                        # the implementation with a COMPILE_ERROR verdict
                        raise outcome.error
                    if outcome.error is not None:
                        phase.compile_error = str(outcome.error)
                    else:
                        compiled = outcome.program
                else:
                    try:
                        compiled = self.compiler.compile(
                            generated.source, template.language, template.name
                        )
                    except CompileError as err:
                        phase.compile_error = str(err)
            phase.compile_s = compile_span.duration
            if tracer.enabled:
                compile_span.set(cache_hit=phase.cache_hit,
                                 error=phase.compile_error)
            if phase.compile_error is not None:
                return phase
            limits = ExecutionLimits(max_steps=self.config.max_steps)
            env_vars = template.environment or None
            # batch per-iteration setup: the runner shares the lowered
            # program and machine profile across the phase's M iterations
            # (each iteration still executes on a fresh machine)
            runner = compiled.runner(
                backend=self.config.backend,
                tracer=tracer if tracer.enabled else None,
                name=template.name,
            )
            phase.lower_hit = runner.lower_hit
            with tracer.span("execute", key=pkey) as execute_span:
                for k, seed in enumerate(self.config.iteration_seeds()):
                    self.faults.iteration_site(f"{pkey}:{k}")
                    outcome = self._run_once(runner, env_vars, limits, seed)
                    phase.iterations.append(outcome)
                    if tracer.enabled:
                        self._observe_iteration(pkey, seed, outcome)
                    self._check_deadline(deadline, pkey)
            phase.run_s = execute_span.duration
            if tracer.enabled:
                execute_span.set(iterations=len(phase.iterations),
                                 incorrect=phase.incorrect_runs)
                if tracer.profile:
                    its = phase.iterations
                    execute_span.set(
                        steps=sum(it.steps for it in its),
                        bytes_to_device=sum(it.bytes_to_device for it in its),
                        bytes_to_host=sum(it.bytes_to_host for it in its),
                        queue_waits=sum(it.queue_waits for it in its),
                    )
        return phase

    @staticmethod
    def _check_deadline(deadline: Optional[float], key: str) -> None:
        """Cooperative wall-clock budget check (between iterations/phases).

        In-process execution cannot be preempted, so a stalled iteration is
        detected once it returns; a dead worker process is the engine's
        problem (pool respawn), not this check's.
        """
        if deadline is not None and time.monotonic() > deadline:
            raise TemplateTimeout(
                f"template {key} exceeded its wall-clock budget"
            )

    def _observe_iteration(self, pkey: str, seed: int,
                           outcome: IterationOutcome) -> None:
        """Record one iteration into the (enabled) tracer."""
        metrics = self.tracer.metrics
        metrics.counter("iterations.run").inc()
        metrics.histogram("iteration.steps").observe(outcome.steps)
        if not outcome.ok:
            metrics.counter("iterations.failed").inc()
            self.tracer.event(
                "iteration.failed", template=pkey, seed=seed,
                kind=outcome.kind.value if outcome.kind is not None else None,
            )
        if self.tracer.profile:
            metrics.histogram("profile.bytes_to_device").observe(
                outcome.bytes_to_device)
            metrics.histogram("profile.bytes_to_host").observe(
                outcome.bytes_to_host)
            metrics.histogram("profile.queue_max_pending").observe(
                outcome.queue_max_pending)
            metrics.counter("profile.queue_waits").inc(outcome.queue_waits)

    @staticmethod
    def _run_once(runnable, env_vars, limits, seed) -> IterationOutcome:
        try:
            result = runnable.run(env_vars=env_vars, limits=limits, rng_seed=seed)
        except ExecutionTimeout as err:
            return IterationOutcome(
                ok=False, error=str(err), kind=FailureKind.TIMEOUT
            )
        except AccRuntimeError as err:
            return IterationOutcome(
                ok=False, error=str(err), kind=FailureKind.RUNTIME_CRASH
            )
        ok = result.value == 1
        return IterationOutcome(
            ok=ok,
            value=result.value,
            kind=None if ok else FailureKind.WRONG_VALUE,
            steps=result.steps,
            bytes_to_device=result.bytes_to_device,
            bytes_to_host=result.bytes_to_host,
            queue_waits=result.queue_waits,
            queue_max_pending=result.queue_max_pending,
        )
