"""Harness configuration (Section III: "Compiler configuration" and
"Feature selection")."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.compiler.interp import BACKENDS as INTERPRETER_BACKENDS
from repro.faults import FaultPlan

#: execution policies understood by :mod:`repro.harness.engine`
EXECUTION_POLICIES = ("serial", "thread", "process")


@dataclass
class HarnessConfig:
    """Knobs for a validation run.

    ``iterations`` is the paper's M: every test is repeated and the cross
    results feed the certainty statistic pc = 1 - (1 - nf/M)^M.

    ``workers``/``policy`` select the execution engine: ``serial`` runs
    templates in order in-process, ``thread``/``process`` fan the suite out
    over a pool.  All policies produce identical reports for the same
    configuration (template order and per-iteration seeds are derived from
    the config, never from scheduling).
    """

    iterations: int = 3
    #: interpreter step budget per run; exceeding it is classified as the
    #: paper's "executes forever" runtime error
    max_steps: int = 2_000_000
    #: languages to exercise (both by default, as in the paper)
    languages: Sequence[str] = ("c", "fortran")
    #: restrict to these dotted feature ids (None = all)
    features: Optional[Sequence[str]] = None
    #: restrict to features under these prefixes, e.g. ["parallel", "loop"]
    feature_prefixes: Optional[Sequence[str]] = None
    #: run cross tests (disabling them is the ablation of the cross-test
    #: methodology benchmark)
    run_cross: bool = True
    #: base RNG seed; iteration k runs with seed base+k so repeated runs are
    #: reproducible yet not identical
    rng_seed: int = 20140519
    #: execution policy: 'serial' | 'thread' | 'process'
    policy: str = "serial"
    #: pool size for the thread/process policies (ignored by 'serial')
    workers: int = 1
    #: memoise compiles across phases/runs (see repro.compiler.cache)
    compile_cache: bool = True
    #: bounded retry budget per work unit: a template whose run dies on a
    #: harness fault (injected or real) is re-run up to this many times
    #: before it degrades to a HARNESS_ERROR-marked result
    retries: int = 0
    #: base backoff between retries of one unit (doubles per attempt; the
    #: runner's sleeper is injectable so tests are instant)
    retry_backoff_s: float = 0.05
    #: per-template wall-clock budget in seconds (None = unbounded) —
    #: distinct from max_steps, which bounds interpreter work, not time
    template_timeout_s: Optional[float] = None
    #: deterministic fault-injection plan (see repro.faults); None = no
    #: faults
    fault_plan: Optional[FaultPlan] = None
    #: opt-in static pre-compile gate: run repro.staticcheck over each
    #: template first, and mark units with error diagnostics STATIC_ERROR
    #: (a corpus defect) instead of compiling/running them
    lint: bool = False
    #: interpreter backend: 'tree' (the reference walker) or 'closures'
    #: (repro.compiler.closures).  Purely an execution knob — both backends
    #: produce byte-identical reports for the same configuration
    backend: str = "tree"
    #: live telemetry (repro.obs.live): append a repro.obs.live/v1 NDJSON
    #: stream of unit events and campaign snapshots to this file.  Pure
    #: observation — reports stay byte-identical with it on or off
    live_stream: Optional[str] = None
    #: live telemetry: repaint a TTY status line (stderr) on each snapshot
    status: bool = False
    #: live telemetry: atomically rewrite a Prometheus textfile-exporter
    #: .prom file on each snapshot
    prom: Optional[str] = None

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError(
                f"iterations must be >= 1 (got {self.iterations}): with zero "
                "iterations every phase is vacuously 'all correct' and any "
                "compiler passes with certainty 0"
            )
        if self.max_steps < 1:
            raise ValueError(f"max_steps must be >= 1 (got {self.max_steps})")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1 (got {self.workers})")
        if self.policy not in EXECUTION_POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; "
                f"expected one of {', '.join(EXECUTION_POLICIES)}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0 (got {self.retries})")
        if self.retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0 (got {self.retry_backoff_s})"
            )
        if self.template_timeout_s is not None and self.template_timeout_s <= 0:
            raise ValueError(
                "template_timeout_s must be > 0 when set "
                f"(got {self.template_timeout_s})"
            )
        if self.backend not in INTERPRETER_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"expected one of {', '.join(INTERPRETER_BACKENDS)}"
            )
        for knob in ("live_stream", "prom"):
            value = getattr(self, knob)
            if value is not None and not str(value).strip():
                raise ValueError(f"{knob} must be a non-empty path when set")

    @property
    def live_enabled(self) -> bool:
        """True when any live-telemetry sink is configured."""
        return bool(self.live_stream or self.status or self.prom)

    def iteration_seeds(self):
        return [self.rng_seed + k for k in range(self.iterations)]

    # ------------------------------------------------------- wire round trip

    def to_dict(self) -> dict:
        """A JSON-safe dict round-trippable through :meth:`from_dict`.

        The :mod:`repro.server` wire format: campaign submissions carry
        their config this way, and the server journal stores it so a
        restarted server rebuilds the exact same campaign key.
        """
        from dataclasses import asdict

        data = asdict(self)
        data["languages"] = list(self.languages)
        for knob in ("features", "feature_prefixes"):
            value = getattr(self, knob)
            data[knob] = list(value) if value is not None else None
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "HarnessConfig":
        """Rebuild a config from :meth:`to_dict` output (or a hand-written
        submission dict; ``fault_plan`` also accepts a CLI spec string
        like ``'worker=0.5,seed=7'``).  Unknown keys are rejected — a
        typo'd submission must fail loudly, not run a default campaign.
        """
        from dataclasses import fields as dc_fields

        known = {f.name for f in dc_fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown config key(s): {', '.join(unknown)}; "
                f"expected a subset of: {', '.join(sorted(known))}"
            )
        kwargs = dict(data)
        plan = kwargs.get("fault_plan")
        if isinstance(plan, str):
            kwargs["fault_plan"] = FaultPlan.parse(plan)
        elif isinstance(plan, dict):
            kwargs["fault_plan"] = FaultPlan(**plan)
        for knob in ("languages", "features", "feature_prefixes"):
            value = kwargs.get(knob)
            if isinstance(value, list):
                kwargs[knob] = tuple(value)
        return cls(**kwargs)
