"""Harness configuration (Section III: "Compiler configuration" and
"Feature selection")."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence


@dataclass
class HarnessConfig:
    """Knobs for a validation run.

    ``iterations`` is the paper's M: every test is repeated and the cross
    results feed the certainty statistic pc = 1 - (1 - nf/M)^M.
    """

    iterations: int = 3
    #: interpreter step budget per run; exceeding it is classified as the
    #: paper's "executes forever" runtime error
    max_steps: int = 2_000_000
    #: languages to exercise (both by default, as in the paper)
    languages: Sequence[str] = ("c", "fortran")
    #: restrict to these dotted feature ids (None = all)
    features: Optional[Sequence[str]] = None
    #: restrict to features under these prefixes, e.g. ["parallel", "loop"]
    feature_prefixes: Optional[Sequence[str]] = None
    #: run cross tests (disabling them is the ablation of the cross-test
    #: methodology benchmark)
    run_cross: bool = True
    #: base RNG seed; iteration k runs with seed base+k so repeated runs are
    #: reproducible yet not identical
    rng_seed: int = 20140519

    def iteration_seeds(self):
        return [self.rng_seed + k for k in range(self.iterations)]
