"""Production-use simulation (paper Section VII, Fig. 13).

"The OpenACC validation suite is being used to validate the functionality
of the programming environment of Titan ... to track functionality
improvements or degradation over time.  The suite runs on random nodes to
check functionality requirements of the nodes.  It is also used to test
different software stacks, for example, to test the translation of OpenACC
to CUDA or OpenCL."

The cluster model: nodes carry one compiler behaviour per software stack
(OpenACC->CUDA and OpenACC->OpenCL); a fraction of nodes are *degraded*
(their stack behaves like a buggy compiler — the observable of a flaky GPU
or broken driver at the validation-suite level).  The harness samples
random nodes, validates each stack with a (configurable subset of the)
suite, and tracks per-epoch aggregate pass rates across software-stack
upgrades.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.compiler import CompilerBehavior
from repro.harness.config import HarnessConfig
from repro.harness.runner import SuiteRunReport, ValidationRunner
from repro.obs import NULL_TRACER
from repro.spec.devices import ACC_DEVICE_NVIDIA, ACC_DEVICE_OPENCL
from repro.suite.registry import SuiteRegistry

#: the two software stacks of Fig. 13
STACK_CUDA = "openacc-cuda"
STACK_OPENCL = "openacc-opencl"


def default_stacks() -> Dict[str, CompilerBehavior]:
    """A healthy node's stacks: both conforming, different back-end types."""
    return {
        STACK_CUDA: CompilerBehavior(
            name="titan-cc", version="cuda",
            concrete_device_type=ACC_DEVICE_NVIDIA,
            mapping_description="gang->block, worker->warp, vector->threads",
        ),
        STACK_OPENCL: CompilerBehavior(
            name="titan-cc", version="opencl",
            concrete_device_type=ACC_DEVICE_OPENCL,
            mapping_description="gang->workgroup, worker->subgroup, vector->workitems",
        ),
    }


def default_degradation(behavior: CompilerBehavior, node_id: int) -> CompilerBehavior:
    """Deterministic per-node fault models for degraded nodes.

    Rotates through the silent-failure classes a flaky node surfaces at the
    validation-suite level.
    """
    faults = [
        dict(ignore_update=True),
        dict(async_wedged_by_compute_data_clauses=True),
        dict(copyout_not_copied=True),
        dict(broken_reductions=frozenset({"+", "*"})),
    ]
    return behavior.with_(**faults[node_id % len(faults)])


@dataclass
class Node:
    node_id: int
    stacks: Dict[str, CompilerBehavior]
    healthy: bool = True


@dataclass
class StackCheck:
    """Result of validating one stack on one node."""

    node_id: int
    stack: str
    healthy: bool
    report: SuiteRunReport

    @property
    def pass_rate(self) -> float:
        return self.report.pass_rate()

    @property
    def flagged(self) -> bool:
        """Would the production harness flag this node/stack?"""
        return bool(self.report.failures())


class TitanCluster:
    """A set of nodes, some degraded, each carrying both software stacks."""

    def __init__(
        self,
        num_nodes: int = 16,
        degraded_fraction: float = 0.25,
        seed: int = 2012,
        stacks_factory: Callable[[], Dict[str, CompilerBehavior]] = default_stacks,
        degrade: Callable[[CompilerBehavior, int], CompilerBehavior] = default_degradation,
    ):
        rng = random.Random(seed)
        self.nodes: List[Node] = []
        n_degraded = round(num_nodes * degraded_fraction)
        degraded_ids = set(rng.sample(range(num_nodes), n_degraded))
        for node_id in range(num_nodes):
            stacks = stacks_factory()
            healthy = node_id not in degraded_ids
            if not healthy:
                stacks = {
                    name: degrade(behavior, node_id)
                    for name, behavior in stacks.items()
                }
            self.nodes.append(Node(node_id=node_id, stacks=stacks, healthy=healthy))

    def upgrade_stack(self, stack: str, new_behavior: CompilerBehavior) -> None:
        """Roll a new compiler version onto every *healthy* node's stack
        (degraded nodes keep their faults on top of the new version)."""
        for node in self.nodes:
            if node.healthy:
                node.stacks[stack] = new_behavior
            else:
                node.stacks[stack] = default_degradation(new_behavior, node.node_id)


class TitanHarness:
    """Random-node validation sweeps and longitudinal tracking."""

    def __init__(
        self,
        cluster: TitanCluster,
        suite: SuiteRegistry,
        config: Optional[HarnessConfig] = None,
        feature_prefixes: Optional[Sequence[str]] = None,
        tracer=None,
    ):
        self.cluster = cluster
        self.suite = suite
        # production sweeps favour quick turnaround: 1 iteration, no cross
        self.config = config or HarnessConfig(iterations=1, run_cross=False)
        if feature_prefixes is not None:
            self.config.feature_prefixes = feature_prefixes
        #: a repro.obs.Tracer shared by every node check of this harness
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def check_node(self, node: Node, stack: str) -> StackCheck:
        runner = ValidationRunner(node.stacks[stack], self.config,
                                  tracer=self.tracer)
        report = runner.run_suite(self.suite)
        check = StackCheck(
            node_id=node.node_id, stack=stack, healthy=node.healthy,
            report=report,
        )
        if self.tracer.enabled:
            self.tracer.metrics.counter("titan.checks").inc()
            if check.flagged:
                self.tracer.metrics.counter("titan.flagged").inc()
                self.tracer.event(
                    "titan.node_flagged", node=node.node_id, stack=stack,
                    healthy=node.healthy, pass_rate=check.pass_rate,
                )
        return check

    def sweep(self, sample_size: int, seed: int = 0,
              stacks: Sequence[str] = (STACK_CUDA, STACK_OPENCL)) -> List[StackCheck]:
        """Validate a random node sample across the given stacks."""
        rng = random.Random(seed)
        sample = rng.sample(self.cluster.nodes, min(sample_size, len(self.cluster.nodes)))
        checks: List[StackCheck] = []
        with self.tracer.span("titan.sweep", key=f"seed={seed}",
                              sample=len(sample)) as span:
            for node in sample:
                for stack in stacks:
                    with self.tracer.span(
                        "titan.check", key=f"node{node.node_id}:{stack}",
                        healthy=node.healthy,
                    ):
                        checks.append(self.check_node(node, stack))
        span.set(checks=len(checks),
                 flagged=sum(1 for c in checks if c.flagged))
        return checks

    def timeline(
        self,
        epochs: int,
        sample_size: int = 4,
        upgrades: Optional[Dict[int, Tuple[str, CompilerBehavior]]] = None,
        seed: int = 0,
    ) -> List[Dict[str, float]]:
        """Per-epoch aggregate pass rates per stack (functionality tracking).

        ``upgrades`` maps an epoch index to a (stack, behaviour) rollout
        applied before that epoch's sweep — regressions and fixes in the
        rolled-out compiler show up as rate changes.
        """
        records: List[Dict[str, float]] = []
        for epoch in range(epochs):
            if upgrades and epoch in upgrades:
                stack, behavior = upgrades[epoch]
                self.cluster.upgrade_stack(stack, behavior)
            checks = self.sweep(sample_size, seed=seed + epoch)
            record: Dict[str, float] = {"epoch": float(epoch)}
            for stack in (STACK_CUDA, STACK_OPENCL):
                pool = [c for c in checks if c.stack == stack]
                if pool:
                    record[stack] = sum(c.pass_rate for c in pool) / len(pool)
                record[f"{stack}:flagged"] = float(
                    sum(1 for c in pool if c.flagged)
                )
            records.append(record)
        return records
