"""Production-use simulation (paper Section VII, Fig. 13).

"The OpenACC validation suite is being used to validate the functionality
of the programming environment of Titan ... to track functionality
improvements or degradation over time.  The suite runs on random nodes to
check functionality requirements of the nodes.  It is also used to test
different software stacks, for example, to test the translation of OpenACC
to CUDA or OpenCL."

The cluster model: nodes carry one compiler behaviour per software stack
(OpenACC->CUDA and OpenACC->OpenCL); a fraction of nodes are *degraded*
(their stack behaves like a buggy compiler — the observable of a flaky GPU
or broken driver at the validation-suite level).  The harness samples
random nodes, validates each stack with a (configurable subset of the)
suite, and tracks per-epoch aggregate pass rates across software-stack
upgrades.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.compiler import CompilerBehavior
from repro.harness.config import HarnessConfig
from repro.harness.engine import CancelToken, activate_token
from repro.harness.runner import FailureKind, SuiteRunReport, ValidationRunner
from repro.obs import NULL_TRACER
from repro.spec.devices import ACC_DEVICE_NVIDIA, ACC_DEVICE_OPENCL
from repro.suite.registry import SuiteRegistry

#: the two software stacks of Fig. 13
STACK_CUDA = "openacc-cuda"
STACK_OPENCL = "openacc-opencl"


def default_stacks() -> Dict[str, CompilerBehavior]:
    """A healthy node's stacks: both conforming, different back-end types."""
    return {
        STACK_CUDA: CompilerBehavior(
            name="titan-cc", version="cuda",
            concrete_device_type=ACC_DEVICE_NVIDIA,
            mapping_description="gang->block, worker->warp, vector->threads",
        ),
        STACK_OPENCL: CompilerBehavior(
            name="titan-cc", version="opencl",
            concrete_device_type=ACC_DEVICE_OPENCL,
            mapping_description="gang->workgroup, worker->subgroup, vector->workitems",
        ),
    }


def default_degradation(behavior: CompilerBehavior, node_id: int) -> CompilerBehavior:
    """Deterministic per-node fault models for degraded nodes.

    Rotates through the silent-failure classes a flaky node surfaces at the
    validation-suite level.
    """
    faults = [
        dict(ignore_update=True),
        dict(async_wedged_by_compute_data_clauses=True),
        dict(copyout_not_copied=True),
        dict(broken_reductions=frozenset({"+", "*"})),
    ]
    return behavior.with_(**faults[node_id % len(faults)])


@dataclass
class Node:
    node_id: int
    stacks: Dict[str, CompilerBehavior]
    healthy: bool = True


@dataclass
class StackCheck:
    """Result of validating one stack on one node."""

    node_id: int
    stack: str
    healthy: bool
    report: SuiteRunReport

    @property
    def pass_rate(self) -> float:
        return self.report.pass_rate()

    @property
    def flagged(self) -> bool:
        """Would the production harness flag this node/stack?"""
        return bool(self.report.failures())

    @property
    def harness_errors(self) -> int:
        """Failures charged to the harness itself (infrastructure), not the
        stack under test — the triage axis the quarantine logic cares
        about when fault injection or real flakiness is in play."""
        return sum(
            1 for r in self.report.results
            if r.failure_kind is FailureKind.HARNESS_ERROR
        )


class TitanCluster:
    """A set of nodes, some degraded, each carrying both software stacks."""

    def __init__(
        self,
        num_nodes: int = 16,
        degraded_fraction: float = 0.25,
        seed: int = 2012,
        stacks_factory: Callable[[], Dict[str, CompilerBehavior]] = default_stacks,
        degrade: Callable[[CompilerBehavior, int], CompilerBehavior] = default_degradation,
    ):
        rng = random.Random(seed)
        self.nodes: List[Node] = []
        self._stacks_factory = stacks_factory
        # ceil, not round: banker's rounding made e.g. 2 nodes at fraction
        # 0.25 produce *zero* degraded nodes — any nonzero fraction must
        # degrade at least one node.  (round(x, 9) first kills float fuzz
        # like 30 * 0.1 == 3.0000000000000004 before the ceil.)
        n_degraded = min(
            num_nodes, math.ceil(round(num_nodes * degraded_fraction, 9))
        )
        degraded_ids = set(rng.sample(range(num_nodes), n_degraded))
        for node_id in range(num_nodes):
            stacks = stacks_factory()
            healthy = node_id not in degraded_ids
            if not healthy:
                stacks = {
                    name: degrade(behavior, node_id)
                    for name, behavior in stacks.items()
                }
            self.nodes.append(Node(node_id=node_id, stacks=stacks, healthy=healthy))

    def upgrade_stack(self, stack: str, new_behavior: CompilerBehavior) -> None:
        """Roll a new compiler version onto every *healthy* node's stack
        (degraded nodes keep their faults on top of the new version)."""
        for node in self.nodes:
            if node.healthy:
                node.stacks[stack] = new_behavior
            else:
                node.stacks[stack] = default_degradation(new_behavior, node.node_id)

    def heal(self, node_id: int) -> None:
        """Repair a degraded node (hardware swap / driver fix): it comes
        back healthy with factory-default stacks, so a subsequent recovery
        probe can release it from quarantine."""
        node = self.nodes[node_id]
        node.healthy = True
        node.stacks = self._stacks_factory()


@dataclass
class QuarantineRecord:
    """One quarantined node: what flagged it and how often it was probed."""

    node_id: int
    stack: str
    detail: str
    #: recovery probes run so far (timeline epochs)
    probes: int = 0


class TitanHarness:
    """Random-node validation sweeps and longitudinal tracking.

    Triage (the resilience layer's production face): a flagged node/stack
    is re-checked ``recheck`` times to separate *transient* faults (flaky
    interconnect, a worker death the retry budget did not cover) from
    *persistent* degradation.  Persistently flagged nodes land on the
    quarantine list, are excluded from subsequent sweep samples, and get a
    recovery probe at each :meth:`timeline` epoch so repaired nodes rejoin
    the pool.  When *every* sampled check of a stack is flagged, the stack
    itself (a cluster-wide compiler rollout) is the suspect — no node is
    quarantined for it.
    """

    def __init__(
        self,
        cluster: TitanCluster,
        suite: SuiteRegistry,
        config: Optional[HarnessConfig] = None,
        feature_prefixes: Optional[Sequence[str]] = None,
        tracer=None,
        recheck: int = 1,
        journal=None,
        live=None,
        cancel=None,
    ):
        self.cluster = cluster
        self.suite = suite
        # production sweeps favour quick turnaround: 1 iteration, no cross
        self.config = config or HarnessConfig(iterations=1, run_cross=False)
        #: a repro.obs.live.LiveTelemetry pipeline publishing one unit per
        #: node/stack check.  Built from the config's live knobs when not
        #: injected — and the knobs are then *stripped* from the config
        #: handed to the inner per-check ValidationRunners, so each inner
        #: run_suite does not open its own competing sinks
        if live is None and self.config.live_enabled:
            from repro.obs.live import LiveTelemetry

            live = LiveTelemetry.from_config(self.config)
        if self.config.live_enabled:
            self.config = replace(self.config, live_stream=None,
                                  status=False, prom=None)
        self.live = live
        if feature_prefixes is not None:
            self.config.feature_prefixes = feature_prefixes
        #: a repro.obs.Tracer shared by every node check of this harness
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: times a flagged node/stack is re-checked before quarantining
        self.recheck = max(0, recheck)
        #: node id -> QuarantineRecord for persistently flagged nodes
        self.quarantined: Dict[int, QuarantineRecord] = {}
        #: optional repro.journal.JournalWriter — every node/stack check
        #: (sweep, triage re-check, recovery probe) becomes one durable
        #: work unit, so a killed campaign resumes without re-validating
        #: nodes it already checked
        self.journal = journal
        #: this campaign's CancelToken: cancelling it drains the sweep /
        #: timeline gracefully between node checks (CampaignInterrupted),
        #: exactly like run_suite's per-campaign token
        self.cancel = cancel if cancel is not None else CancelToken()
        self._template_map: Optional[Dict[str, object]] = None

    def _recheck_config(self, offset: int) -> HarnessConfig:
        """The config for a re-check / recovery probe.

        When a fault plan is active, the probe counts as a *later attempt*
        of every unit (``attempt_offset``), so transient injected faults —
        by definition — do not recur, while persistent ones do.
        """
        plan = self.config.fault_plan
        if plan is None or offset == 0:
            return self.config
        return replace(
            self.config,
            fault_plan=replace(plan,
                               attempt_offset=plan.attempt_offset + offset),
        )

    def _templates_by_key(self) -> Dict[str, object]:
        if self._template_map is None:
            from repro.journal import template_map

            self._template_map = template_map(self.suite, self.config)
        return self._template_map

    def finish(self) -> None:
        """Finalize the live-telemetry pipeline (final snapshot + sink
        close).  Idempotent; a no-op when no live sinks are configured."""
        if self.live is not None:
            self.live.end(None)

    def check_node(self, node: Node, stack: str,
                   config: Optional[HarnessConfig] = None,
                   unit: Optional[str] = None) -> StackCheck:
        """Validate one stack on one node (one durable work unit).

        ``unit`` is the journal key for this check; sweeps, triage
        re-checks and recovery probes label their checks distinctly so a
        resumed campaign replays exactly the checks the interrupted one
        completed.
        """
        unit = unit or f"sweep:node{node.node_id}:{stack}"
        if self.journal is not None:
            payload = self.journal.get(unit)
            if payload is not None:
                from repro.journal import decode_check

                if self.tracer.enabled:
                    self.tracer.metrics.counter("journal.replayed").inc()
                check = decode_check(payload, self._templates_by_key(),
                                     config or self.config)
                if self.live is not None:
                    # replayed checks count toward progress, marked so
                    self.live.check(unit, check, replayed=True)
                return check
        runner = ValidationRunner(node.stacks[stack],
                                  config or self.config,
                                  tracer=self.tracer)
        report = runner.run_suite(self.suite, cancel=self.cancel)
        check = StackCheck(
            node_id=node.node_id, stack=stack, healthy=node.healthy,
            report=report,
        )
        if self.journal is not None:
            from repro.journal import encode_check

            self.journal.append(unit, encode_check(check))
        if self.live is not None:
            self.live.check(unit, check)
        if self.tracer.enabled:
            self.tracer.metrics.counter("titan.checks").inc()
            if check.flagged:
                self.tracer.metrics.counter("titan.flagged").inc()
                self.tracer.event(
                    "titan.node_flagged", node=node.node_id, stack=stack,
                    healthy=node.healthy, pass_rate=check.pass_rate,
                )
        return check

    def sweep(self, sample_size: int, seed: int = 0,
              stacks: Sequence[str] = (STACK_CUDA, STACK_OPENCL)) -> List[StackCheck]:
        """Validate a random node sample across the given stacks.

        Quarantined nodes are excluded from the sample; flagged checks are
        triaged (re-checked, then quarantined or written off as transient)
        before the sweep returns.
        """
        rng = random.Random(seed)
        eligible = [n for n in self.cluster.nodes
                    if n.node_id not in self.quarantined]
        sample = rng.sample(eligible, min(sample_size, len(eligible)))
        if self.live is not None:
            if not self.live.began:
                self.live.begin(total_units=0, command="titan",
                                nodes=len(self.cluster.nodes))
            # a sweep's unit total is known the moment the sample is drawn;
            # triage re-checks and recovery probes extend it as they happen
            self.live.extend_total(len(sample) * len(stacks))
        checks: List[StackCheck] = []
        with activate_token(self.cancel), self.tracer.span(
                "titan.sweep", key=f"seed={seed}",
                sample=len(sample)) as span:
            for node in sample:
                for stack in stacks:
                    self.cancel.check()
                    with self.tracer.span(
                        "titan.check", key=f"node{node.node_id}:{stack}",
                        healthy=node.healthy,
                    ):
                        checks.append(self.check_node(node, stack))
            quarantined = self._triage(checks)
            # attributes must be set before __exit__: a drained/serialized
            # trace only carries what the span held when it closed
            span.set(checks=len(checks),
                     flagged=sum(1 for c in checks if c.flagged),
                     quarantined=quarantined)
        return checks

    def _triage(self, checks: Sequence[StackCheck]) -> int:
        """Re-check flagged nodes; quarantine the persistently degraded.

        Returns the number of nodes quarantined by this sweep.
        """
        flagged = [c for c in checks if c.flagged]
        if not flagged:
            return 0
        # if every sampled check of a stack failed, suspect the stack (a
        # cluster-wide rollout regression), not the individual nodes
        suspect_stacks = set()
        for stack in {c.stack for c in checks}:
            pool = [c for c in checks if c.stack == stack]
            if len(pool) > 1 and all(c.flagged for c in pool):
                suspect_stacks.add(stack)
                if self.tracer.enabled:
                    self.tracer.event("titan.stack_suspect", stack=stack,
                                      checks=len(pool))
        nodes_by_id = {n.node_id: n for n in self.cluster.nodes}
        quarantined = 0
        for check in flagged:
            if check.stack in suspect_stacks:
                continue
            if check.node_id in self.quarantined:
                continue
            node = nodes_by_id[check.node_id]
            persistent = True
            for r in range(self.recheck):
                self.cancel.check()
                if self.tracer.enabled:
                    self.tracer.metrics.counter("titan.rechecks").inc()
                if self.live is not None:
                    self.live.extend_total(1)
                again = self.check_node(
                    node, check.stack,
                    config=self._recheck_config(r + 1),
                    unit=f"recheck{r + 1}:node{check.node_id}:{check.stack}",
                )
                if not again.flagged:
                    persistent = False
                    break
            if persistent:
                self.quarantined[check.node_id] = QuarantineRecord(
                    node_id=check.node_id, stack=check.stack,
                    detail=(f"{len(check.report.failures())} failures, "
                            f"{check.harness_errors} harness errors"),
                )
                quarantined += 1
                if self.tracer.enabled:
                    self.tracer.event(
                        "titan.quarantined", node=check.node_id,
                        stack=check.stack, healthy=check.healthy,
                        harness_errors=check.harness_errors,
                    )
                    self.tracer.metrics.counter("titan.quarantined").inc()
                if self.live is not None:
                    self.live.event("titan.quarantined", node=check.node_id,
                                    stack=check.stack)
            elif self.tracer.enabled:
                self.tracer.event("titan.flag_transient", node=check.node_id,
                                  stack=check.stack)
                self.tracer.metrics.counter("titan.transient").inc()
        return quarantined

    def probe_quarantined(self, epoch: int = 0) -> List[int]:
        """Recovery probes: re-validate quarantined nodes; release the ones
        that come back clean.  Returns the recovered node ids."""
        recovered: List[int] = []
        nodes_by_id = {n.node_id: n for n in self.cluster.nodes}
        with activate_token(self.cancel):
            for node_id, record in sorted(self.quarantined.items()):
                self.cancel.check()
                record.probes += 1
                if self.live is not None:
                    self.live.extend_total(1)
                check = self.check_node(
                    nodes_by_id[node_id], record.stack,
                    config=self._recheck_config(self.recheck + 1 + epoch),
                    unit=f"probe{epoch}:node{node_id}:{record.stack}",
                )
                if self.tracer.enabled:
                    self.tracer.metrics.counter("titan.probes").inc()
                if not check.flagged:
                    recovered.append(node_id)
                    if self.tracer.enabled:
                        self.tracer.event("titan.recovered", node=node_id,
                                          stack=record.stack,
                                          probes=record.probes)
                        self.tracer.metrics.counter("titan.recovered").inc()
                    if self.live is not None:
                        self.live.event("titan.recovered", node=node_id,
                                        stack=record.stack)
        for node_id in recovered:
            del self.quarantined[node_id]
        return recovered

    def timeline(
        self,
        epochs: int,
        sample_size: int = 4,
        upgrades: Optional[Dict[int, Tuple[str, CompilerBehavior]]] = None,
        seed: int = 0,
    ) -> List[Dict[str, float]]:
        """Per-epoch aggregate pass rates per stack (functionality tracking).

        ``upgrades`` maps an epoch index to a (stack, behaviour) rollout
        applied before that epoch's sweep — regressions and fixes in the
        rolled-out compiler show up as rate changes.  Each epoch starts
        with recovery probes of the quarantine list, so repaired nodes
        rejoin the sampling pool; the per-epoch record tracks the list's
        size.
        """
        records: List[Dict[str, float]] = []
        for epoch in range(epochs):
            if upgrades and epoch in upgrades:
                stack, behavior = upgrades[epoch]
                self.cluster.upgrade_stack(stack, behavior)
            recovered = self.probe_quarantined(epoch)
            checks = self.sweep(sample_size, seed=seed + epoch)
            record: Dict[str, float] = {"epoch": float(epoch)}
            for stack in (STACK_CUDA, STACK_OPENCL):
                pool = [c for c in checks if c.stack == stack]
                if pool:
                    record[stack] = sum(c.pass_rate for c in pool) / len(pool)
                record[f"{stack}:flagged"] = float(
                    sum(1 for c in pool if c.flagged)
                )
            record["quarantined"] = float(len(self.quarantined))
            record["recovered"] = float(len(recovered))
            records.append(record)
        return records
