"""Statistical certainty model (paper Section III).

"If nf is the number of failed cross tests and M the total number of
iterations, the probability that the test will fail is p = nf/M.  Thus the
probability that an incorrect implementation passes the test is
pa = (1-p)^M, and the certainty of test is pc = 1 - pa, i.e. the
probability that a directive is validated."
"""

from __future__ import annotations


def cross_fail_probability(nf: int, m: int) -> float:
    """p = nf / M."""
    if m <= 0:
        raise ValueError("iteration count must be positive")
    if not 0 <= nf <= m:
        raise ValueError(f"invalid failed-cross count {nf} of {m}")
    return nf / m


def accidental_pass_probability(nf: int, m: int) -> float:
    """pa = (1 - p)^M — the chance an incorrect implementation slips by."""
    p = cross_fail_probability(nf, m)
    return (1.0 - p) ** m


def certainty(nf: int, m: int) -> float:
    """pc = 1 - pa — confidence that the directive is really validated."""
    return 1.0 - accidental_pass_probability(nf, m)
