"""The validation harness (paper Section III, Fig. 3).

``runner`` drives the functional -> cross pipeline with repeated iterations
and statistical certainty; ``stats`` implements the paper's p / pa / pc
model; ``report`` renders results as plain text, HTML or CSV with bug
reports carrying code snippets; ``config`` holds compiler configuration and
feature selection; ``titan`` simulates the production deployment of
Section VII (random-node validation across software stacks).
"""

from repro.harness.config import EXECUTION_POLICIES, HarnessConfig
from repro.harness.engine import RunMetrics, create_engine
from repro.harness.stats import (
    accidental_pass_probability,
    certainty,
    cross_fail_probability,
)
from repro.harness.runner import (
    FailureKind,
    IterationOutcome,
    PhaseResult,
    SuiteRunReport,
    TestResult,
    ValidationRunner,
)
from repro.harness.report import (
    render_csv,
    render_html,
    render_metrics_csv,
    render_metrics_text,
    render_text,
    render_bug_report,
)
from repro.harness.titan import Node, TitanCluster, TitanHarness, StackCheck

__all__ = [
    "EXECUTION_POLICIES", "HarnessConfig",
    "RunMetrics", "create_engine",
    "accidental_pass_probability", "certainty", "cross_fail_probability",
    "FailureKind", "IterationOutcome", "PhaseResult", "SuiteRunReport",
    "TestResult", "ValidationRunner",
    "render_csv", "render_html", "render_metrics_csv", "render_metrics_text",
    "render_text", "render_bug_report",
    "Node", "TitanCluster", "TitanHarness", "StackCheck",
]
