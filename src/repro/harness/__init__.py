"""The validation harness (paper Section III, Fig. 3).

``runner`` drives the functional -> cross pipeline with repeated iterations
and statistical certainty; ``stats`` implements the paper's p / pa / pc
model; ``report`` renders results as plain text, HTML or CSV with bug
reports carrying code snippets; ``config`` holds compiler configuration and
feature selection; ``titan`` simulates the production deployment of
Section VII (random-node validation across software stacks).
"""

from repro.harness.config import EXECUTION_POLICIES, HarnessConfig
from repro.harness.engine import (
    CampaignInterrupted,
    CancelToken,
    MAX_POOL_DEATHS,
    RunMetrics,
    activate_token,
    create_engine,
    drain_requested,
    harness_error_result,
    request_drain,
    reset_drain,
    run_unit_resilient,
)
from repro.harness.stats import (
    accidental_pass_probability,
    certainty,
    cross_fail_probability,
)
from repro.harness.runner import (
    EmptySelectionError,
    FailureKind,
    IterationOutcome,
    PhaseResult,
    SuiteRunReport,
    TemplateTimeout,
    TestResult,
    ValidationRunner,
)
from repro.harness.report import (
    render_csv,
    render_html,
    render_metrics_csv,
    render_metrics_text,
    render_text,
    render_bug_report,
)
from repro.harness.titan import (
    Node,
    QuarantineRecord,
    StackCheck,
    TitanCluster,
    TitanHarness,
)

__all__ = [
    "EXECUTION_POLICIES", "HarnessConfig",
    "CampaignInterrupted", "CancelToken", "MAX_POOL_DEATHS", "RunMetrics",
    "activate_token", "create_engine",
    "drain_requested", "harness_error_result", "request_drain",
    "reset_drain", "run_unit_resilient",
    "accidental_pass_probability", "certainty", "cross_fail_probability",
    "EmptySelectionError", "FailureKind", "IterationOutcome", "PhaseResult",
    "SuiteRunReport", "TemplateTimeout", "TestResult", "ValidationRunner",
    "render_csv", "render_html", "render_metrics_csv", "render_metrics_text",
    "render_text", "render_bug_report",
    "Node", "QuarantineRecord", "TitanCluster", "TitanHarness", "StackCheck",
]
