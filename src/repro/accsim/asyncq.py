"""Asynchronous activity queues.

OpenACC ``async(tag)`` work goes onto a per-tag queue; nothing executes until
a ``wait`` drains it (or the program flushes at exit).  This is the weakest
legal execution schedule and it is precisely the one the async tests need:
``acc_async_test`` must observe *incomplete* work between enqueue and wait
(Fig. 10), and results read without a wait must be stale (cross tests).

The module also keeps a logical clock counting completed activities, used by
reports and by the Titan production-harness statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: queue used by `async` without an argument
DEFAULT_QUEUE = object()


@dataclass
class Activity:
    run: Callable[[], None]
    description: str = ""


class AsyncQueues:
    def __init__(self) -> None:
        self._queues: Dict[object, List[Activity]] = {}
        self.completed = 0  # logical clock
        self.enqueued = 0
        #: profiling (see repro.obs): wait calls and the deepest backlog
        #: observed across all queues at any enqueue
        self.waits = 0
        self.max_pending = 0

    def _key(self, tag: Optional[int]) -> object:
        return DEFAULT_QUEUE if tag is None else int(tag)

    def enqueue(self, tag: Optional[int], run: Callable[[], None],
                description: str = "") -> None:
        self._queues.setdefault(self._key(tag), []).append(
            Activity(run=run, description=description)
        )
        self.enqueued += 1
        depth = self.pending()
        if depth > self.max_pending:
            self.max_pending = depth

    def test(self, tag: Optional[int]) -> bool:
        """True (complete) iff no pending activities on the tagged queue."""
        return not self._queues.get(self._key(tag))

    def test_all(self) -> bool:
        return all(not q for q in self._queues.values())

    def wait(self, tag: Optional[int]) -> None:
        """Drain the tagged queue, executing activities in order."""
        self.waits += 1
        self._drain(self._key(tag))

    def wait_all(self) -> None:
        self.waits += 1
        # drain in deterministic order; activities may enqueue more work
        while any(self._queues.values()):
            for key in list(self._queues):
                self._drain(key)

    def _drain(self, key: object) -> None:
        queue = self._queues.get(key, [])
        while queue:
            activity = queue.pop(0)
            activity.run()
            self.completed += 1

    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())
