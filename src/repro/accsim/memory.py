"""Device memory: present table and data-clause actions.

The paper's data-construct tests (Section IV-B) observe exactly these
semantics:

* ``copy`` — copyin at region entry, copyout at exit (Fig. 6);
* ``copyin`` — device values freely clobbered, host values untouched;
* ``copyout`` — device allocation starts as *garbage* so the paper's second
  copyout test ("the array values are non-deterministic because the device
  had just allocated memory") observes host/device inconsistency; we fill
  fresh allocations with a deterministic pseudo-garbage pattern;
* ``create`` — allocation only, no transfers;
* ``present`` family — reference-counted reuse; a plain ``present`` of
  absent data raises :class:`PresentError`;
* scalars participate like arrays (a scalar is a section of length 0 dims),
  which is what lets Cray's "scalar copy does not happen" bug be expressed
  as a hook.

Mappings are keyed by the *cell* holding the host value, so re-assigning a
host scalar does not disturb its device copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.accsim.errors import DeviceAllocationError, PresentError
from repro.accsim.values import ArrayValue, Cell, DevicePointer


#: accounting size of a scalar transfer (the simulator does not model
#: element widths for scalars; 8 covers the widest C/Fortran scalar)
_SCALAR_BYTES = 8


def fill_garbage(array: ArrayValue, salt: int) -> None:
    """Deterministic 'uninitialised device memory' pattern."""
    flat = array.data.reshape(-1)
    idx = np.arange(flat.size, dtype=np.int64)
    pattern = ((salt * 2654435761 + idx * 40503) % 1000003) - 500000
    if array.type_base in ("float", "double"):
        flat[...] = pattern.astype(np.float64) * 1e-3
    else:
        flat[...] = pattern


@dataclass
class Mapping:
    """One present-table entry: a device copy of (a section of) a host cell."""

    cell: Cell
    device_data: object  # ArrayValue for arrays, plain scalar for scalars
    start: int = 0
    length: int = 0  # 0 => scalar
    refcount: int = 1
    copyout_on_exit: bool = False
    owner: bool = True  # allocated by the entry that created it

    @property
    def is_scalar(self) -> bool:
        return not isinstance(self.device_data, ArrayValue)


def _present_key(cell: Cell) -> int:
    """Arrays are keyed by the array object so aliases (e.g. a procedure
    parameter bound to the caller's array) share one mapping; scalars have
    no stable value identity and are keyed by their cell."""
    if isinstance(cell.value, ArrayValue):
        return id(cell.value)
    return id(cell)


class DeviceMemory:
    """Present table plus the device heap (``acc_malloc``)."""

    def __init__(self) -> None:
        self._present: Dict[int, Mapping] = {}
        self._salt = 0
        self.bytes_allocated = 0
        #: cumulative data-clause traffic (profiling; see repro.obs)
        self.bytes_to_device = 0
        self.bytes_to_host = 0

    # ------------------------------------------------------------- queries

    def lookup(self, cell: Cell) -> Optional[Mapping]:
        return self._present.get(_present_key(cell))

    def is_present(self, cell: Cell) -> bool:
        return _present_key(cell) in self._present

    def mappings(self) -> List[Mapping]:
        return list(self._present.values())

    # ---------------------------------------------------------- entry/exit

    def enter(
        self,
        action: str,
        cell: Cell,
        start: Optional[int] = None,
        length: Optional[int] = None,
        *,
        skip_scalar_transfer: bool = False,
    ) -> Mapping:
        """Perform a data-clause entry action; returns the mapping.

        ``action`` is the normalised clause name.  ``skip_scalar_transfer``
        is the hook point for Cray's scalar-copy bug: the mapping is created
        but the value transfer is suppressed.
        """
        existing = self.lookup(cell)
        present_or = action.startswith("present_or_") or action == "present"
        base_action = action.replace("present_or_", "")

        if existing is not None:
            if not present_or and action != "present":
                # 1.0 compilers commonly treated a duplicate copy/copyin as
                # present_or_*; we follow that permissive behaviour.
                pass
            existing.refcount += 1
            return existing

        if action == "present":
            raise PresentError(
                f"variable {cell.name!r} not present on device"
            )

        mapping = self._allocate(cell, start, length)
        if base_action in ("copy", "copyin"):
            if not (mapping.is_scalar and skip_scalar_transfer):
                self._host_to_device(mapping)
        if base_action in ("copy", "copyout"):
            mapping.copyout_on_exit = True
            if mapping.is_scalar and skip_scalar_transfer:
                mapping.copyout_on_exit = False
        self._present[_present_key(cell)] = mapping
        return mapping

    def exit(self, mapping: Mapping) -> None:
        """Undo one entry action (structured region exit)."""
        mapping.refcount -= 1
        if mapping.refcount > 0:
            return
        if mapping.copyout_on_exit:
            self._device_to_host(mapping)
        self._deallocate(mapping)

    def delete(self, cell: Cell) -> None:
        """2.0 ``exit data delete``: drop the mapping without copyout."""
        mapping = self.lookup(cell)
        if mapping is None:
            raise PresentError(f"delete of absent variable {cell.name!r}")
        self._deallocate(mapping)

    def force_copyout(self, cell: Cell) -> None:
        """2.0 ``exit data copyout``."""
        mapping = self.lookup(cell)
        if mapping is None:
            raise PresentError(f"copyout of absent variable {cell.name!r}")
        self._device_to_host(mapping)
        self._deallocate(mapping)

    # ----------------------------------------------------------- transfers

    def update_host(self, cell: Cell, start: Optional[int] = None,
                    length: Optional[int] = None) -> None:
        mapping = self.lookup(cell)
        if mapping is None:
            raise PresentError(f"update host of absent variable {cell.name!r}")
        self._device_to_host(mapping, start, length)

    def update_device(self, cell: Cell, start: Optional[int] = None,
                      length: Optional[int] = None) -> None:
        mapping = self.lookup(cell)
        if mapping is None:
            raise PresentError(f"update device of absent variable {cell.name!r}")
        self._host_to_device(mapping, start, length)

    # -------------------------------------------------------------- heap

    def malloc(self, nbytes: int) -> DevicePointer:
        if nbytes < 0:
            raise DeviceAllocationError(f"acc_malloc of negative size {nbytes}")
        self.bytes_allocated += nbytes
        return DevicePointer(nbytes=int(nbytes))

    def free(self, ptr: DevicePointer) -> None:
        if not isinstance(ptr, DevicePointer):
            raise DeviceAllocationError("acc_free of a non-device pointer")
        if ptr.freed:
            raise DeviceAllocationError("double acc_free")
        ptr.freed = True
        self.bytes_allocated -= ptr.nbytes

    # -------------------------------------------------------------- private

    def _allocate(self, cell: Cell, start: Optional[int], length: Optional[int]) -> Mapping:
        self._salt += 1
        value = cell.value
        if isinstance(value, ArrayValue):
            if start is None:
                start = value.lowers[0]
            if length is None:
                length = value.length
            shape = (length,) + value.data.shape[1:]
            lowers = (start,) + value.lowers[1:]
            device = ArrayValue(shape, value.type_base, lowers)
            fill_garbage(device, self._salt)
            self.bytes_allocated += device.data.nbytes
            return Mapping(cell=cell, device_data=device, start=start, length=length)
        if isinstance(value, DevicePointer):
            raise DeviceAllocationError(
                f"device pointer {cell.name!r} cannot appear in a data clause "
                "(use deviceptr)"
            )
        # scalar: garbage initial device value
        garbage = (self._salt * 7919) % 104729 - 50000
        if isinstance(value, float):
            garbage = garbage * 1e-3
        return Mapping(cell=cell, device_data=garbage)

    def _deallocate(self, mapping: Mapping) -> None:
        if isinstance(mapping.device_data, ArrayValue):
            self.bytes_allocated -= mapping.device_data.data.nbytes
        self._present.pop(_present_key(mapping.cell), None)

    def _host_to_device(self, mapping: Mapping, start: Optional[int] = None,
                        length: Optional[int] = None) -> None:
        host = mapping.cell.value
        if isinstance(host, ArrayValue):
            start = mapping.start if start is None else start
            length = mapping.length if length is None else length
            values = host.read_section(start, length)
            mapping.device_data.write_section(start, values)
            self.bytes_to_device += int(values.nbytes)
        else:
            mapping.device_data = host
            self.bytes_to_device += _SCALAR_BYTES

    def _device_to_host(self, mapping: Mapping, start: Optional[int] = None,
                        length: Optional[int] = None) -> None:
        host = mapping.cell.value
        if isinstance(host, ArrayValue):
            start = mapping.start if start is None else start
            length = mapping.length if length is None else length
            values = mapping.device_data.read_section(start, length)
            host.write_section(start, values)
            self.bytes_to_host += int(values.nbytes)
        else:
            mapping.cell.value = mapping.device_data
            self.bytes_to_host += _SCALAR_BYTES
