"""Accelerator simulator.

Substitutes for the paper's testbed (16-core Xeon host + NVIDIA K20) with a
behavioural model that preserves every property the validation tests observe:

* **discrete memories** — host variables and device copies are separate
  buffers connected only by explicit (or default) data-clause transfers
  (:mod:`repro.accsim.memory`);
* **three-level parallelism** — gangs execute the region body redundantly
  (sequentially, so "races" such as a removed ``loop`` directive produce a
  deterministic wrong value, exactly what cross tests rely on), with
  ``worker``/``vector`` levels nested inside (driven by the compiler's
  lowering, state lives in :mod:`repro.accsim.device`);
* **asynchronous queues** — enqueued activities only run at ``wait`` (or
  program exit), so ``acc_async_test`` observes incompleteness
  (:mod:`repro.accsim.asyncq`);
* **runtime library** — the OpenACC 1.0 ``acc_*`` routines over a
  :class:`~repro.accsim.machine.Machine` (:mod:`repro.accsim.runtime`).
"""

from repro.accsim.errors import AccRuntimeError, PresentError, DeviceAllocationError
from repro.accsim.values import ArrayValue, Cell, DevicePointer, scalar_default
from repro.accsim.memory import DeviceMemory, Mapping
from repro.accsim.asyncq import AsyncQueues, DEFAULT_QUEUE
from repro.accsim.device import Device, ExecProfile
from repro.accsim.machine import Machine
from repro.accsim.runtime import AccRuntime
from repro.accsim.envvars import apply_environment

__all__ = [
    "AccRuntimeError", "PresentError", "DeviceAllocationError",
    "ArrayValue", "Cell", "DevicePointer", "scalar_default",
    "DeviceMemory", "Mapping",
    "AsyncQueues", "DEFAULT_QUEUE",
    "Device", "ExecProfile", "Machine", "AccRuntime",
    "apply_environment",
]
