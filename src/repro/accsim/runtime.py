"""The OpenACC 1.0 runtime library over a :class:`Machine`.

Each public method implements one ``acc_*`` routine from the 1.0 spec
(Section 3).  Return conventions follow the C bindings: tests/queries return
``int`` 0/1, device types are :class:`DeviceType` values (the C enum).

Vendor bug injection enters through the optional ``hooks`` object; the hook
names are the contract used by :mod:`repro.compiler.vendors.bugmodel`:

``hook_async_test(tag, result)``
    may override the result of acc_async_test/_all (PGI 13.x returned the
    caller's initial value, i.e. the call misbehaved — Section V-B).
``hook_get_device_type(concrete)``
    may override the concrete device type returned (implementation-defined
    per Section V-C).
"""

from __future__ import annotations

from typing import Optional

from repro.accsim.errors import InvalidDeviceError
from repro.accsim.machine import Machine
from repro.accsim.values import DevicePointer
from repro.spec.devices import (
    ACC_DEVICE_HOST,
    ACC_DEVICE_NONE,
    DeviceType,
)


class AccRuntime:
    def __init__(self, machine: Machine, hooks: Optional[object] = None):
        self.machine = machine
        self.hooks = hooks

    def _hook(self, name: str):
        return getattr(self.hooks, name, None) if self.hooks is not None else None

    # ----------------------------------------------------- device management

    def acc_get_num_devices(self, requested: DeviceType) -> int:
        if requested.name == "acc_device_none":
            return 0
        devices = self.machine.devices_matching(requested)
        if requested.not_host:
            devices = [d for d in devices if not d.is_host]
        return len(devices)

    def acc_set_device_type(self, requested: DeviceType) -> None:
        self.machine.set_device_type(requested)

    def acc_get_device_type(self) -> DeviceType:
        current = self.machine.current_device()
        concrete = current.device_type
        hook = self._hook("hook_get_device_type")
        if hook is not None:
            concrete = hook(concrete)
        return concrete

    def acc_set_device_num(self, num: int, requested: Optional[DeviceType] = None) -> None:
        self.machine.set_device_num(num, requested)

    def acc_get_device_num(self, requested: Optional[DeviceType] = None) -> int:
        return self.machine.device_num

    # ------------------------------------------------------- init/shutdown

    def acc_init(self, requested: Optional[DeviceType] = None) -> None:
        self.machine.init(requested)

    def acc_shutdown(self, requested: Optional[DeviceType] = None) -> None:
        self.machine.shutdown(requested)

    # ------------------------------------------------------------- queries

    def acc_on_device(self, requested: DeviceType) -> int:
        """Host-side binding: answers for the *host* thread.  (Inside a
        compute region the interpreter answers for the executing device.)"""
        return 1 if ACC_DEVICE_HOST.matches(requested) else 0

    # ---------------------------------------------------------------- async

    def acc_async_test(self, tag: Optional[int]) -> int:
        device = self.machine.current_device()
        result = 1 if device.queues.test(tag) else 0
        hook = self._hook("hook_async_test")
        if hook is not None:
            result = hook(tag, result)
        return result

    def acc_async_test_all(self) -> int:
        device = self.machine.current_device()
        result = 1 if device.queues.test_all() else 0
        hook = self._hook("hook_async_test")
        if hook is not None:
            result = hook(None, result)
        return result

    def acc_async_wait(self, tag: Optional[int]) -> None:
        self.machine.current_device().queues.wait(tag)

    def acc_async_wait_all(self) -> None:
        self.machine.current_device().queues.wait_all()

    # ----------------------------------------------------------------- heap

    def acc_malloc(self, nbytes: int) -> DevicePointer:
        return self.machine.current_device().memory.malloc(int(nbytes))

    def acc_free(self, ptr: DevicePointer) -> None:
        self.machine.current_device().memory.free(ptr)
