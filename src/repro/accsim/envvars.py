"""OpenACC environment variables (spec Section 4).

``ACC_DEVICE_TYPE`` selects the device type used when a program starts;
``ACC_DEVICE_NUM`` the device number.  The harness passes the environment
as a plain dict (never the real process environment) so tests are hermetic.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.accsim.errors import InvalidDeviceError
from repro.accsim.machine import Machine
from repro.spec.devices import (
    ACC_DEVICE_HOST,
    ACC_DEVICE_NOT_HOST,
    DeviceType,
    device_type_by_name,
)

#: the spellings 1.0-era implementations accepted for ACC_DEVICE_TYPE
_TYPE_SPELLINGS: Dict[str, str] = {
    "NVIDIA": "acc_device_nvidia",
    "RADEON": "acc_device_radeon",
    "XEONPHI": "acc_device_xeonphi",
    "HOST": "acc_device_host",
    "NOT_HOST": "acc_device_not_host",
    "DEFAULT": "acc_device_default",
}


def parse_device_type(value: str) -> DeviceType:
    name = _TYPE_SPELLINGS.get(value.strip().upper())
    if name is None:
        raise InvalidDeviceError(f"unrecognised ACC_DEVICE_TYPE value {value!r}")
    return device_type_by_name(name)


def apply_environment(machine: Machine, env: Mapping[str, str]) -> None:
    """Apply ACC_* variables to a freshly constructed machine."""
    if "ACC_DEVICE_TYPE" in env:
        machine.set_device_type(parse_device_type(env["ACC_DEVICE_TYPE"]))
    if "ACC_DEVICE_NUM" in env:
        try:
            machine.device_num = int(env["ACC_DEVICE_NUM"])
        except ValueError:
            raise InvalidDeviceError(
                f"ACC_DEVICE_NUM must be an integer, got {env['ACC_DEVICE_NUM']!r}"
            ) from None
