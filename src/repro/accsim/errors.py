"""Runtime error types raised during simulated execution.

These correspond to the paper's *runtime* error class (Section V: "the
generation of an incorrect result; a code crash or if the code executes
forever") — a crash maps to an exception from this module, "executes
forever" to :class:`ExecutionTimeout` raised by the interpreter's step
limiter.
"""

from __future__ import annotations


class AccRuntimeError(Exception):
    """Base class for simulated runtime failures (a "code crash")."""


class PresentError(AccRuntimeError):
    """A `present` clause named data that is not on the device."""


class DeviceAllocationError(AccRuntimeError):
    """Invalid device allocation or a bad device pointer."""


class ExecutionTimeout(AccRuntimeError):
    """The interpreter exceeded its step budget ("executes forever")."""


class InvalidDeviceError(AccRuntimeError):
    """Runtime routine addressed a device type/number that does not exist."""
