"""The simulated accelerator device.

A :class:`Device` owns discrete memory (present table + heap) and async
queues.  Its :class:`ExecProfile` captures the *implementation-defined*
execution-model choices the paper highlights in Section II — how the three
OpenACC parallelism levels map onto hardware and what the default sizes are.
The actual gang/worker/vector iteration scheduling is driven by the compiler
lowering (:mod:`repro.compiler.exec_model`); the profile only supplies the
numbers and capability switches (e.g. PGI "just ignores worker").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.accsim.asyncq import AsyncQueues
from repro.accsim.memory import DeviceMemory
from repro.spec.devices import ACC_DEVICE_NVIDIA, DeviceType


@dataclass
class ExecProfile:
    """Implementation-defined execution model parameters.

    ``mapping`` documents the CUDA-level mapping (Section II), e.g. PGI:
    gang->thread block, worker ignored, vector->threads.
    """

    default_num_gangs: int = 16
    default_num_workers: int = 4
    default_vector_length: int = 8
    #: collapse the worker level to 1 lane (PGI 1.0-era behaviour)
    worker_ignored: bool = False
    #: human-readable description of the gang/worker/vector mapping
    mapping: str = "gang->block, worker->warp, vector->threads"

    def effective_workers(self, requested: Optional[int]) -> int:
        if self.worker_ignored:
            return 1
        return requested if requested is not None else self.default_num_workers


@dataclass
class Device:
    """One attached accelerator (or the host pseudo-device)."""

    device_type: DeviceType = ACC_DEVICE_NVIDIA
    num: int = 0
    profile: ExecProfile = field(default_factory=ExecProfile)
    memory: DeviceMemory = field(default_factory=DeviceMemory)
    queues: AsyncQueues = field(default_factory=AsyncQueues)
    #: kernels launched on this device (observability for tests/benches)
    kernels_launched: int = 0

    @property
    def is_host(self) -> bool:
        return not self.device_type.not_host

    def reset(self) -> None:
        """Drop all device state (used by acc_shutdown)."""
        self.memory = DeviceMemory()
        self.queues = AsyncQueues()
        self.kernels_launched = 0
