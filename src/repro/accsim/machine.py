"""The simulated heterogeneous node: a host plus attached accelerators.

Mirrors the paper's testbed (Section V: "16 cores Intel Xeon x86_64 CPU with
32GB main memory, and an NVIDIA Kepler GPU card (K20)") as one host
pseudo-device plus one (configurable: more) accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.accsim.device import Device, ExecProfile
from repro.accsim.errors import InvalidDeviceError
from repro.spec.devices import (
    ACC_DEVICE_HOST,
    ACC_DEVICE_NONE,
    ACC_DEVICE_NOT_HOST,
    ACC_DEVICE_NVIDIA,
    DeviceType,
)


class Machine:
    """Host + accelerators + the current-device selection state."""

    def __init__(
        self,
        accel_count: int = 1,
        accel_device_type: DeviceType = ACC_DEVICE_NVIDIA,
        profile: Optional[ExecProfile] = None,
    ):
        profile = profile or ExecProfile()
        self.host = Device(device_type=ACC_DEVICE_HOST, num=0, profile=ExecProfile())
        self.accelerators: List[Device] = [
            Device(device_type=accel_device_type, num=i, profile=profile)
            for i in range(accel_count)
        ]
        #: the *requested* device type (what acc_set_device_type stored)
        self.requested_type: DeviceType = ACC_DEVICE_NOT_HOST if accel_count else ACC_DEVICE_HOST
        self.device_num: int = 0
        self.initialized: bool = False
        self.shut_down: bool = False

    # ------------------------------------------------------------ selection

    def devices_matching(self, requested: DeviceType) -> List[Device]:
        out = []
        for dev in [self.host] + self.accelerators:
            if dev.device_type.matches(requested):
                out.append(dev)
        return out

    def current_device(self) -> Device:
        """Resolve the requested type/num to a concrete device."""
        if self.requested_type.name == "acc_device_none":
            return self.host
        matching = self.devices_matching(self.requested_type)
        # prefer accelerators when the request is satisfiable by either
        accel = [d for d in matching if not d.is_host]
        pool = accel or matching
        if not pool:
            raise InvalidDeviceError(
                f"no device of type {self.requested_type.name}"
            )
        if self.device_num >= len(pool):
            raise InvalidDeviceError(
                f"device number {self.device_num} out of range for "
                f"{self.requested_type.name} ({len(pool)} available)"
            )
        return pool[self.device_num]

    def set_device_type(self, requested: DeviceType) -> None:
        self.requested_type = requested
        self.device_num = 0

    def set_device_num(self, num: int, requested: Optional[DeviceType] = None) -> None:
        if requested is not None:
            self.requested_type = requested
        self.device_num = int(num)

    # ---------------------------------------------------------------- state

    def init(self, requested: Optional[DeviceType] = None) -> None:
        if requested is not None:
            self.requested_type = requested
        self.initialized = True
        self.shut_down = False

    def shutdown(self, requested: Optional[DeviceType] = None) -> None:
        """Flush queues and drop device state for matching devices."""
        targets = (
            self.devices_matching(requested) if requested is not None
            else [self.host] + self.accelerators
        )
        for dev in targets:
            dev.queues.wait_all()
            dev.reset()
        self.shut_down = True
        self.initialized = False
