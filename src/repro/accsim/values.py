"""Runtime value model.

Every variable binding is a :class:`Cell` (a mutable box) so that device
mappings can alias host storage by identity — the present table is keyed by
cell.  Arrays are :class:`ArrayValue` (numpy storage plus declared lower
bounds, so C 0-based and Fortran 1-based/sectioned indexing share one
implementation).  Device heap allocations made via ``acc_malloc`` are
:class:`DevicePointer` handles.

Floating point note: C ``float`` / Fortran ``real`` values are *stored and
computed in double precision*.  The paper's floating-point reduction oracle
(Fig. 7) compares against a closed form with a 1e-9 rounding tolerance;
simulating 32-bit rounding would introduce spurious mismatches that say
nothing about directive conformance, so we deliberately keep one precision
(recorded in DESIGN.md as a substitution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.accsim.errors import AccRuntimeError
from repro.ir.types import Type

_NUMPY_DTYPES = {
    "int": np.int64,
    "long": np.int64,
    "char": np.int64,
    "bool": np.int64,
    "float": np.float64,
    "double": np.float64,
}


def numpy_dtype(type_base: str):
    try:
        return _NUMPY_DTYPES[type_base]
    except KeyError:
        raise AccRuntimeError(f"cannot allocate array of {type_base!r}") from None


def scalar_default(type_base: str):
    """Default (uninitialised) scalar value.  We use a sentinel-ish nonzero
    value so tests that read uninitialised data notice (mirrors the paper's
    copyout test relying on non-deterministic uninitialised device data)."""
    if type_base in ("float", "double"):
        return 0.0
    return 0


class ArrayValue:
    """An n-dimensional array with declared lower bounds.

    ``lowers[d]`` is the index of the first element along dimension ``d``
    (0 for C, typically 1 for Fortran).
    """

    __slots__ = ("data", "type_base", "lowers")

    def __init__(
        self,
        shape: Sequence[int],
        type_base: str,
        lowers: Optional[Sequence[int]] = None,
        fill: Optional[float] = None,
    ):
        shape = tuple(int(s) for s in shape)
        if any(s < 0 for s in shape):
            raise AccRuntimeError(f"negative array extent {shape}")
        self.data = np.zeros(shape, dtype=numpy_dtype(type_base))
        if fill is not None:
            self.data.fill(fill)
        self.type_base = type_base
        self.lowers = tuple(int(l) for l in (lowers or (0,) * len(shape)))
        if len(self.lowers) != len(shape):
            raise AccRuntimeError("lower-bounds rank mismatch")

    # -- indexing ----------------------------------------------------------

    def _offset(self, indices: Sequence[int]) -> Tuple[int, ...]:
        if len(indices) != self.data.ndim:
            raise AccRuntimeError(
                f"rank mismatch: {len(indices)} subscripts for rank-{self.data.ndim} array"
            )
        off = tuple(int(i) - l for i, l in zip(indices, self.lowers))
        for o, extent in zip(off, self.data.shape):
            if o < 0 or o >= extent:
                raise AccRuntimeError(
                    f"index out of bounds: subscript {indices} for shape {self.data.shape} "
                    f"(lower bounds {self.lowers})"
                )
        return off

    def get(self, indices: Sequence[int]):
        value = self.data[self._offset(indices)]
        if self.type_base in ("float", "double"):
            return float(value)
        return int(value)

    def set(self, indices: Sequence[int], value) -> None:
        self.data[self._offset(indices)] = value

    # -- sections ------------------------------------------------------------

    @property
    def length(self) -> int:
        """Extent of the first dimension (the sectioned one)."""
        return int(self.data.shape[0])

    def read_section(self, start: int, length: int) -> np.ndarray:
        """Copy of rows [start, start+length) in *declared* index space."""
        lo = start - self.lowers[0]
        if lo < 0 or lo + length > self.data.shape[0]:
            raise AccRuntimeError(
                f"section [{start}:{start + length}) outside array bounds"
            )
        return self.data[lo : lo + length].copy()

    def write_section(self, start: int, values: np.ndarray) -> None:
        lo = start - self.lowers[0]
        if lo < 0 or lo + len(values) > self.data.shape[0]:
            raise AccRuntimeError(
                f"section write [{start}:{start + len(values)}) outside array bounds"
            )
        self.data[lo : lo + len(values)] = values

    def clone(self) -> "ArrayValue":
        out = ArrayValue(self.data.shape, self.type_base, self.lowers)
        out.data[...] = self.data
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayValue({self.type_base}{list(self.data.shape)}, lowers={self.lowers})"


@dataclass
class DevicePointer:
    """Opaque handle returned by ``acc_malloc``; points at raw device bytes
    that are viewed with an element type once bound by a ``deviceptr``
    clause or dereferenced in a kernel."""

    nbytes: int
    buffer: Optional[ArrayValue] = None
    freed: bool = False

    def as_array(self, type_base: str) -> ArrayValue:
        if self.freed:
            raise AccRuntimeError("use of device pointer after acc_free")
        itemsize = 4 if type_base in ("int", "float", "char", "bool") else 8
        length = self.nbytes // itemsize
        if self.buffer is None:
            self.buffer = ArrayValue((length,), type_base)
        elif self.buffer.type_base != type_base or self.buffer.length != length:
            # retyping a raw allocation: preserve length by element count
            fresh = ArrayValue((length,), type_base)
            n = min(length, self.buffer.length)
            fresh.data[:n] = self.buffer.data[:n]
            self.buffer = fresh
        return self.buffer


class Cell:
    """Mutable variable binding; identity of a cell keys device mappings."""

    __slots__ = ("value", "type", "name")

    def __init__(self, value, type: Optional[Type] = None, name: str = "?"):
        self.value = value
        self.type = type
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cell({self.name}={self.value!r})"


def coerce_scalar(type_base: Optional[str], value):
    """Coerce an assigned scalar to the declared type (C conversion rules:
    float->int truncates toward zero)."""
    if type_base in ("int", "long", "char", "bool"):
        return int(value)
    if type_base in ("float", "double"):
        return float(value)
    return value
