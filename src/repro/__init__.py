"""repro — reproduction of "A Validation Testsuite for OpenACC 1.0"
(Wang, Xu, Chandrasekaran, Chapman, Hernandez — IEEE IPDPSW 2014).

Public API map
--------------

Compile & run OpenACC programs on the simulated machine:

    >>> from repro import Compiler
    >>> Compiler().compile(source, "c").run().value

Validate an implementation against the paper's 1.0 corpus:

    >>> from repro import ValidationRunner, HarnessConfig, openacc10_suite
    >>> report = ValidationRunner(config=HarnessConfig(iterations=3)
    ...                           ).run_suite(openacc10_suite())

Simulated vendor compilers (Table I / Fig. 8):

    >>> from repro import vendor_version
    >>> behavior = vendor_version("pgi", "13.2").behavior("c")

Subpackages: :mod:`repro.spec` (feature tree), :mod:`repro.minic` /
:mod:`repro.minifort` (frontends), :mod:`repro.accsim` (device simulator),
:mod:`repro.compiler` (pipeline + execution model + vendors),
:mod:`repro.templates` (test generation), :mod:`repro.suite` (corpus),
:mod:`repro.harness` (runner/stats/reports/Titan), :mod:`repro.analysis`
(evaluation assembly).
"""

__version__ = "1.0.0"

from repro.compiler import (
    CompileError,
    CompiledProgram,
    Compiler,
    CompilerBehavior,
    ExecutionLimits,
    ExecutionResult,
    UnsupportedFeatureError,
)
from repro.compiler.vendors import vendor_version, vendor_versions
from repro.harness import (
    HarnessConfig,
    SuiteRunReport,
    TestResult,
    ValidationRunner,
    render_bug_report,
    render_csv,
    render_html,
    render_text,
)
from repro.suite import openacc10_suite, openacc20_suite
from repro.templates import generate_pair, parse_template

__all__ = [
    "__version__",
    "CompileError", "CompiledProgram", "Compiler", "CompilerBehavior",
    "ExecutionLimits", "ExecutionResult", "UnsupportedFeatureError",
    "vendor_version", "vendor_versions",
    "HarnessConfig", "SuiteRunReport", "TestResult", "ValidationRunner",
    "render_bug_report", "render_csv", "render_html", "render_text",
    "openacc10_suite", "openacc20_suite",
    "generate_pair", "parse_template",
]
