"""OpenACC specification model.

:mod:`repro.spec.features` holds the feature tree the paper's testsuite is
organised around ("tests are generated in the form of a tree structure: it
begins by covering OpenACC directives followed by clauses belonging to those
directives, as well as the runtime routines and environment variables");
:mod:`repro.spec.devices` the device-type lattice of Section V-C;
:mod:`repro.spec.reductions` the reduction operator table of Section IV-C4.
"""

from repro.spec.versions import SpecVersion, ACC_10, ACC_20
from repro.spec.devices import DeviceType, STANDARD_DEVICE_TYPES, VENDOR_DEVICE_TYPES
from repro.spec.reductions import ReductionOp, REDUCTION_OPS, reduction_identity, reduction_combine
from repro.spec.features import (
    Feature,
    FeatureKind,
    FeatureRegistry,
    OPENACC_10,
    OPENACC_20_ADDITIONS,
)

__all__ = [
    "SpecVersion", "ACC_10", "ACC_20",
    "DeviceType", "STANDARD_DEVICE_TYPES", "VENDOR_DEVICE_TYPES",
    "ReductionOp", "REDUCTION_OPS", "reduction_identity", "reduction_combine",
    "Feature", "FeatureKind", "FeatureRegistry",
    "OPENACC_10", "OPENACC_20_ADDITIONS",
]
