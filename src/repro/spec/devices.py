"""Device types.

OpenACC 1.0 defines four device types (``acc_device_none``,
``acc_device_default``, ``acc_device_host``, ``acc_device_not_host``); real
implementations extended this set in incompatible ways, which the paper
flags as an "interesting observation" (Section V-C, Fig. 12).  We model both
the standard lattice and the vendor extensions so the device-type tests can
observe exactly the behaviour the paper reports: the concrete type returned
for ``acc_device_not_host`` is implementation-defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class DeviceType:
    """A named device type constant.

    ``not_host`` is True for every attached accelerator type, so that
    ``acc_get_device_type() != acc_device_not_host`` comparisons can be
    answered the way the runtime routines of Section V-C require: a request
    for ``acc_device_not_host`` is satisfied by *any* concrete accelerator.
    """

    name: str
    not_host: bool
    standard: bool = True

    def matches(self, requested: "DeviceType") -> bool:
        """Does this concrete type satisfy a request for ``requested``?"""
        if requested.name == "acc_device_none":
            return self.name == "acc_device_none"
        if requested.name == "acc_device_default":
            return True
        if requested.name == "acc_device_not_host":
            return self.not_host
        if requested.name == "acc_device_host":
            return not self.not_host
        if self.name == requested.name:
            return True
        # vendor names for the same hardware class are interchangeable
        # requests (Section V-C: CAPS called the CUDA device
        # acc_device_cuda where PGI/Cray said acc_device_nvidia)
        for group in _COMPAT_GROUPS:
            if self.name in group and requested.name in group:
                return True
        return False

    def __str__(self) -> str:
        return self.name


#: vendor spellings that denote the same hardware class
_COMPAT_GROUPS = (
    frozenset({"acc_device_nvidia", "acc_device_cuda"}),
    frozenset({"acc_device_opencl", "acc_device_pgi_opencl",
               "acc_device_nvidia_opencl"}),
)

ACC_DEVICE_NONE = DeviceType("acc_device_none", not_host=False)
ACC_DEVICE_DEFAULT = DeviceType("acc_device_default", not_host=True)
ACC_DEVICE_HOST = DeviceType("acc_device_host", not_host=False)
ACC_DEVICE_NOT_HOST = DeviceType("acc_device_not_host", not_host=True)

STANDARD_DEVICE_TYPES: Tuple[DeviceType, ...] = (
    ACC_DEVICE_NONE,
    ACC_DEVICE_DEFAULT,
    ACC_DEVICE_HOST,
    ACC_DEVICE_NOT_HOST,
)

# Vendor extensions observed in Section V-C.
ACC_DEVICE_CUDA = DeviceType("acc_device_cuda", not_host=True, standard=False)
ACC_DEVICE_OPENCL = DeviceType("acc_device_opencl", not_host=True, standard=False)
ACC_DEVICE_NVIDIA = DeviceType("acc_device_nvidia", not_host=True, standard=False)
ACC_DEVICE_RADEON = DeviceType("acc_device_radeon", not_host=True, standard=False)
ACC_DEVICE_XEONPHI = DeviceType("acc_device_xeonphi", not_host=True, standard=False)
ACC_DEVICE_PGI_OPENCL = DeviceType("acc_device_pgi_opencl", not_host=True, standard=False)
ACC_DEVICE_NVIDIA_OPENCL = DeviceType("acc_device_nvidia_opencl", not_host=True, standard=False)

#: Extensions by vendor, as catalogued in Section V-C.
VENDOR_DEVICE_TYPES = {
    "caps": (ACC_DEVICE_CUDA, ACC_DEVICE_OPENCL),
    "pgi": (
        ACC_DEVICE_NVIDIA,
        ACC_DEVICE_RADEON,
        ACC_DEVICE_XEONPHI,
        ACC_DEVICE_PGI_OPENCL,
        ACC_DEVICE_NVIDIA_OPENCL,
    ),
    "cray": (ACC_DEVICE_NVIDIA,),
    "reference": (ACC_DEVICE_NVIDIA,),
}

_BY_NAME = {d.name: d for d in STANDARD_DEVICE_TYPES}
for _types in VENDOR_DEVICE_TYPES.values():
    for _d in _types:
        _BY_NAME.setdefault(_d.name, _d)


def device_type_by_name(name: str) -> DeviceType:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown device type {name!r}") from None
