"""The OpenACC feature tree.

Per the paper (Section I): "The tests are generated in the form of a tree
structure: it begins by covering OpenACC directives followed by clauses
belonging to those directives, as well as the runtime routines and
environment variables."  This module encodes that tree for the 1.0 feature
set, plus the 2.0 additions the paper discusses in Section V-C, so the suite
registry, the vendor bug tables and the analysis layer can all refer to
features by stable dotted identifiers (e.g. ``parallel.num_gangs``,
``loop.reduction.float_add``, ``runtime.acc_async_test``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.spec.versions import ACC_10, ACC_20, SpecVersion


class FeatureKind(Enum):
    DIRECTIVE = "directive"
    CLAUSE = "clause"
    RUNTIME_ROUTINE = "runtime_routine"
    ENV_VAR = "env_var"


@dataclass(frozen=True)
class Feature:
    """A node in the feature tree.

    ``fid`` is the dotted identifier; ``parent`` the enclosing feature (a
    clause's parent is its directive), ``since`` the spec version that
    introduced it.
    """

    fid: str
    kind: FeatureKind
    parent: Optional[str] = None
    since: SpecVersion = ACC_10
    description: str = ""

    @property
    def leaf(self) -> str:
        return self.fid.rsplit(".", 1)[-1]

    @property
    def directive(self) -> str:
        """Root directive name for directive/clause features."""
        return self.fid.split(".", 1)[0]


class FeatureRegistry:
    """Ordered registry of features with tree navigation."""

    def __init__(self, features: Iterable[Feature] = ()):
        self._by_id: Dict[str, Feature] = {}
        for f in features:
            self.add(f)

    def add(self, feature: Feature) -> Feature:
        if feature.fid in self._by_id:
            raise ValueError(f"duplicate feature id {feature.fid!r}")
        self._by_id[feature.fid] = feature
        return feature

    def validate_tree(self) -> None:
        """Check every child's parent is present (full registries only —
        version-filtered sub-registries may legitimately contain orphans)."""
        for f in self:
            if f.parent is not None and f.parent not in self._by_id:
                raise ValueError(
                    f"feature {f.fid!r} references missing parent {f.parent!r}"
                )

    def __contains__(self, fid: str) -> bool:
        return fid in self._by_id

    def __getitem__(self, fid: str) -> Feature:
        return self._by_id[fid]

    def __iter__(self) -> Iterator[Feature]:
        return iter(self._by_id.values())

    def __len__(self) -> int:
        return len(self._by_id)

    def children(self, fid: str) -> List[Feature]:
        return [f for f in self if f.parent == fid]

    def subtree(self, fid: str) -> List[Feature]:
        """The feature and all transitive children, preorder."""
        out = [self[fid]]
        for child in self.children(fid):
            out.extend(self.subtree(child.fid))
        return out

    def of_kind(self, kind: FeatureKind) -> List[Feature]:
        return [f for f in self if f.kind == kind]

    def at_version(self, version: SpecVersion) -> "FeatureRegistry":
        """Sub-registry of features available at ``version``."""
        return FeatureRegistry(f for f in self if f.since <= version)

    def ids(self) -> List[str]:
        return list(self._by_id)


def _build_registry() -> FeatureRegistry:
    r = FeatureRegistry()
    D, C = FeatureKind.DIRECTIVE, FeatureKind.CLAUSE

    def directive(fid: str, desc: str, since: SpecVersion = ACC_10) -> None:
        r.add(Feature(fid, D, None, since, desc))

    def clause(parent: str, name: str, desc: str = "", since: SpecVersion = ACC_10) -> None:
        r.add(Feature(f"{parent}.{name}", C, parent, since, desc))

    # -- compute constructs -------------------------------------------------
    directive("parallel", "accelerator parallel region: launches gangs")
    for c, d in [
        ("if", "conditional offload"),
        ("async", "asynchronous execution"),
        ("num_gangs", "number of gangs executing the region"),
        ("num_workers", "workers per gang"),
        ("vector_length", "vector lanes per worker"),
        ("reduction", "reduction across gangs"),
        ("private", "gang-private copies"),
        ("firstprivate", "gang-private copies initialised from host"),
        ("copy", "copyin at entry, copyout at exit"),
        ("copyin", "copy host->device at entry"),
        ("copyout", "copy device->host at exit"),
        ("create", "device allocation, no transfer"),
        ("present", "data must already be on device"),
        ("present_or_copy", "reuse if present else copy"),
        ("present_or_copyin", "reuse if present else copyin"),
        ("present_or_copyout", "reuse if present else copyout"),
        ("present_or_create", "reuse if present else create"),
        ("deviceptr", "list holds device pointers"),
    ]:
        clause("parallel", c, d)

    directive("kernels", "accelerator kernels region: compiler-found parallelism")
    for c in [
        "if", "async", "copy", "copyin", "copyout", "create", "present",
        "present_or_copy", "present_or_copyin", "present_or_copyout",
        "present_or_create", "deviceptr",
    ]:
        clause("kernels", c)

    # -- data constructs ----------------------------------------------------
    directive("data", "structured data region")
    for c in [
        "if", "copy", "copyin", "copyout", "create", "present",
        "present_or_copy", "present_or_copyin", "present_or_copyout",
        "present_or_create", "deviceptr",
    ]:
        clause("data", c)

    directive("host_data", "make device addresses visible on the host")
    clause("host_data", "use_device", "use device address in host code")

    # -- loop construct -----------------------------------------------------
    directive("loop", "loop mapping onto gang/worker/vector parallelism")
    for c, d in [
        ("gang", "distribute iterations across gangs"),
        ("worker", "distribute iterations across workers"),
        ("vector", "distribute iterations across vector lanes"),
        ("collapse", "associate N tightly nested loops"),
        ("seq", "execute sequentially"),
        ("independent", "assert iterations are data-independent"),
        ("private", "loop-private copies"),
        ("reduction", "loop reduction"),
    ]:
        clause("loop", c, d)
    # reduction leaf features: type x operator (Section IV-C4)
    _INT_OPS = ["add", "mul", "max", "min", "bitand", "bitor", "bitxor", "logand", "logor"]
    _FLT_OPS = ["add", "mul", "max", "min"]
    for op in _INT_OPS:
        r.add(Feature(f"loop.reduction.int_{op}", C, "loop.reduction", ACC_10))
    for op in _FLT_OPS:
        r.add(Feature(f"loop.reduction.float_{op}", C, "loop.reduction", ACC_10))
        r.add(Feature(f"loop.reduction.double_{op}", C, "loop.reduction", ACC_10))

    # -- combined constructs ------------------------------------------------
    directive("parallel loop", "combined parallel + loop")
    clause("parallel loop", "reduction")
    clause("parallel loop", "private")
    directive("kernels loop", "combined kernels + loop")
    clause("kernels loop", "reduction")

    # -- other directives ---------------------------------------------------
    directive("cache", "cache frequently-accessed subarrays")
    directive("declare", "module/function-scope data lifetimes")
    for c in [
        "copy", "copyin", "copyout", "create", "present", "deviceptr",
        "device_resident",
    ]:
        clause("declare", c)
    directive("update", "synchronise host and device copies inside a data region")
    for c in ["host", "device", "if", "async"]:
        clause("update", c)
    directive("wait", "wait for asynchronous activities")

    # -- 2.0 additions discussed in Section V-C ------------------------------
    directive("enter data", "unstructured data lifetime begin", ACC_20)
    directive("exit data", "unstructured data lifetime end", ACC_20)
    directive("routine", "compile a procedure for the device", ACC_20)
    clause("parallel", "default_none", "default(none): no implicit attributes", ACC_20)

    # -- runtime library ----------------------------------------------------
    RT = FeatureKind.RUNTIME_ROUTINE
    for name, since in [
        ("acc_get_num_devices", ACC_10),
        ("acc_set_device_type", ACC_10),
        ("acc_get_device_type", ACC_10),
        ("acc_set_device_num", ACC_10),
        ("acc_get_device_num", ACC_10),
        ("acc_async_test", ACC_10),
        ("acc_async_test_all", ACC_10),
        ("acc_async_wait", ACC_10),
        ("acc_async_wait_all", ACC_10),
        ("acc_init", ACC_10),
        ("acc_shutdown", ACC_10),
        ("acc_on_device", ACC_10),
        ("acc_malloc", ACC_10),
        ("acc_free", ACC_10),
    ]:
        r.add(Feature(f"runtime.{name}", RT, None, since))

    # -- environment variables ----------------------------------------------
    EV = FeatureKind.ENV_VAR
    r.add(Feature("env.ACC_DEVICE_TYPE", EV))
    r.add(Feature("env.ACC_DEVICE_NUM", EV))
    r.validate_tree()
    return r


#: All features through 2.0.
_FULL = _build_registry()

#: The 1.0 feature set the paper's suite covers.
OPENACC_10: FeatureRegistry = _FULL.at_version(ACC_10)

#: The 2.0 additions of Section V-C (forward-looking framework support).
OPENACC_20_ADDITIONS: FeatureRegistry = FeatureRegistry(
    f for f in _FULL if f.since == ACC_20
)

#: Everything.
OPENACC_ALL: FeatureRegistry = _FULL
