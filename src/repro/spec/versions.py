"""Specification versions.

The paper targets OpenACC 1.0 but stresses that "the framework of the
testsuite is robust enough to create test cases for 2.0 and future releases";
we encode the version as a value object so the compiler and suite can gate
2.0-only behaviour (``default(none)``, ``enter data``/``exit data``,
``routine``, strict loop nesting — Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering


@total_ordering
@dataclass(frozen=True)
class SpecVersion:
    major: int
    minor: int

    def __str__(self) -> str:
        return f"{self.major}.{self.minor}"

    def _key(self) -> tuple:
        return (self.major, self.minor)

    def __lt__(self, other: "SpecVersion") -> bool:
        return self._key() < other._key()

    @classmethod
    def parse(cls, text: str) -> "SpecVersion":
        major, minor = text.split(".")
        return cls(int(major), int(minor))


ACC_10 = SpecVersion(1, 0)
ACC_20 = SpecVersion(2, 0)
