"""Reduction operators (OpenACC 1.0, Section 2.4.10 of the spec).

The paper's reduction tests "cover combinations of different types of data
(e.g. int, float and double) and different types of reduction operations
(+, *, max, min, &&, ||, &, |, ^)" (Section IV-C4).  This module is the
single source of truth for operator identities and combination semantics,
used both by the conforming lowering and by the test-oracle computations in
the suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple


@dataclass(frozen=True)
class ReductionOp:
    """One reduction operator.

    ``symbol`` is the spelling used in the clause (``+``, ``*``, ``max`` ...);
    ``identity`` is a callable of the element type name so integer and
    floating identities can differ (e.g. ``min``).
    """

    symbol: str
    int_identity: int
    float_identity: float
    combine: Callable[[object, object], object]
    #: valid on floating-point operands?  (&&/||/&/|/^ are integer-only)
    floating_ok: bool = True

    def identity(self, type_base: str):
        if type_base in ("float", "double"):
            return self.float_identity
        return self.int_identity


def _land(a, b):
    return 1 if (a and b) else 0


def _lor(a, b):
    return 1 if (a or b) else 0


_INT_MIN = -(2**31)
_INT_MAX = 2**31 - 1

REDUCTION_OPS: Dict[str, ReductionOp] = {
    "+": ReductionOp("+", 0, 0.0, lambda a, b: a + b),
    "*": ReductionOp("*", 1, 1.0, lambda a, b: a * b),
    "max": ReductionOp("max", _INT_MIN, float("-inf"), max),
    "min": ReductionOp("min", _INT_MAX, float("inf"), min),
    "&": ReductionOp("&", -1, 0.0, lambda a, b: a & b, floating_ok=False),
    "|": ReductionOp("|", 0, 0.0, lambda a, b: a | b, floating_ok=False),
    "^": ReductionOp("^", 0, 0.0, lambda a, b: a ^ b, floating_ok=False),
    "&&": ReductionOp("&&", 1, 0.0, _land, floating_ok=False),
    "||": ReductionOp("||", 0, 0.0, _lor, floating_ok=False),
}

#: Fortran spellings mapped to the canonical symbols.
FORTRAN_REDUCTION_ALIASES = {
    ".and.": "&&",
    ".or.": "||",
    "iand": "&",
    "ior": "|",
    "ieor": "^",
}


def canonical_reduction(symbol: str) -> str:
    return FORTRAN_REDUCTION_ALIASES.get(symbol.lower(), symbol)


def reduction_identity(symbol: str, type_base: str):
    """Identity element for ``symbol`` on operands of ``type_base``."""
    return REDUCTION_OPS[canonical_reduction(symbol)].identity(type_base)


def reduction_combine(symbol: str, a, b):
    """Combine two partial results under ``symbol``."""
    return REDUCTION_OPS[canonical_reduction(symbol)].combine(a, b)
