"""The campaign server's wire protocol (DESIGN §5h).

``repro.server/v1`` is newline-delimited JSON over TCP.  Every request
is one JSON object on one line; every response is one JSON object on
one line with an ``ok`` boolean (``{"ok": false, "error": "..."}`` on
failure).  ``tail`` is the one streaming op: after its ``ok`` response
the server sends ``{"record": <repro.obs.live/v1 record>}`` lines and
terminates the stream with ``{"end": true, "state": ..., "exit": ...}``.

Requests:

* ``{"op": "ping"}`` — liveness/format probe
* ``{"op": "submit", "spec": {...}}`` — enqueue a new campaign
* ``{"op": "submit", "resume": "<id>"}`` — re-enqueue a cancelled or
  failed campaign (its unit journal replays completed work)
* ``{"op": "status"}`` / ``{"op": "status", "id": "<id>"}``
* ``{"op": "cancel", "id": "<id>"}`` — cancel that campaign's token
* ``{"op": "tail", "id": "<id>"}`` — replay + follow live records

A submission *spec* is plain data: ``suite`` (``"1.0"`` or
``"combinations"``), optional ``vendor``/``version`` (a simulated
vendor compiler; the reference behaviour otherwise), ``scheduler`` (a
:mod:`repro.sched` backend name), optional ``workers`` (pool/shard/pod
count), ``format`` (report renderer) and ``config`` (a
:meth:`repro.harness.HarnessConfig.to_dict`-shaped dict;
execution-only knobs like ``policy`` are honoured, telemetry knobs are
server-managed and rejected).
"""

from __future__ import annotations

import json
from typing import Optional

SERVER_FORMAT = "repro.server/v1"

#: campaign lifecycle states, in order of appearance
STATES = ("queued", "running", "done", "failed", "cancelled")

REPORT_FORMATS = ("text", "csv", "html", "bugs")
REPORT_EXTENSIONS = {"text": "txt", "csv": "csv", "html": "html",
                     "bugs": "bugs.txt"}

SUITES = ("1.0", "combinations")

#: config knobs a submission may NOT set: the server owns the telemetry
#: pipeline (one NDJSON stream per campaign under its own directory)
_SERVER_MANAGED_CONFIG = ("live_stream", "status", "prom")

_SPEC_KEYS = ("suite", "vendor", "version", "scheduler", "workers",
              "format", "config")

#: exit codes reported per terminal state (``done`` splits on failures,
#: mirroring ``repro validate``)
EXIT_DONE = 0
EXIT_FAILURES = 2
EXIT_FAILED = 1
EXIT_CANCELLED = 3


class ProtocolError(ValueError):
    """A malformed request or submission spec."""


def encode_line(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict:
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ProtocolError(f"malformed request line: {err}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def normalize_spec(spec: dict) -> dict:
    """Validate a submission spec; returns the normalized form.

    The normalized spec's ``config`` is the full
    :meth:`~repro.harness.HarnessConfig.to_dict` dict, so journaling it
    and rebuilding after a server restart reproduces the exact campaign
    key.
    """
    from repro.harness import HarnessConfig
    from repro.sched import SCHEDULERS

    if not isinstance(spec, dict):
        raise ProtocolError(
            f"spec must be a JSON object, got {type(spec).__name__}"
        )
    unknown = sorted(set(spec) - set(_SPEC_KEYS))
    if unknown:
        raise ProtocolError(
            f"unknown spec key(s): {', '.join(unknown)}; "
            f"expected a subset of: {', '.join(_SPEC_KEYS)}"
        )
    suite = spec.get("suite", "1.0")
    if suite not in SUITES:
        raise ProtocolError(
            f"unknown suite {suite!r}; expected one of {', '.join(SUITES)}"
        )
    scheduler = spec.get("scheduler", "local")
    if scheduler not in SCHEDULERS:
        raise ProtocolError(
            f"unknown scheduler {scheduler!r}; expected one of "
            f"{', '.join(SCHEDULERS)}"
        )
    fmt = spec.get("format", "text")
    if fmt not in REPORT_FORMATS:
        raise ProtocolError(
            f"unknown format {fmt!r}; expected one of "
            f"{', '.join(REPORT_FORMATS)}"
        )
    workers = spec.get("workers")
    if workers is not None and (not isinstance(workers, int) or workers < 1):
        raise ProtocolError(f"workers must be a positive int (got {workers!r})")
    vendor = spec.get("vendor")
    version = spec.get("version")
    if vendor is not None and version is None:
        raise ProtocolError("a vendor submission needs a version too")
    if vendor is not None:
        languages = (spec.get("config") or {}).get("languages")
        if not isinstance(languages, (list, tuple)) or len(languages) != 1:
            raise ProtocolError(
                "a vendor submission must pin config.languages to exactly "
                "one language (vendor bugs are language-specific)"
            )
    config_data = spec.get("config") or {}
    managed = sorted(k for k in _SERVER_MANAGED_CONFIG
                     if config_data.get(k))
    if managed:
        raise ProtocolError(
            f"config key(s) {', '.join(managed)} are server-managed: the "
            "server streams each campaign's telemetry itself (use `tail`)"
        )
    try:
        config = HarnessConfig.from_dict(config_data)
    except (TypeError, ValueError) as err:
        raise ProtocolError(f"bad config: {err}") from None
    return {
        "suite": suite,
        "vendor": vendor,
        "version": version,
        "scheduler": scheduler,
        "workers": workers,
        "format": fmt,
        "config": config.to_dict(),
    }


# ---------------------------------------------------------------------------
# building the campaign's machinery from a normalized spec
# ---------------------------------------------------------------------------


def spec_config(spec: dict):
    from repro.harness import HarnessConfig

    return HarnessConfig.from_dict(spec["config"])


def spec_suite(spec: dict):
    if spec["suite"] == "combinations":
        from repro.suite import combination_suite

        return combination_suite()
    from repro.suite import openacc10_suite

    return openacc10_suite()


def spec_behavior(spec: dict, config=None):
    from repro.compiler import CompilerBehavior

    if not spec.get("vendor"):
        return CompilerBehavior()
    from repro.compiler.vendors import vendor_version

    config = config if config is not None else spec_config(spec)
    # normalize_spec guarantees a vendor campaign pins a single language
    (language,) = tuple(config.languages)
    return vendor_version(spec["vendor"], spec["version"]).behavior(language)


def spec_backend(spec: dict):
    from repro.sched import create_backend

    return create_backend(spec["scheduler"], workers=spec.get("workers"))


def spec_campaign_key(spec: dict, config=None, behavior=None) -> dict:
    """The unit journal's campaign key — deterministic from the spec, so
    a restarted server resumes the same journal it created."""
    from repro.journal import validate_campaign_key

    config = config if config is not None else spec_config(spec)
    behavior = behavior if behavior is not None else spec_behavior(spec, config)
    return validate_campaign_key(spec["suite"], behavior, config)


def render_report(report, fmt: str) -> str:
    from repro.harness import (
        render_bug_report,
        render_csv,
        render_html,
        render_text,
    )

    renderer = {
        "text": render_text,
        "csv": render_csv,
        "html": render_html,
        "bugs": render_bug_report,
    }[fmt]
    return renderer(report)


def state_exit_code(state: str, failures: Optional[bool]) -> Optional[int]:
    """The ``repro validate``-compatible exit code for a terminal state
    (None while the campaign is still queued/running)."""
    if state == "done":
        return EXIT_FAILURES if failures else EXIT_DONE
    if state == "failed":
        return EXIT_FAILED
    if state == "cancelled":
        return EXIT_CANCELLED
    return None
