"""A small blocking client for the campaign server.

One TCP connection per operation (the protocol is single-request,
except ``tail`` which streams until the server sends its end line), so
the client needs no connection state and works from scripts, tests and
the CLI alike.

Resilience: every transport failure — refused/reset connections, a
socket timeout, the server closing mid-frame, a garbled response line —
normalizes to :class:`ConnectionError` (or ``socket.timeout``), and
every operation retries those with exponential backoff plus
deterministic jitter through an injectable ``sleeper`` (the same
pattern as ``run_unit_resilient``).  A retried ``submit`` marks itself
``idempotent`` so a server that *did* enqueue the lost first attempt
dedups instead of running the campaign twice; a reconnecting ``tail``
dedups replayed records by ``seq``.  Protocol-level refusals
(``{"ok": false}``) stay :class:`ServerError` and are never retried —
the server answered; asking again would not change its mind.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Callable, Iterator, Optional, Tuple

from repro.server.protocol import ProtocolError, decode_line, encode_line

#: transport failures worth retrying; everything else is an answer
TRANSIENT_ERRORS = (ConnectionError, socket.timeout)

_TERMINAL = ("done", "failed", "cancelled")


def parse_address(address: str) -> Tuple[str, int]:
    """Split a ``host:port`` string (the ``--server`` flag's format)."""
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"bad server address {address!r}; expected host:port"
        )
    return host or "127.0.0.1", int(port)


class ServerError(RuntimeError):
    """The server answered ``{"ok": false, ...}``."""


class CampaignClient:
    """Blocking ``repro.server/v1`` client with transient-fault retry."""

    def __init__(self, host: str, port: int, timeout_s: float = 60.0,
                 retries: int = 3, backoff_s: float = 0.1,
                 jitter_seed: int = 0,
                 sleeper: Callable[[float], None] = time.sleep):
        if retries < 0:
            raise ValueError(f"retries must be >= 0 (got {retries})")
        if backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0 (got {backoff_s})")
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        #: transient-error retries per operation (total attempts = retries+1)
        self.retries = retries
        self.backoff_s = backoff_s
        #: seeds the deterministic backoff jitter (tests pin it)
        self.jitter_seed = jitter_seed
        #: injectable clock: tests pass a recording stub and pay no wall time
        self.sleeper = sleeper

    @classmethod
    def at(cls, address: str, timeout_s: float = 60.0,
           **kwargs) -> "CampaignClient":
        host, port = parse_address(address)
        return cls(host, port, timeout_s=timeout_s, **kwargs)

    # ------------------------------------------------------------- transport

    def _connect(self) -> socket.socket:
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )

    def _roundtrip(self, request: dict) -> dict:
        with self._connect() as sock:
            sock.sendall(encode_line(request))
            with sock.makefile("rb") as stream:
                line = stream.readline()
        if not line:
            raise ConnectionError("server closed the connection mid-request")
        return self._checked(line)

    @staticmethod
    def _checked(line: bytes) -> dict:
        if not line.endswith(b"\n"):
            # a frame without its newline is a connection torn mid-write
            raise ConnectionError(
                f"server connection dropped mid-frame ({len(line)} byte(s) "
                "of a torn response)"
            )
        try:
            response = decode_line(line)
        except ProtocolError as err:
            # an unparseable-but-complete frame is wire damage, not an
            # answer: retrying gets a fresh frame
            raise ConnectionError(
                f"garbled server frame: {err}"
            ) from None
        if not response.get("ok", True):
            raise ServerError(response.get("error", "unknown server error"))
        return response

    # ---------------------------------------------------------------- retry

    def _backoff(self, attempt: int, key: str) -> float:
        """Exponential backoff with deterministic jitter: attempt ``n``
        sleeps ``backoff_s * 2**n`` scaled by a jitter in [1.0, 1.5)
        derived from ``(jitter_seed, key, attempt)`` — reproducible runs,
        yet concurrent clients retrying the same server de-synchronize."""
        jitter = random.Random(
            f"{self.jitter_seed}|{key}|{attempt}"
        ).random() * 0.5
        return self.backoff_s * (2 ** attempt) * (1.0 + jitter)

    def _retrying(self, op: Callable[[int], dict], key: str) -> dict:
        """Run ``op(attempt)``, retrying transient transport failures."""
        last: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            try:
                return op(attempt)
            except TRANSIENT_ERRORS as err:
                last = err
                if attempt >= self.retries:
                    break
                self.sleeper(self._backoff(attempt, key))
        raise ConnectionError(
            f"{key} failed after {self.retries + 1} attempt(s); "
            f"last error: {last}"
        ) from last

    # ------------------------------------------------------------------- ops

    def ping(self) -> dict:
        return self._retrying(
            lambda attempt: self._roundtrip({"op": "ping"}), "ping"
        )

    def submit(self, spec: dict) -> dict:
        def op(attempt: int) -> dict:
            request = {"op": "submit", "spec": spec}
            if attempt:
                # the first attempt's response was lost: the server may or
                # may not have enqueued it — ask for dedup by campaign key
                request["idempotent"] = True
            return self._roundtrip(request)

        return self._retrying(op, "submit")

    def resubmit(self, cid: str) -> dict:
        def op(attempt: int) -> dict:
            if attempt:
                # if the lost first attempt landed, the campaign is already
                # requeued and a second resume would be refused as
                # "campaign is queued": check before resubmitting
                info = self._roundtrip({"op": "status", "id": cid})["campaign"]
                if info["state"] not in _TERMINAL:
                    return {"ok": True, "id": cid, "state": info["state"],
                            "deduped": True}
            return self._roundtrip({"op": "submit", "resume": cid})

        return self._retrying(op, f"resubmit:{cid}")

    def status(self, cid: Optional[str] = None) -> dict:
        request: dict = {"op": "status"}
        if cid is not None:
            request["id"] = cid
        return self._retrying(
            lambda attempt: self._roundtrip(request), "status"
        )

    def cancel(self, cid: str) -> dict:
        # deliberately not retried past the roundtrip: a lost cancel
        # response means the cancel may have landed, and the follow-up
        # status (which IS retried) reports the truth
        return self._retrying(
            lambda attempt: self._roundtrip({"op": "cancel", "id": cid}),
            f"cancel:{cid}",
        )

    # ------------------------------------------------------------------ tail

    def _tail_once(self, cid: str,
                   timeout_s: Optional[float]) -> Iterator[dict]:
        """One tail connection: yields payload lines until the end line
        or a transport failure (which the reconnect loop handles)."""
        with self._connect() as sock:
            sock.settimeout(timeout_s if timeout_s is not None
                            else self.timeout_s)
            sock.sendall(encode_line({"op": "tail", "id": cid}))
            with sock.makefile("rb") as stream:
                ack = stream.readline()
                if not ack:
                    raise ConnectionError(
                        "server closed the tail stream before acknowledging"
                    )
                self._checked(ack)
                for line in stream:
                    payload = self._checked(line)
                    yield payload
                    if payload.get("end"):
                        return
        raise ConnectionError("tail stream ended without an end line")

    def tail(self, cid: str,
             timeout_s: Optional[float] = None) -> Iterator[dict]:
        """Yield ``{"record": ...}`` lines then the final ``{"end": ...}``
        line.  Blocks until the campaign reaches a terminal state.

        A dropped or garbled stream reconnects (up to ``retries`` times
        per silence) and dedups the server's replay by record ``seq``,
        so the caller sees each record once, in order, across
        reconnects."""
        last_seq = -1
        failures = 0
        while True:
            try:
                for payload in self._tail_once(cid, timeout_s):
                    record = payload.get("record")
                    if record is not None:
                        seq = record.get("seq")
                        if isinstance(seq, int):
                            if seq <= last_seq:
                                continue  # replayed on reconnect
                            last_seq = seq
                        failures = 0  # progress: reset the retry budget
                    yield payload
                    if payload.get("end"):
                        return
                raise ConnectionError("tail stream closed mid-stream")
            except TRANSIENT_ERRORS as err:
                failures += 1
                if failures > self.retries:
                    raise ConnectionError(
                        f"tail:{cid} failed after {failures} consecutive "
                        f"attempt(s); last error: {err}"
                    ) from err
                self.sleeper(self._backoff(failures - 1, f"tail:{cid}"))

    # ------------------------------------------------------------ conveniences

    def wait(self, cid: str, timeout_s: float = 300.0,
             poll_s: float = 0.05,
             sleeper: Optional[Callable[[float], None]] = None) -> dict:
        """Poll ``status`` until the campaign is terminal; returns its
        info dict (``state``/``exit``/``report_path``/...).

        The poll interval starts at ``poll_s`` and doubles up to 1s —
        long campaigns are not busy-polled at the initial rate — and
        each status call inherits the client's transient retry."""
        sleeper = sleeper if sleeper is not None else self.sleeper
        deadline = time.monotonic() + timeout_s
        delay = poll_s
        while True:
            info = self.status(cid)["campaign"]
            if info["state"] in _TERMINAL:
                return info
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"campaign {cid} still {info['state']} after "
                    f"{timeout_s:.0f}s"
                )
            sleeper(delay)
            delay = min(delay * 2.0, max(poll_s, 1.0))
