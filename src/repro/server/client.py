"""A small blocking client for the campaign server.

One TCP connection per operation (the protocol is single-request,
except ``tail`` which streams until the server sends its end line), so
the client needs no connection state and works from scripts, tests and
the CLI alike.
"""

from __future__ import annotations

import socket
import time
from typing import Callable, Iterator, Optional, Tuple

from repro.server.protocol import ProtocolError, decode_line, encode_line


def parse_address(address: str) -> Tuple[str, int]:
    """Split a ``host:port`` string (the ``--server`` flag's format)."""
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"bad server address {address!r}; expected host:port"
        )
    return host or "127.0.0.1", int(port)


class ServerError(RuntimeError):
    """The server answered ``{"ok": false, ...}``."""


class CampaignClient:
    """Blocking ``repro.server/v1`` client."""

    def __init__(self, host: str, port: int, timeout_s: float = 60.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    @classmethod
    def at(cls, address: str, timeout_s: float = 60.0) -> "CampaignClient":
        host, port = parse_address(address)
        return cls(host, port, timeout_s=timeout_s)

    # ------------------------------------------------------------- transport

    def _connect(self) -> socket.socket:
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )

    def _roundtrip(self, request: dict) -> dict:
        with self._connect() as sock:
            sock.sendall(encode_line(request))
            with sock.makefile("rb") as stream:
                line = stream.readline()
        if not line:
            raise ServerError("server closed the connection mid-request")
        return self._checked(line)

    @staticmethod
    def _checked(line: bytes) -> dict:
        try:
            response = decode_line(line)
        except ProtocolError as err:
            raise ServerError(f"malformed server response: {err}") from None
        if not response.get("ok", True):
            raise ServerError(response.get("error", "unknown server error"))
        return response

    # ------------------------------------------------------------------- ops

    def ping(self) -> dict:
        return self._roundtrip({"op": "ping"})

    def submit(self, spec: dict) -> dict:
        return self._roundtrip({"op": "submit", "spec": spec})

    def resubmit(self, cid: str) -> dict:
        return self._roundtrip({"op": "submit", "resume": cid})

    def status(self, cid: Optional[str] = None) -> dict:
        request: dict = {"op": "status"}
        if cid is not None:
            request["id"] = cid
        return self._roundtrip(request)

    def cancel(self, cid: str) -> dict:
        return self._roundtrip({"op": "cancel", "id": cid})

    def tail(self, cid: str,
             timeout_s: Optional[float] = None) -> Iterator[dict]:
        """Yield ``{"record": ...}`` lines then the final ``{"end": ...}``
        line.  Blocks until the campaign reaches a terminal state."""
        with self._connect() as sock:
            sock.settimeout(timeout_s if timeout_s is not None
                            else self.timeout_s)
            sock.sendall(encode_line({"op": "tail", "id": cid}))
            with sock.makefile("rb") as stream:
                ack = stream.readline()
                if not ack:
                    raise ServerError("server closed the tail stream "
                                      "before acknowledging")
                self._checked(ack)
                for line in stream:
                    payload = self._checked(line)
                    yield payload
                    if payload.get("end"):
                        return
        raise ServerError("tail stream ended without an end line")

    # ------------------------------------------------------------ conveniences

    def wait(self, cid: str, timeout_s: float = 300.0,
             poll_s: float = 0.05,
             sleeper: Callable[[float], None] = time.sleep) -> dict:
        """Poll ``status`` until the campaign is terminal; returns its
        info dict (``state``/``exit``/``report_path``/...)."""
        deadline = time.monotonic() + timeout_s
        while True:
            info = self.status(cid)["campaign"]
            if info["state"] in ("done", "failed", "cancelled"):
                return info
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"campaign {cid} still {info['state']} after "
                    f"{timeout_s:.0f}s"
                )
            sleeper(poll_s)
