"""The asyncio campaign server (``repro serve``).

One process serves many concurrent campaign submissions: each campaign
runs on a :mod:`repro.sched` backend inside a bounded worker pool, owns
a per-campaign :class:`~repro.harness.engine.CancelToken` (cancelling
one client's campaign never touches its neighbours — the bugfix this
whole layer stands on), streams its ``repro.obs.live`` records to any
number of ``tail`` clients, and is journaled twice over:

* the *server journal* (``server.journal``, an ordinary
  :mod:`repro.journal` WAL keyed by campaign id, last-record-wins)
  records every submission spec and state transition, so a killed
  server restarts knowing exactly which campaigns were in flight;
* each campaign's *unit journal* (``<id>.journal``) records completed
  work units, so a re-enqueued campaign replays instead of re-running.

Threading model: the asyncio loop owns all client I/O and the
subscriber fan-out; campaigns run in a ``ThreadPoolExecutor`` and reach
the loop only via ``call_soon_threadsafe``.  Campaign state is guarded
by one lock because both sides read it.
"""

from __future__ import annotations

import asyncio
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

from repro.server import protocol
from repro.server.protocol import (
    SERVER_FORMAT,
    ProtocolError,
    encode_line,
    normalize_spec,
    state_exit_code,
)

#: default TCP port ("repro" has 5 letters, v1 protocol, port space taste)
DEFAULT_PORT = 7781

_TERMINAL = ("done", "failed", "cancelled")


class Campaign:
    """One submitted campaign and its server-side plumbing."""

    def __init__(self, cid: str, spec: dict, state: str = "queued"):
        self.id = cid
        self.spec = spec
        self.state = state
        self.error: Optional[str] = None
        self.report_path: Optional[str] = None
        #: did the finished report contain failures (exit-code split)
        self.failures: Optional[bool] = None
        from repro.harness.engine import CancelToken

        self.cancel = CancelToken()
        #: live records fanned out so far (loop-thread owned)
        self.records: List[dict] = []
        self.last_snapshot: Optional[dict] = None
        #: tail subscribers (loop-thread owned asyncio.Queues)
        self.subscribers: List[asyncio.Queue] = []

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL

    @property
    def exit_code(self) -> Optional[int]:
        return state_exit_code(self.state, self.failures)


class _BroadcastSink:
    """A live-telemetry sink forwarding records into the asyncio loop."""

    def __init__(self, server: "CampaignServer", campaign: Campaign):
        self._server = server
        self._campaign = campaign

    def emit(self, record: dict) -> None:
        self._server._post_record(self._campaign, record)

    def close(self, final: Optional[dict] = None) -> None:
        pass


class CampaignServer:
    """The campaign server: see module docstring."""

    def __init__(self, root: str, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT, max_concurrent: int = 2):
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1 (got {max_concurrent})"
            )
        self.root = root
        self.host = host
        self.port = port
        self.max_concurrent = max_concurrent
        self._campaigns: Dict[str, Campaign] = {}
        self._next_id = 1
        self._lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=max_concurrent, thread_name_prefix="campaign"
        )
        self._journal = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False

    # -------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Open (or resume) the server journal, bind the socket, and
        re-enqueue every campaign a previous life left unfinished."""
        os.makedirs(self.root, exist_ok=True)
        self._loop = asyncio.get_running_loop()
        resumed = self._open_server_journal()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        sock = self._server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]
        for campaign in resumed:
            self._launch(campaign)

    async def serve_forever(self) -> None:
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Graceful stop: drain every campaign, keep their journaled
        states resumable (a queued/running campaign restarts as queued
        on the next ``repro serve`` over the same directory)."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        with self._lock:
            campaigns = list(self._campaigns.values())
        for campaign in campaigns:
            if not campaign.terminal:
                campaign.cancel.cancel(
                    "server shutting down: campaign re-queued for the "
                    "next serve over this directory"
                )
        await self._loop.run_in_executor(
            None, lambda: self._pool.shutdown(wait=True)
        )
        if self._journal is not None:
            self._journal.close()

    def _open_server_journal(self) -> List[Campaign]:
        import repro
        from repro.journal import JOURNAL_FORMAT, JournalWriter

        path = os.path.join(self.root, "server.journal")
        key = {"format": JOURNAL_FORMAT, "command": "serve",
               "code_version": repro.__version__}
        resumed: List[Campaign] = []
        if os.path.exists(path):
            self._journal = JournalWriter.resume(path, key)
            for cid in sorted(self._journal.records):
                payload = self._journal.records[cid]
                campaign = Campaign(cid, payload["spec"],
                                    state=payload["state"])
                campaign.error = payload.get("error")
                campaign.report_path = payload.get("report_path")
                campaign.failures = payload.get("failures")
                self._campaigns[cid] = campaign
                number = int(cid.lstrip("c") or 0)
                self._next_id = max(self._next_id, number + 1)
                if campaign.state in ("queued", "running"):
                    # in flight when the last server died: run it again —
                    # its unit journal replays everything already done
                    campaign.state = "queued"
                    self._journal_state(campaign)
                    resumed.append(campaign)
        else:
            self._journal = JournalWriter.create(path, key)
        return resumed

    # ------------------------------------------------------- campaign driving

    def _journal_state(self, campaign: Campaign) -> None:
        self._journal.append(campaign.id, {
            "spec": campaign.spec,
            "state": campaign.state,
            "error": campaign.error,
            "report_path": campaign.report_path,
            "failures": campaign.failures,
        })

    def _set_state(self, campaign: Campaign, state: str, *,
                   error: Optional[str] = None) -> None:
        with self._lock:
            campaign.state = state
            if error is not None:
                campaign.error = error
            self._journal_state(campaign)
        if state in _TERMINAL:
            self._post_finish(campaign)

    def _launch(self, campaign: Campaign) -> None:
        self._loop.run_in_executor(self._pool, self._run_campaign, campaign)

    def _campaign_journal(self, campaign: Campaign, config, behavior):
        """Create or resume the campaign's unit journal (sharded when the
        spec schedules onto shards)."""
        from repro.journal import JournalWriter
        from repro.sched.shards import ShardedJournal, segment_path

        key = protocol.spec_campaign_key(campaign.spec, config, behavior)
        base = os.path.join(self.root, f"{campaign.id}.journal")
        if campaign.spec["scheduler"] == "shards":
            if os.path.exists(segment_path(base, 0)):
                return ShardedJournal.resume(base, key)
            return ShardedJournal.create(
                base, key, shards=campaign.spec.get("workers") or 2
            )
        if os.path.exists(base):
            return JournalWriter.resume(base, key)
        return JournalWriter.create(base, key)

    def _run_campaign(self, campaign: Campaign) -> None:
        """Worker-thread body: run one campaign end to end."""
        from repro.harness.engine import CampaignInterrupted
        from repro.obs.live import LiveTelemetry, NDJSONStreamSink

        live = None
        try:
            self._set_state(campaign, "running")
            config = protocol.spec_config(campaign.spec)
            behavior = protocol.spec_behavior(campaign.spec, config)
            backend = protocol.spec_backend(campaign.spec)
            suite = protocol.spec_suite(campaign.spec)
            stream_path = os.path.join(self.root, f"{campaign.id}.ndjson")
            live = LiveTelemetry(
                sinks=[NDJSONStreamSink(stream_path),
                       _BroadcastSink(self, campaign)],
                min_interval_s=0.2,
            )
            journal = self._campaign_journal(campaign, config, behavior)
            try:
                report = backend.run(
                    behavior, config, suite,
                    journal=journal, cancel=campaign.cancel, live=live,
                )
            finally:
                journal.close()
            live.end(report)
            fmt = campaign.spec["format"]
            extension = protocol.REPORT_EXTENSIONS[fmt]
            report_path = os.path.join(
                self.root, f"{campaign.id}.report.{extension}"
            )
            from repro.ioutil import atomic_write_text

            atomic_write_text(report_path, protocol.render_report(report, fmt))
            with self._lock:
                campaign.report_path = report_path
                campaign.failures = bool(report.failures())
            self._set_state(campaign, "done")
        except CampaignInterrupted:
            if live is not None:
                live.end(None)
            if self._draining:
                # server shutdown, not a client cancel: stay resumable
                self._set_state(campaign, "queued")
            else:
                self._set_state(campaign, "cancelled")
        except BaseException as err:
            if live is not None:
                live.end(None)
            self._set_state(campaign, "failed", error=repr(err))

    # ------------------------------------------------- loop-side record fanout

    def _post_record(self, campaign: Campaign, record: dict) -> None:
        try:
            self._loop.call_soon_threadsafe(self._fanout, campaign, record)
        except RuntimeError:  # loop already closed (late shutdown emission)
            pass

    def _post_finish(self, campaign: Campaign) -> None:
        try:
            self._loop.call_soon_threadsafe(self._finish_subscribers, campaign)
        except RuntimeError:
            pass

    def _fanout(self, campaign: Campaign, record: dict) -> None:
        campaign.records.append(record)
        if record.get("type") == "snapshot":
            campaign.last_snapshot = record
        for queue in campaign.subscribers:
            queue.put_nowait(record)

    def _finish_subscribers(self, campaign: Campaign) -> None:
        for queue in campaign.subscribers:
            queue.put_nowait(None)
        campaign.subscribers = []

    # ---------------------------------------------------------------- queries

    def _resume_hint(self, campaign: Campaign) -> Optional[str]:
        if campaign.state not in ("cancelled", "failed"):
            return None
        return (f"repro submit --server {self.host}:{self.port} "
                f"--resume {campaign.id}")

    def campaign_info(self, campaign: Campaign) -> dict:
        with self._lock:
            spec = campaign.spec
            info = {
                "id": campaign.id,
                "state": campaign.state,
                "suite": spec["suite"],
                "compiler": (f"{spec['vendor']} {spec['version']}"
                             if spec.get("vendor") else "reference"),
                "scheduler": spec["scheduler"],
                "format": spec["format"],
                "error": campaign.error,
                "report_path": campaign.report_path,
                "exit": campaign.exit_code,
                "resume": self._resume_hint(campaign),
            }
        snapshot = campaign.last_snapshot
        if snapshot is not None:
            info["progress"] = {
                key: snapshot.get(key)
                for key in ("total_units", "units_done", "passed", "failed",
                            "harness_errors", "final")
            }
        return info

    def _get(self, cid) -> Campaign:
        if not isinstance(cid, str):
            raise ProtocolError("missing campaign id")
        with self._lock:
            campaign = self._campaigns.get(cid)
        if campaign is None:
            raise ProtocolError(f"no such campaign: {cid!r}")
        return campaign

    # ------------------------------------------------------------ request ops

    def _op_submit(self, request: dict) -> dict:
        if self._draining:
            raise ProtocolError("server is shutting down")
        resume = request.get("resume")
        if resume is not None:
            campaign = self._get(resume)
            if not campaign.terminal:
                raise ProtocolError(
                    f"campaign {campaign.id} is {campaign.state}; only "
                    "cancelled/failed/done campaigns can be re-submitted"
                )
            from repro.harness.engine import CancelToken

            with self._lock:
                campaign.cancel = CancelToken()
                campaign.error = None
                campaign.failures = None
                campaign.state = "queued"
                campaign.records = []
                campaign.last_snapshot = None
                self._journal_state(campaign)
        else:
            spec = normalize_spec(request.get("spec") or {})
            with self._lock:
                cid = f"c{self._next_id:04d}"
                self._next_id += 1
                campaign = Campaign(cid, spec)
                self._campaigns[cid] = campaign
                self._journal_state(campaign)
        self._launch(campaign)
        return {"ok": True, "id": campaign.id, "state": campaign.state}

    def _op_status(self, request: dict) -> dict:
        cid = request.get("id")
        if cid is not None:
            return {"ok": True, "campaign": self.campaign_info(self._get(cid))}
        with self._lock:
            campaigns = [self._campaigns[c] for c in sorted(self._campaigns)]
        return {
            "ok": True,
            "format": SERVER_FORMAT,
            "campaigns": [self.campaign_info(c) for c in campaigns],
        }

    def _op_cancel(self, request: dict) -> dict:
        campaign = self._get(request.get("id"))
        if campaign.terminal:
            raise ProtocolError(
                f"campaign {campaign.id} already {campaign.state}"
            )
        campaign.cancel.cancel(
            f"campaign {campaign.id} cancelled by client request: "
            "in-flight units finished, remaining units not started"
        )
        return {
            "ok": True, "id": campaign.id, "state": campaign.state,
            "resume": (f"repro submit --server {self.host}:{self.port} "
                       f"--resume {campaign.id}"),
        }

    # --------------------------------------------------------- client handling

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                request = protocol.decode_line(line)
                op = request.get("op")
                if op == "ping":
                    writer.write(encode_line(
                        {"ok": True, "format": SERVER_FORMAT}
                    ))
                elif op == "submit":
                    writer.write(encode_line(self._op_submit(request)))
                elif op == "status":
                    writer.write(encode_line(self._op_status(request)))
                elif op == "cancel":
                    writer.write(encode_line(self._op_cancel(request)))
                elif op == "tail":
                    await self._op_tail(request, writer)
                else:
                    raise ProtocolError(f"unknown op {op!r}")
            except ProtocolError as err:
                writer.write(encode_line({"ok": False, "error": str(err)}))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _op_tail(self, request: dict,
                       writer: asyncio.StreamWriter) -> None:
        campaign = self._get(request.get("id"))
        queue: asyncio.Queue = asyncio.Queue()
        campaign.subscribers.append(queue)
        try:
            writer.write(encode_line({"ok": True, "id": campaign.id}))
            # let fan-out callbacks already scheduled on the loop land, so
            # the replay below is complete up to "now"
            await asyncio.sleep(0)
            await asyncio.sleep(0)
            replayed = list(campaign.records)
            seen = set()
            for record in replayed:
                seen.add(record.get("seq"))
                writer.write(encode_line({"record": record}))
            await writer.drain()
            finished = campaign.terminal
            while not finished:
                record = await queue.get()
                if record is None:
                    break
                if record.get("seq") in seen:
                    continue
                writer.write(encode_line({"record": record}))
                await writer.drain()
            writer.write(encode_line({
                "end": True,
                "state": campaign.state,
                "exit": campaign.exit_code,
                "resume": self._resume_hint(campaign),
            }))
        finally:
            if queue in campaign.subscribers:
                campaign.subscribers.remove(queue)


# ---------------------------------------------------------------------------
# embedding helpers (tests, CLI)
# ---------------------------------------------------------------------------


class ServerHandle:
    """A server running on a background thread (tests, smoke scripts)."""

    def __init__(self, server: CampaignServer,
                 loop: asyncio.AbstractEventLoop, thread: threading.Thread):
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def address(self) -> str:
        return f"{self.server.host}:{self.server.port}"

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self.loop
        ).result(timeout=120)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=120)


def serve_in_thread(root: str, host: str = "127.0.0.1", port: int = 0,
                    max_concurrent: int = 2) -> ServerHandle:
    """Start a :class:`CampaignServer` on a fresh event loop in a daemon
    thread; returns once the socket is bound."""
    ready = threading.Event()
    holder: dict = {}

    def main() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = CampaignServer(root, host=host, port=port,
                                max_concurrent=max_concurrent)
        loop.run_until_complete(server.start())
        holder["server"] = server
        holder["loop"] = loop
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=main, name="repro-server", daemon=True)
    thread.start()
    if not ready.wait(timeout=60):
        raise RuntimeError("campaign server failed to start within 60s")
    return ServerHandle(holder["server"], holder["loop"], thread)
