"""The asyncio campaign server (``repro serve``).

One process serves many concurrent campaign submissions: each campaign
runs on a :mod:`repro.sched` backend inside a bounded worker pool, owns
a per-campaign :class:`~repro.harness.engine.CancelToken` (cancelling
one client's campaign never touches its neighbours — the bugfix this
whole layer stands on), streams its ``repro.obs.live`` records to any
number of ``tail`` clients, and is journaled twice over:

* the *server journal* (``server.journal``, an ordinary
  :mod:`repro.journal` WAL keyed by campaign id, last-record-wins)
  records every submission spec and state transition, so a killed
  server restarts knowing exactly which campaigns were in flight;
* each campaign's *unit journal* (``<id>.journal``) records completed
  work units, so a re-enqueued campaign replays instead of re-running.

Threading model: the asyncio loop owns all client I/O and the
subscriber fan-out; campaigns run in a ``ThreadPoolExecutor`` and reach
the loop only via ``call_soon_threadsafe``.  Campaign state is guarded
by one lock because both sides read it.

Supervision (DESIGN §5i): every tail subscriber sits behind a *bounded*
queue with drop-oldest eviction — a stalled client costs at most
``tail_buffer`` records of memory, and the drop count is surfaced on
the stream's end line.  With ``watchdog_s`` set, a per-campaign
watchdog derives liveness from the campaign's live-telemetry fan-out:
no record within ``watchdog_s`` cancels the campaign's token and
re-queues it, up to ``restart_budget`` restarts, after which the
campaign is marked ``failed`` with a resume hint.  A ``fault_plan``
arms the server-side chaos sites (``conn``, ``frame``,
``slow_client``) against the wire protocol itself.
"""

from __future__ import annotations

import asyncio
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

from repro.server import protocol
from repro.server.protocol import (
    SERVER_FORMAT,
    ProtocolError,
    encode_line,
    normalize_spec,
    state_exit_code,
)

#: default TCP port ("repro" has 5 letters, v1 protocol, port space taste)
DEFAULT_PORT = 7781

#: default per-subscriber tail queue capacity (records, not bytes): deep
#: enough that a briefly-slow client misses nothing, shallow enough that
#: a stalled one cannot grow server memory
DEFAULT_TAIL_BUFFER = 512

_TERMINAL = ("done", "failed", "cancelled")


class _DropConnection(Exception):
    """Injected ``conn`` fault: drop the connection mid-frame.

    Carries the partial frame bytes the client observes before EOF —
    precisely the torn response a server crash between ``write`` and
    ``flush`` would leave on the wire.
    """

    def __init__(self, partial: bytes):
        super().__init__("injected connection drop mid-frame")
        self.partial = partial


class BoundedTailQueue:
    """A loop-thread-owned subscriber queue with drop-oldest eviction.

    ``put`` never blocks and never grows the queue past ``capacity``:
    when full, the oldest record is evicted and counted in ``dropped``.
    The tail op reports the final count on its end line, so a slow
    client *knows* its view has gaps instead of silently believing a
    truncated stream (the seq numbers also jump, which ``repro obs``
    readers tolerate).
    """

    def __init__(self, capacity: int = DEFAULT_TAIL_BUFFER):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1 (got {capacity})")
        self.capacity = capacity
        self.dropped = 0
        self._queue: asyncio.Queue = asyncio.Queue()

    def put(self, item) -> None:
        while self._queue.qsize() >= self.capacity:
            try:
                self._queue.get_nowait()
            except asyncio.QueueEmpty:  # pragma: no cover - single thread
                break
            self.dropped += 1
        self._queue.put_nowait(item)

    async def get(self):
        return await self._queue.get()


class Campaign:
    """One submitted campaign and its server-side plumbing."""

    def __init__(self, cid: str, spec: dict, state: str = "queued"):
        self.id = cid
        self.spec = spec
        self.state = state
        self.error: Optional[str] = None
        self.report_path: Optional[str] = None
        #: did the finished report contain failures (exit-code split)
        self.failures: Optional[bool] = None
        from repro.harness.engine import CancelToken

        self.cancel = CancelToken()
        #: bounded replay buffer of live records (loop-thread owned); a
        #: long campaign keeps only the most recent window in memory —
        #: the full stream is on disk in ``<id>.ndjson``
        self.records: "deque" = _record_buffer()
        #: replay-buffer evictions (records a late tail cannot replay)
        self.records_dropped = 0
        self.last_snapshot: Optional[dict] = None
        #: tail subscribers (loop-thread owned bounded queues)
        self.subscribers: List[BoundedTailQueue] = []
        #: watchdog bookkeeping: fan-out records seen (loop-thread owned)
        #: and restarts consumed so far
        self.progress_seq = 0
        self.restarts = 0
        #: campaign-lifetime sequence: each run's telemetry restarts its
        #: own ``seq`` at 0, so the fan-out re-stamps records with this
        #: monotone counter — tail replay dedup and the client's
        #: reconnect dedup stay correct across requeues and resumes
        self.next_seq = 0
        #: set by the watchdog before cancelling, consumed by the worker
        #: thread to requeue instead of marking the campaign cancelled
        self.watchdog_fired = False
        #: canonical campaign-key fingerprint (idempotent resubmission)
        self.submit_key: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL

    @property
    def exit_code(self) -> Optional[int]:
        return state_exit_code(self.state, self.failures)


def _record_buffer():
    from collections import deque

    return deque(maxlen=4096)


def _submit_key(spec: dict) -> str:
    """Fingerprint of the spec's canonical campaign key (the unit
    journal's header key): two submissions with the same fingerprint
    would run — and journal — the identical campaign, which is what
    makes a retried ``submit`` safe to dedup against an active one."""
    import hashlib
    import json

    from repro.journal import canonicalize

    key = canonicalize(protocol.spec_campaign_key(spec))
    body = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]


class _BroadcastSink:
    """A live-telemetry sink forwarding records into the asyncio loop."""

    def __init__(self, server: "CampaignServer", campaign: Campaign):
        self._server = server
        self._campaign = campaign

    def emit(self, record: dict) -> None:
        self._server._post_record(self._campaign, record)

    def close(self, final: Optional[dict] = None) -> None:
        pass


class CampaignServer:
    """The campaign server: see module docstring."""

    def __init__(self, root: str, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT, max_concurrent: int = 2,
                 watchdog_s: Optional[float] = None,
                 restart_budget: int = 2,
                 tail_buffer: int = DEFAULT_TAIL_BUFFER,
                 fault_plan=None):
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1 (got {max_concurrent})"
            )
        if watchdog_s is not None and watchdog_s <= 0:
            raise ValueError(f"watchdog_s must be > 0 (got {watchdog_s})")
        if restart_budget < 0:
            raise ValueError(
                f"restart_budget must be >= 0 (got {restart_budget})"
            )
        self.root = root
        self.host = host
        self.port = port
        self.max_concurrent = max_concurrent
        #: campaign liveness timeout: no live record for this long while
        #: ``running`` cancels + re-queues the campaign (None = no watchdog)
        self.watchdog_s = watchdog_s
        #: watchdog restarts tolerated per campaign before it is marked
        #: ``failed`` with a resume hint
        self.restart_budget = restart_budget
        self.tail_buffer = tail_buffer
        from repro.faults import FaultInjector, NULL_INJECTOR

        #: server-side chaos sites (conn / frame / slow_client); the
        #: campaign-side plan travels in each submission's config
        self.faults = (FaultInjector(fault_plan)
                       if fault_plan is not None and fault_plan.active
                       else NULL_INJECTOR)
        #: per-(site, key) check counters: the attempt number of every
        #: server-side site decision, so a transient fault (max_fires=1)
        #: fires on the first request and heals on the client's retry
        self._fault_attempts: Dict[tuple, int] = {}
        self._campaigns: Dict[str, Campaign] = {}
        self._next_id = 1
        self._lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=max_concurrent, thread_name_prefix="campaign"
        )
        self._journal = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False

    # -------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Open (or resume) the server journal, bind the socket, and
        re-enqueue every campaign a previous life left unfinished."""
        os.makedirs(self.root, exist_ok=True)
        self._loop = asyncio.get_running_loop()
        resumed = self._open_server_journal()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        sock = self._server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]
        for campaign in resumed:
            self._launch(campaign)

    async def serve_forever(self) -> None:
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Graceful stop: drain every campaign, keep their journaled
        states resumable (a queued/running campaign restarts as queued
        on the next ``repro serve`` over the same directory)."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        with self._lock:
            campaigns = list(self._campaigns.values())
        for campaign in campaigns:
            if not campaign.terminal:
                campaign.cancel.cancel(
                    "server shutting down: campaign re-queued for the "
                    "next serve over this directory"
                )
        await self._loop.run_in_executor(
            None, lambda: self._pool.shutdown(wait=True)
        )
        if self._journal is not None:
            self._journal.close()

    def _open_server_journal(self) -> List[Campaign]:
        import repro
        from repro.journal import JOURNAL_FORMAT, JournalWriter

        path = os.path.join(self.root, "server.journal")
        key = {"format": JOURNAL_FORMAT, "command": "serve",
               "code_version": repro.__version__}
        resumed: List[Campaign] = []
        if os.path.exists(path):
            self._journal = JournalWriter.resume(path, key)
            for cid in sorted(self._journal.records):
                payload = self._journal.records[cid]
                campaign = Campaign(cid, payload["spec"],
                                    state=payload["state"])
                campaign.error = payload.get("error")
                campaign.report_path = payload.get("report_path")
                campaign.failures = payload.get("failures")
                self._campaigns[cid] = campaign
                number = int(cid.lstrip("c") or 0)
                self._next_id = max(self._next_id, number + 1)
                if campaign.state in ("queued", "running"):
                    # in flight when the last server died: run it again —
                    # its unit journal replays everything already done
                    campaign.state = "queued"
                    self._journal_state(campaign)
                    resumed.append(campaign)
        else:
            self._journal = JournalWriter.create(path, key)
        return resumed

    # ------------------------------------------------------- campaign driving

    def _journal_state(self, campaign: Campaign) -> None:
        self._journal.append(campaign.id, {
            "spec": campaign.spec,
            "state": campaign.state,
            "error": campaign.error,
            "report_path": campaign.report_path,
            "failures": campaign.failures,
        })

    def _set_state(self, campaign: Campaign, state: str, *,
                   error: Optional[str] = None) -> None:
        with self._lock:
            campaign.state = state
            if error is not None:
                campaign.error = error
            self._journal_state(campaign)
        if state in _TERMINAL:
            self._post_finish(campaign)

    def _launch(self, campaign: Campaign) -> None:
        # always called on the loop thread (start() and request handlers)
        self._loop.run_in_executor(self._pool, self._run_campaign, campaign)
        if self.watchdog_s is not None:
            self._loop.create_task(self._watchdog(campaign))

    def _relaunch(self, campaign: Campaign) -> None:
        """Loop-side requeue: reset the replay buffer (the rerun streams
        fresh records; ``next_seq`` keeps the seq space monotone) and
        launch again."""
        campaign.records = _record_buffer()
        campaign.last_snapshot = None
        self._launch(campaign)

    async def _watchdog(self, campaign: Campaign) -> None:
        """Per-campaign liveness supervisor (loop side).

        Liveness is derived from the campaign's live-telemetry fan-out:
        every record bumps ``progress_seq``.  While the campaign is
        ``running``, no bump within ``watchdog_s`` means it is stuck —
        a stalled unit, a hung shard, a wedged backend — so the watchdog
        cancels the campaign's token and re-queues it (completed units
        replay from the unit journal).  After ``restart_budget``
        restarts it stops trusting restarts and the campaign lands
        ``failed`` with a resume hint.  One watchdog task supervises one
        launch; a requeue launches a fresh one.
        """
        interval = min(self.watchdog_s / 4.0, 1.0)
        last_seq = campaign.progress_seq
        last_change = self._loop.time()
        while not campaign.terminal:
            await asyncio.sleep(interval)
            if campaign.terminal or self._draining:
                return
            if campaign.watchdog_fired:
                return  # fired (possibly by an earlier task); a relaunch
                        # brings its own watchdog
            if campaign.progress_seq != last_seq or campaign.state != "running":
                # progress, or not our problem yet (queued for a pool slot)
                last_seq = campaign.progress_seq
                last_change = self._loop.time()
                continue
            idle = self._loop.time() - last_change
            if idle < self.watchdog_s:
                continue
            campaign.watchdog_fired = True
            campaign.restarts += 1
            budget_left = campaign.restarts <= self.restart_budget
            campaign.cancel.cancel(
                f"watchdog: campaign {campaign.id} made no progress for "
                f"{idle:.1f}s (budget {self.watchdog_s:g}s); "
                + ("cancelling for restart "
                   f"{campaign.restarts}/{self.restart_budget}"
                   if budget_left else
                   f"restart budget ({self.restart_budget}) exhausted")
            )
            return

    def _campaign_journal(self, campaign: Campaign, config, behavior):
        """Create or resume the campaign's unit journal (sharded when the
        spec schedules onto shards).  The submission's fault plan arms
        the journal/segment sites, so server-hosted campaigns exercise
        the same crash-consistency paths as CLI ones."""
        from repro.faults import FaultInjector, NULL_INJECTOR
        from repro.journal import JournalWriter
        from repro.sched.shards import ShardedJournal, segment_path

        plan = config.fault_plan
        faults = (FaultInjector(plan)
                  if plan is not None and plan.active else NULL_INJECTOR)
        key = protocol.spec_campaign_key(campaign.spec, config, behavior)
        base = os.path.join(self.root, f"{campaign.id}.journal")
        if campaign.spec["scheduler"] == "shards":
            if os.path.exists(segment_path(base, 0)):
                return ShardedJournal.resume(base, key, faults=faults)
            return ShardedJournal.create(
                base, key, shards=campaign.spec.get("workers") or 2,
                faults=faults,
            )
        if os.path.exists(base):
            return JournalWriter.resume(base, key, faults=faults)
        return JournalWriter.create(base, key, faults=faults)

    def _run_campaign(self, campaign: Campaign) -> None:
        """Worker-thread body: run one campaign end to end."""
        from repro.harness.engine import CampaignInterrupted
        from repro.obs.live import LiveTelemetry, NDJSONStreamSink

        live = None
        try:
            self._set_state(campaign, "running")
            config = protocol.spec_config(campaign.spec)
            behavior = protocol.spec_behavior(campaign.spec, config)
            backend = protocol.spec_backend(campaign.spec)
            suite = protocol.spec_suite(campaign.spec)
            stream_path = os.path.join(self.root, f"{campaign.id}.ndjson")
            live = LiveTelemetry(
                sinks=[NDJSONStreamSink(stream_path),
                       _BroadcastSink(self, campaign)],
                min_interval_s=0.2,
            )
            journal = self._campaign_journal(campaign, config, behavior)
            try:
                report = backend.run(
                    behavior, config, suite,
                    journal=journal, cancel=campaign.cancel, live=live,
                )
            finally:
                journal.close()
            live.end(report)
            fmt = campaign.spec["format"]
            extension = protocol.REPORT_EXTENSIONS[fmt]
            report_path = os.path.join(
                self.root, f"{campaign.id}.report.{extension}"
            )
            from repro.ioutil import atomic_write_text

            atomic_write_text(report_path, protocol.render_report(report, fmt))
            with self._lock:
                campaign.report_path = report_path
                campaign.failures = bool(report.failures())
            self._set_state(campaign, "done")
        except CampaignInterrupted:
            if live is not None:
                live.end(None)
            if self._draining:
                # server shutdown, not a client cancel: stay resumable
                self._set_state(campaign, "queued")
            elif campaign.watchdog_fired:
                campaign.watchdog_fired = False
                if campaign.restarts <= self.restart_budget:
                    # stuck, not dead: requeue — completed units replay
                    # from the unit journal, so the restart loses nothing
                    from repro.harness.engine import CancelToken

                    with self._lock:
                        campaign.cancel = CancelToken()
                        campaign.state = "queued"
                        self._journal_state(campaign)
                    self._loop.call_soon_threadsafe(self._relaunch, campaign)
                else:
                    self._set_state(
                        campaign, "failed",
                        error=(f"watchdog: no progress within "
                               f"{self.watchdog_s:g}s and restart budget "
                               f"({self.restart_budget}) exhausted after "
                               f"{campaign.restarts} restart(s); journaled "
                               "units are intact — resume to continue"),
                    )
            else:
                self._set_state(campaign, "cancelled")
        except BaseException as err:
            if live is not None:
                live.end(None)
            self._set_state(campaign, "failed", error=repr(err))

    # ------------------------------------------------- loop-side record fanout

    def _post_record(self, campaign: Campaign, record: dict) -> None:
        try:
            self._loop.call_soon_threadsafe(self._fanout, campaign, record)
        except RuntimeError:  # loop already closed (late shutdown emission)
            pass

    def _post_finish(self, campaign: Campaign) -> None:
        try:
            self._loop.call_soon_threadsafe(self._finish_subscribers, campaign)
        except RuntimeError:
            pass

    def _fanout(self, campaign: Campaign, record: dict) -> None:
        record = dict(record, seq=campaign.next_seq)
        campaign.next_seq += 1
        campaign.progress_seq += 1
        if (campaign.records.maxlen is not None
                and len(campaign.records) >= campaign.records.maxlen):
            campaign.records_dropped += 1
        campaign.records.append(record)
        if record.get("type") == "snapshot":
            campaign.last_snapshot = record
        for queue in campaign.subscribers:
            queue.put(record)

    def _finish_subscribers(self, campaign: Campaign) -> None:
        for queue in campaign.subscribers:
            queue.put(None)
        campaign.subscribers = []

    # ---------------------------------------------------------------- queries

    def _resume_hint(self, campaign: Campaign) -> Optional[str]:
        if campaign.state not in ("cancelled", "failed"):
            return None
        return (f"repro submit --server {self.host}:{self.port} "
                f"--resume {campaign.id}")

    def campaign_info(self, campaign: Campaign) -> dict:
        with self._lock:
            spec = campaign.spec
            info = {
                "id": campaign.id,
                "state": campaign.state,
                "suite": spec["suite"],
                "compiler": (f"{spec['vendor']} {spec['version']}"
                             if spec.get("vendor") else "reference"),
                "scheduler": spec["scheduler"],
                "format": spec["format"],
                "error": campaign.error,
                "report_path": campaign.report_path,
                "exit": campaign.exit_code,
                "resume": self._resume_hint(campaign),
                "restarts": campaign.restarts,
            }
        snapshot = campaign.last_snapshot
        if snapshot is not None:
            info["progress"] = {
                key: snapshot.get(key)
                for key in ("total_units", "units_done", "passed", "failed",
                            "harness_errors", "final")
            }
        return info

    def _get(self, cid) -> Campaign:
        if not isinstance(cid, str):
            raise ProtocolError("missing campaign id")
        with self._lock:
            campaign = self._campaigns.get(cid)
        if campaign is None:
            raise ProtocolError(f"no such campaign: {cid!r}")
        return campaign

    # ------------------------------------------------------------ request ops

    def _op_submit(self, request: dict) -> dict:
        if self._draining:
            raise ProtocolError("server is shutting down")
        resume = request.get("resume")
        if resume is not None:
            campaign = self._get(resume)
            if not campaign.terminal:
                raise ProtocolError(
                    f"campaign {campaign.id} is {campaign.state}; only "
                    "cancelled/failed/done campaigns can be re-submitted"
                )
            from repro.harness.engine import CancelToken

            with self._lock:
                campaign.cancel = CancelToken()
                campaign.error = None
                campaign.failures = None
                campaign.state = "queued"
                campaign.records = _record_buffer()
                campaign.last_snapshot = None
                campaign.restarts = 0
                campaign.watchdog_fired = False
                self._journal_state(campaign)
        else:
            spec = normalize_spec(request.get("spec") or {})
            submit_key = _submit_key(spec)
            if request.get("idempotent"):
                # a client retrying a submit whose response was lost must
                # not enqueue the campaign twice: an active campaign with
                # the same canonical campaign key IS that submission
                with self._lock:
                    for existing in self._campaigns.values():
                        if (existing.submit_key == submit_key
                                and not existing.terminal):
                            return {"ok": True, "id": existing.id,
                                    "state": existing.state,
                                    "deduped": True}
            with self._lock:
                cid = f"c{self._next_id:04d}"
                self._next_id += 1
                campaign = Campaign(cid, spec)
                campaign.submit_key = submit_key
                self._campaigns[cid] = campaign
                self._journal_state(campaign)
        self._launch(campaign)
        return {"ok": True, "id": campaign.id, "state": campaign.state}

    def _op_status(self, request: dict) -> dict:
        cid = request.get("id")
        if cid is not None:
            return {"ok": True, "campaign": self.campaign_info(self._get(cid))}
        with self._lock:
            campaigns = [self._campaigns[c] for c in sorted(self._campaigns)]
        return {
            "ok": True,
            "format": SERVER_FORMAT,
            "campaigns": [self.campaign_info(c) for c in campaigns],
        }

    def _op_cancel(self, request: dict) -> dict:
        campaign = self._get(request.get("id"))
        if campaign.terminal:
            raise ProtocolError(
                f"campaign {campaign.id} already {campaign.state}"
            )
        campaign.cancel.cancel(
            f"campaign {campaign.id} cancelled by client request: "
            "in-flight units finished, remaining units not started"
        )
        return {
            "ok": True, "id": campaign.id, "state": campaign.state,
            "resume": (f"repro submit --server {self.host}:{self.port} "
                       f"--resume {campaign.id}"),
        }

    # --------------------------------------------------------- client handling

    def _fault_attempt(self, site: str, key: str) -> int:
        """Attempt number of the next (site, key) decision: each check is
        one attempt, so a transient server-side fault (max_fires=1) fires
        on the first request and heals on the client's retry."""
        attempt = self._fault_attempts.get((site, key), 0)
        self._fault_attempts[(site, key)] = attempt + 1
        return attempt

    def _frame_bytes(self, payload: dict, key: str) -> bytes:
        """Encode one response line, subject to the wire chaos sites:
        ``frame`` garbles the line (newline framing kept, bytes ruined),
        ``conn`` raises :class:`_DropConnection` carrying the partial
        frame the client will see before the socket closes."""
        line = encode_line(payload)
        if self.faults.enabled:
            if self.faults.frame_site(key, self._fault_attempt("frame", key)):
                line = b"\xff\x00 injected garbled frame \xf7\n"
            if self.faults.conn_site(key, self._fault_attempt("conn", key)):
                raise _DropConnection(line[: max(1, len(line) // 2)])
        return line

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                request = protocol.decode_line(line)
                op = request.get("op")
                if op == "ping":
                    writer.write(self._frame_bytes(
                        {"ok": True, "format": SERVER_FORMAT}, "ping"
                    ))
                elif op == "submit":
                    writer.write(self._frame_bytes(self._op_submit(request),
                                                   "submit"))
                elif op == "status":
                    writer.write(self._frame_bytes(self._op_status(request),
                                                   "status"))
                elif op == "cancel":
                    writer.write(self._frame_bytes(self._op_cancel(request),
                                                   "cancel"))
                elif op == "tail":
                    await self._op_tail(request, writer)
                else:
                    raise ProtocolError(f"unknown op {op!r}")
            except ProtocolError as err:
                writer.write(encode_line({"ok": False, "error": str(err)}))
            except _DropConnection as drop:
                # injected mid-frame connection drop: flush the partial
                # frame so the client observes exactly a torn response
                writer.write(drop.partial)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _op_tail(self, request: dict,
                       writer: asyncio.StreamWriter) -> None:
        campaign = self._get(request.get("id"))
        tail_key = f"tail:{campaign.id}"
        queue = BoundedTailQueue(self.tail_buffer)
        campaign.subscribers.append(queue)
        try:
            if (self.faults.enabled and self.faults.slow_client_site(
                    tail_key, self._fault_attempt("slow_client", tail_key))):
                # a stalled subscriber: records pile into (and overflow)
                # the bounded queue while this client reads nothing
                await asyncio.sleep(self.faults.plan.stall_s)
            try:
                writer.write(self._frame_bytes(
                    {"ok": True, "id": campaign.id}, tail_key
                ))
                # let fan-out callbacks already scheduled on the loop land,
                # so the replay below is complete up to "now"
                await asyncio.sleep(0)
                await asyncio.sleep(0)
                replayed = list(campaign.records)
                seen = set()
                for record in replayed:
                    seen.add(record.get("seq"))
                    writer.write(self._frame_bytes({"record": record},
                                                   tail_key))
                await writer.drain()
                finished = campaign.terminal
                while not finished:
                    record = await queue.get()
                    if record is None:
                        break
                    if record.get("seq") in seen:
                        continue
                    writer.write(self._frame_bytes({"record": record},
                                                   tail_key))
                    await writer.drain()
                writer.write(encode_line({
                    "end": True,
                    "state": campaign.state,
                    "exit": campaign.exit_code,
                    "resume": self._resume_hint(campaign),
                    # this subscriber's queue evictions (its own gaps) and
                    # replay-buffer evictions (gaps every late tail shares)
                    "dropped": queue.dropped,
                    "replay_dropped": campaign.records_dropped,
                }))
            except _DropConnection as drop:
                writer.write(drop.partial)
                await writer.drain()
        finally:
            if queue in campaign.subscribers:
                campaign.subscribers.remove(queue)


# ---------------------------------------------------------------------------
# embedding helpers (tests, CLI)
# ---------------------------------------------------------------------------


class ServerHandle:
    """A server running on a background thread (tests, smoke scripts)."""

    def __init__(self, server: CampaignServer,
                 loop: asyncio.AbstractEventLoop, thread: threading.Thread):
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def address(self) -> str:
        return f"{self.server.host}:{self.server.port}"

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self.loop
        ).result(timeout=120)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=120)


def serve_in_thread(root: str, host: str = "127.0.0.1", port: int = 0,
                    max_concurrent: int = 2,
                    watchdog_s: Optional[float] = None,
                    restart_budget: int = 2,
                    tail_buffer: int = DEFAULT_TAIL_BUFFER,
                    fault_plan=None) -> ServerHandle:
    """Start a :class:`CampaignServer` on a fresh event loop in a daemon
    thread; returns once the socket is bound."""
    ready = threading.Event()
    holder: dict = {}

    def main() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = CampaignServer(root, host=host, port=port,
                                max_concurrent=max_concurrent,
                                watchdog_s=watchdog_s,
                                restart_budget=restart_budget,
                                tail_buffer=tail_buffer,
                                fault_plan=fault_plan)
        loop.run_until_complete(server.start())
        holder["server"] = server
        holder["loop"] = loop
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=main, name="repro-server", daemon=True)
    thread.start()
    if not ready.wait(timeout=60):
        raise RuntimeError("campaign server failed to start within 60s")
    return ServerHandle(holder["server"], holder["loop"], thread)
