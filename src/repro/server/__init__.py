"""``repro.server`` — the campaign server and its client (DESIGN §5h).

A long-lived ``repro serve`` process accepts concurrent campaign
submissions over a newline-delimited-JSON TCP protocol, runs each on a
:mod:`repro.sched` backend with its own
:class:`~repro.harness.engine.CancelToken`, streams ``repro.obs.live``
records to ``tail`` clients, and journals every campaign so a killed
server resumes cleanly.
"""

from repro.server.app import (
    DEFAULT_PORT,
    Campaign,
    CampaignServer,
    ServerHandle,
    serve_in_thread,
)
from repro.server.client import (
    CampaignClient,
    ServerError,
    parse_address,
)
from repro.server.protocol import (
    EXIT_CANCELLED,
    EXIT_DONE,
    EXIT_FAILED,
    EXIT_FAILURES,
    REPORT_FORMATS,
    SERVER_FORMAT,
    STATES,
    ProtocolError,
    normalize_spec,
    state_exit_code,
)

__all__ = [
    "DEFAULT_PORT",
    "Campaign",
    "CampaignServer",
    "ServerHandle",
    "serve_in_thread",
    "CampaignClient",
    "ServerError",
    "parse_address",
    "EXIT_CANCELLED",
    "EXIT_DONE",
    "EXIT_FAILED",
    "EXIT_FAILURES",
    "REPORT_FORMATS",
    "SERVER_FORMAT",
    "STATES",
    "ProtocolError",
    "normalize_spec",
    "state_exit_code",
]
