"""Command-line interface.

The user-facing face of the harness, covering the feature bullets of
Section III (compiler configuration, feature selection, result formats):

* ``repro list-features`` — the OpenACC 1.0 feature tree with coverage;
* ``repro list-vendors`` — simulated vendor versions and bug counts;
* ``repro generate`` — emit the generated functional/cross programs of a
  template;
* ``repro validate`` — run the suite against the reference or a vendor
  version, in any output format (text/html/csv/bugs);
* ``repro sweep`` — a Fig. 8-style pass-rate sweep over a vendor;
* ``repro table1`` — the Table I bug-count table;
* ``repro titan`` — a Section VII production sweep on the simulated
  cluster;
* ``repro trace`` — summarize or render a trace recorded with
  ``validate/titan --trace FILE.jsonl [--profile]``;
* ``repro journal inspect`` — examine the crash-safe campaign journal
  written by ``validate/titan --journal FILE`` (resumable with
  ``--resume FILE``);
* ``repro obs tail`` — follow or summarize the live-telemetry NDJSON
  stream written by ``validate/titan --live-stream FILE`` (which also
  accept ``--status`` for a TTY progress line and ``--prom FILE`` for a
  Prometheus textfile);
* ``repro obs perf`` — render the committed bench history
  (``benchmarks/BENCH_history.jsonl``) as a perf-trajectory HTML page.

Invoke as ``python -m repro <command> ...``.
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import List, Optional

from repro.analysis import table1_counts, vendor_pass_rates
from repro.compiler import BACKENDS as INTERPRETER_BACKENDS
from repro.compiler import Compiler, CompilerBehavior
from repro.compiler.vendors import VENDORS, vendor_version
from repro.faults import FaultPlan, InjectedJournalTear
from repro.harness import (
    CampaignInterrupted,
    EXECUTION_POLICIES,
    EmptySelectionError,
    HarnessConfig,
    ValidationRunner,
    render_bug_report,
    render_csv,
    render_html,
    render_metrics_csv,
    render_metrics_text,
    render_text,
    request_drain,
    reset_drain,
)
from repro.ioutil import atomic_write_text
from repro.sched import SCHEDULERS as _SCHEDULERS
from repro.spec.features import OPENACC_10
from repro.suite import openacc10_suite
from repro.templates import generate_cross, generate_functional


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (pool sizes, node/sample counts)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _fraction(text: str) -> float:
    """argparse type: a float in [0, 1] (degraded-node fraction)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in [0, 1], got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type: an integer >= 0 (retry budgets, recheck counts)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: a float > 0 (wall-clock budgets)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _fault_plan(text: str) -> FaultPlan:
    """argparse type: a fault-injection spec, e.g. 'worker=0.5,seed=7'."""
    try:
        return FaultPlan.parse(text)
    except ValueError as err:
        raise argparse.ArgumentTypeError(str(err))


def _make_tracer(args):
    """Build a Tracer when ``--trace``/``--profile`` ask for one."""
    if not (args.trace or args.profile):
        return None
    from repro.obs import Tracer

    return Tracer(profile=args.profile)


def _finish_trace(args, tracer, **meta) -> None:
    if tracer is None or not args.trace:
        return
    from repro.obs import write_trace

    write_trace(args.trace, tracer,
                meta=dict(meta, profile=args.profile))
    print(f"wrote {args.trace}")


def _open_journal(args, campaign: dict, faults, tracer):
    """Create or resume the campaign journal per ``--journal``/``--resume``.

    Returns None when neither flag was given.  Journal load/mismatch
    problems surface as :class:`~repro.journal.JournalError` — the caller
    maps them to exit code 1.
    """
    from repro.journal import JournalWriter

    if getattr(args, "scheduler", "local") == "shards":
        # shard campaigns journal into per-shard WAL segments
        from repro.sched import ShardedJournal

        if args.resume:
            return ShardedJournal.resume(args.resume, campaign,
                                         tracer=tracer, faults=faults)
        if args.journal:
            return ShardedJournal.create(args.journal, campaign,
                                         shards=args.workers,
                                         tracer=tracer, faults=faults)
        return None
    if args.resume:
        return JournalWriter.resume(args.resume, campaign,
                                    tracer=tracer, faults=faults)
    if args.journal:
        return JournalWriter.create(args.journal, campaign,
                                    tracer=tracer, faults=faults)
    return None


def _install_drain_handlers() -> list:
    """Route SIGINT/SIGTERM to a graceful drain while a journal is active.

    The engines finish in-flight units (each journaled on completion) and
    raise :class:`CampaignInterrupted`; the command then exits 3 with a
    resume hint instead of dying mid-write.  Returns the displaced
    handlers for :func:`_restore_handlers`; empty when not in the main
    thread (signals cannot be installed there — the drain still works via
    injected faults, just not via Ctrl-C).
    """
    reset_drain()
    displaced = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            displaced.append((signum, signal.signal(signum, request_drain)))
        except ValueError:  # not the main thread (e.g. tests)
            break
    return displaced


def _restore_handlers(displaced: list) -> None:
    for signum, handler in displaced:
        try:
            signal.signal(signum, handler)
        except ValueError:
            pass


def _resumable_notice(journal, command: str) -> int:
    """Close the journal and tell the user how to pick the campaign up."""
    journal.close()
    done = len(journal.records)
    print(f"interrupted: {done} unit(s) journaled; resume with "
          f"`repro {command} --resume {journal.path}`", file=sys.stderr)
    return 3


def _behavior(args) -> CompilerBehavior:
    if args.vendor:
        return vendor_version(args.vendor, args.version).behavior(args.language)
    return CompilerBehavior()


def _config(args) -> HarnessConfig:
    return HarnessConfig(
        iterations=args.iterations,
        run_cross=not args.no_cross,
        languages=(args.language,) if args.language else ("c", "fortran"),
        feature_prefixes=args.features or None,
        policy=args.policy,
        workers=args.workers,
        compile_cache=not args.no_compile_cache,
        retries=args.retries,
        template_timeout_s=args.timeout_s,
        fault_plan=args.inject_faults,
        lint=getattr(args, "lint", False),
        backend=getattr(args, "backend", "tree"),
        live_stream=getattr(args, "live_stream", None),
        status=getattr(args, "status", False),
        prom=getattr(args, "prom", None),
    )


def cmd_list_features(args) -> int:
    suite = openacc10_suite()
    covered = set(suite.features())
    for feature in OPENACC_10:
        marker = "x" if feature.fid in covered else " "
        print(f"[{marker}] {feature.fid:40s} {feature.kind.value}")
    print(f"\n{len(covered)} of {len(OPENACC_10)} 1.0 features have "
          "dedicated tests (uncovered features are exercised jointly).")
    return 0


def cmd_list_vendors(args) -> int:
    for vendor, versions in VENDORS.items():
        print(vendor)
        for vv in versions:
            print(f"  {vv.version:8s} C bugs: {vv.bug_count('c'):3d}   "
                  f"Fortran bugs: {vv.bug_count('fortran'):3d}")
    return 0


def cmd_generate(args) -> int:
    suite = openacc10_suite()
    template = suite.get(args.feature, args.language)
    if template is None:
        print(f"no template for feature {args.feature!r} ({args.language})",
              file=sys.stderr)
        return 1
    if args.mode in ("functional", "both"):
        print(f"// --- functional test: {template.name} ---")
        print(generate_functional(template).source)
    if args.mode in ("cross", "both") and template.has_cross:
        print(f"// --- cross test: {template.name} ---")
        print(generate_cross(template).source)
    return 0


_LINT_SUITES = ("1.0", "2.0", "combinations")


def _lint_code_filter(values):
    """Expand repeatable comma-separated ``--select``/``--ignore`` values.

    Tokens are full codes (``ACC401``) or prefixes (``ACC4``); an unknown
    token returns ``(None, token)`` so the caller can did-you-mean it.
    """
    from repro.staticcheck import CODE_CATALOG

    codes: set = set()
    for value in values or []:
        for token in value.split(","):
            token = token.strip()
            if not token:
                continue
            upper = token.upper()
            matched = {c for c in CODE_CATALOG if c.startswith(upper)}
            if not matched:
                return None, token
            codes |= matched
    return codes, None


def cmd_lint(args) -> int:
    from repro.obs.metrics import MetricsRegistry
    from repro.staticcheck import (
        SHIPPED_BASELINE,
        LintCache,
        baseline_from_findings,
        lint_suite,
        load_baseline,
        merge_reports,
        render_lint_json,
        render_lint_sarif,
        render_lint_text,
    )
    from repro.suite import combination_suite, openacc20_suite
    from repro.suite.registry import _did_you_mean

    select, bad = _lint_code_filter(args.select)
    if bad is not None:
        hint = _did_you_mean(bad.upper(), _lint_catalog_codes())
        print(f"unknown diagnostic code {bad!r} in --select{hint}",
              file=sys.stderr)
        return 1
    ignore, bad = _lint_code_filter(args.ignore)
    if bad is not None:
        hint = _did_you_mean(bad.upper(), _lint_catalog_codes())
        print(f"unknown diagnostic code {bad!r} in --ignore{hint}",
              file=sys.stderr)
        return 1

    if args.update_baseline:
        baseline = None  # raw findings feed the new allowance
    elif args.no_baseline:
        baseline = None
    elif args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as err:
            print(f"cannot load baseline {args.baseline}: {err}",
                  file=sys.stderr)
            return 1
    else:
        baseline = SHIPPED_BASELINE

    cache = None
    metrics = MetricsRegistry()
    if args.cache:
        cache = LintCache(args.cache, metrics=metrics)

    factories = {
        "1.0": openacc10_suite,
        "2.0": openacc20_suite,
        "combinations": combination_suite,
    }
    names = list(_LINT_SUITES) if args.all else [args.suite]
    reports = []
    for name in names:
        suite = factories[name]()
        templates = None
        if args.feature or args.language:
            templates = [
                t for t in suite
                if (not args.feature or t.feature == args.feature)
                and (not args.language or t.language == args.language)
            ]
        reports.append(lint_suite(suite, templates, cache=cache,
                                  baseline=baseline))
    merged = merge_reports(reports)
    if cache is not None:
        cache.save()
        print(cache.stats(), file=sys.stderr)
    if merged.checked == 0:
        print("lint selection matched no templates", file=sys.stderr)
        return 1

    if args.update_baseline:
        new_baseline = baseline_from_findings([
            (entry.name, d)
            for entry in merged.entries
            for d in entry.diagnostics
        ])
        path = args.baseline or _shipped_baseline_path()
        atomic_write_text(path, new_baseline.render())
        print(f"wrote {path} ({new_baseline.total} allowed finding(s) "
              f"across {len(new_baseline.entries)} template(s))")
        return 0

    if select or ignore:
        for entry in merged.entries:
            entry.diagnostics = [
                d for d in entry.diagnostics
                if (not select or d.code in select)
                and d.code not in ignore
            ]

    if args.format == "sarif":
        rendered = render_lint_sarif(merged)
    elif args.format == "json":
        rendered = render_lint_json(merged)
    else:
        rendered = render_lint_text(merged)
    if args.output:
        atomic_write_text(args.output, rendered)
        print(f"wrote {args.output} ({merged.checked} templates, "
              f"{merged.error_count} errors)")
    else:
        print(rendered, end="")
    return 2 if merged.error_count else 0


def _lint_catalog_codes():
    from repro.staticcheck import CODE_CATALOG

    return sorted(CODE_CATALOG)


def _shipped_baseline_path() -> str:
    import repro.staticcheck.suppress as _suppress

    return str(_suppress._SHIPPED_PATH)


def cmd_validate(args) -> int:
    if args.suite == "combinations":
        from repro.suite import combination_suite

        suite = combination_suite()
    else:
        suite = openacc10_suite()
    tracer = _make_tracer(args)
    behavior = _behavior(args)
    config = _config(args)
    runner = ValidationRunner(behavior, config, tracer=tracer)
    journal = None
    displaced: list = []
    if args.journal or args.resume:
        from repro.journal import JournalError, validate_campaign_key

        campaign = validate_campaign_key(args.suite, behavior, config)
        try:
            journal = _open_journal(args, campaign, runner.faults, tracer)
        except JournalError as err:
            print(f"journal error: {err}", file=sys.stderr)
            return 1
        displaced = _install_drain_handlers()
    engine = None
    if args.scheduler != "local":
        # a sched backend replaces the policy-selected engine; everything
        # else (journal, live, selection, report) is shared via run_suite
        from repro.sched import create_backend

        engine = create_backend(args.scheduler,
                                workers=args.workers).engine(config)
    try:
        report = runner.run_suite(suite, journal=journal, engine=engine)
    except EmptySelectionError as err:
        # an empty selection used to produce an empty report and exit 0 —
        # a vacuous pass that silently blessed typo'd --features filters
        print(f"error: {err}", file=sys.stderr)
        return 1
    except (CampaignInterrupted, InjectedJournalTear):
        return _resumable_notice(journal, "validate")
    finally:
        _restore_handlers(displaced)
        if journal is not None:
            journal.close()
    renderer = {
        "text": render_text,
        "html": render_html,
        "csv": render_csv,
        "bugs": render_bug_report,
    }[args.format]
    output = renderer(report)
    if args.output:
        atomic_write_text(args.output, output)
        print(f"wrote {args.output}")
    else:
        print(output)
    if args.metrics:
        render_metrics = (
            render_metrics_csv if args.format == "csv" else render_metrics_text
        )
        if args.output:
            # keep the report file clean of timing noise: metrics go to a
            # sidecar next to it, matching the report's format
            suffix = ".metrics.csv" if args.format == "csv" else ".metrics.txt"
            metrics_path = args.output + suffix
            atomic_write_text(metrics_path, render_metrics(report) + "\n")
            print(f"wrote {metrics_path}")
        else:
            print(render_metrics(report))
    _finish_trace(args, tracer, command="validate", suite=args.suite,
                  vendor=args.vendor or "reference",
                  version=args.version or "-",
                  policy=args.policy, workers=args.workers)
    return 0 if not report.failures() else 2


def cmd_sweep(args) -> int:
    config = HarnessConfig(iterations=1, run_cross=False)
    rates = vendor_pass_rates(args.vendor, openacc10_suite(), config)
    for language in ("c", "fortran"):
        print(f"{args.vendor.upper()} — {language}")
        for point in rates[language]:
            bar = "#" * round(point.pass_rate / 2)
            print(f"  {point.version:8s} |{bar:<50s}| {point.pass_rate:5.1f}%")
    return 0


def cmd_table1(args) -> int:
    for vendor in ("caps", "pgi", "cray"):
        rows = table1_counts(vendor)
        versions = " ".join(f"{r.version:>7s}" for r in rows)
        c_row = " ".join(f"{r.c_bugs:7d}" for r in rows)
        f_row = " ".join(f"{r.fortran_bugs:7d}" for r in rows)
        match = all(r.matches_paper for r in rows)
        print(f"{vendor.upper():5s} {versions}")
        print(f"  C   {c_row}")
        print(f"  F   {f_row}   (matches paper: {match})")
    return 0


def cmd_titan(args) -> int:
    from repro.harness.titan import TitanCluster, TitanHarness

    tracer = _make_tracer(args)
    cluster = TitanCluster(num_nodes=args.nodes,
                           degraded_fraction=args.degraded, seed=args.seed)
    config = HarnessConfig(iterations=1, run_cross=False, languages=("c",),
                           retries=args.retries,
                           template_timeout_s=args.timeout_s,
                           fault_plan=args.inject_faults,
                           live_stream=args.live_stream,
                           status=args.status,
                           prom=args.prom)
    journal = None
    displaced: list = []
    if args.journal or args.resume:
        from repro.faults import FaultInjector, NULL_INJECTOR
        from repro.journal import JournalError, titan_campaign_key

        campaign = titan_campaign_key(
            config, nodes=args.nodes, degraded=args.degraded,
            seed=args.seed, sample=args.sample, recheck=args.recheck)
        plan = args.inject_faults
        faults = (FaultInjector(plan) if plan is not None and plan.active
                  else NULL_INJECTOR)
        try:
            journal = _open_journal(args, campaign, faults, tracer)
        except JournalError as err:
            print(f"journal error: {err}", file=sys.stderr)
            return 1
        displaced = _install_drain_handlers()
    harness = TitanHarness(
        cluster, openacc10_suite(),
        config=config,
        feature_prefixes=["parallel", "update"],
        tracer=tracer,
        recheck=args.recheck,
        journal=journal,
    )
    try:
        checks = harness.sweep(sample_size=args.sample, seed=args.seed)
    except (CampaignInterrupted, InjectedJournalTear):
        return _resumable_notice(journal, "titan")
    finally:
        _restore_handlers(displaced)
        if journal is not None:
            journal.close()
        # finalize live sinks even on an interrupted sweep: the stream
        # gets its final snapshot, the status line its newline
        harness.finish()
    for check in checks:
        status = "FLAGGED" if check.flagged else "ok"
        print(f"node {check.node_id:3d} {check.stack:15s} "
              f"{check.pass_rate:6.1f}%  {status}")
    flagged = sum(1 for c in checks if c.flagged)
    print(f"\n{flagged} of {len(checks)} node/stack checks flagged")
    if harness.quarantined:
        print(f"{len(harness.quarantined)} node(s) quarantined after "
              f"{harness.recheck} recheck(s):")
        for record in sorted(harness.quarantined.values(),
                             key=lambda r: r.node_id):
            print(f"  node {record.node_id:3d} {record.stack:15s} "
                  f"{record.detail}")
    _finish_trace(args, tracer, command="titan", nodes=args.nodes,
                  degraded=args.degraded, sample=args.sample, seed=args.seed)
    return 0


def cmd_trace(args) -> int:
    from repro.obs import (
        read_trace,
        render_summary_text,
        render_trace_html,
        summarize_trace,
    )

    try:
        # tolerant mode: a trace with a torn tail (the traced process was
        # killed mid-write) still summarizes, with the damage counted
        trace = read_trace(args.file, strict=False)
    except (OSError, ValueError) as err:
        print(f"cannot read trace {args.file!r}: {err}", file=sys.stderr)
        return 1
    if trace.malformed:
        print(f"warning: skipped {trace.malformed} malformed trace line(s) "
              "(torn tail?)", file=sys.stderr)
    if args.trace_command == "summarize":
        print(render_summary_text(summarize_trace(trace, top=args.top)))
    else:  # html
        page = render_trace_html(trace)
        if args.output:
            atomic_write_text(args.output, page)
            print(f"wrote {args.output}")
        else:
            print(page)
    return 0


def _obs_tail(args) -> int:
    from repro.obs.live import (
        read_live,
        render_record_line,
        render_tally_text,
    )

    if args.follow:
        return _obs_follow(args)
    try:
        # tolerant mode: a stream with a torn tail (the campaign process
        # was killed mid-write) still reads, with the damage counted
        stream = read_live(args.file, strict=False)
    except (OSError, ValueError) as err:
        print(f"cannot read live stream {args.file!r}: {err}",
              file=sys.stderr)
        return 1
    if stream.malformed:
        print(f"warning: skipped {stream.malformed} malformed stream "
              "line(s) (torn tail?)", file=sys.stderr)
    if args.summarize:
        print(render_tally_text(stream.tally(),
                                final=stream.final_snapshot), end="")
    else:
        for record in stream.records:
            print(render_record_line(record))
    return 0


def _obs_follow(args) -> int:
    """Poll the stream file and print records as they land.

    Only complete (newline-terminated) lines are consumed, so a record
    the writer is mid-way through never prints garbled; unparsable
    complete lines are skipped with a warning.  A file that *shrinks*
    (rotated or truncated by the writer) is picked up again from the
    start instead of silently never matching another record.  Exits when
    the final snapshot arrives, on Ctrl-C, or — with ``--idle-timeout-s``
    — with exit 1 after that many seconds without new data (a follower
    of a dead campaign must not hang forever in CI).
    """
    import json as _json
    import os as _os
    import time as _time

    from repro.obs.live import render_record_line

    offset = 0
    buffered = ""
    last_data = _time.monotonic()
    try:
        while True:
            chunk = ""
            try:
                if _os.path.getsize(args.file) < offset:
                    print("warning: stream file shrank (rotated or "
                          "truncated); following from its start",
                          file=sys.stderr)
                    offset = 0
                    buffered = ""
                with open(args.file, encoding="utf-8") as handle:
                    handle.seek(offset)
                    chunk = handle.read()
            except OSError:
                pass  # not created yet, or rotated away mid-poll
            if chunk:
                last_data = _time.monotonic()
                offset += len(chunk.encode("utf-8"))
                buffered += chunk
            while "\n" in buffered:
                line, buffered = buffered.split("\n", 1)
                line = line.strip()
                if not line:
                    continue
                try:
                    record = _json.loads(line)
                except ValueError:
                    print("warning: skipped malformed stream line",
                          file=sys.stderr)
                    continue
                if not isinstance(record, dict):
                    continue
                if record.get("type") == "meta":
                    continue
                print(render_record_line(record), flush=True)
                if record.get("type") == "snapshot" and record.get("final"):
                    return 0
            if (args.idle_timeout_s is not None
                    and _time.monotonic() - last_data >= args.idle_timeout_s):
                print(f"no new stream data in {args.idle_timeout_s:g}s; "
                      "giving up (writer dead?)", file=sys.stderr)
                return 1
            _time.sleep(args.poll_s)
    except KeyboardInterrupt:
        return 0


def _obs_perf(args) -> int:
    import json as _json

    from repro.obs import render_perf_html

    entries: list = []
    for path in args.inputs:
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as err:
            print(f"cannot read {path!r}: {err}", file=sys.stderr)
            return 1
        try:
            if path.endswith(".jsonl"):
                entries.extend(_json.loads(line)
                               for line in text.splitlines() if line.strip())
            else:
                entries.append(_json.loads(text))
        except ValueError as err:
            print(f"cannot parse {path!r}: {err}", file=sys.stderr)
            return 1
    if not entries:
        print("no bench history entries found", file=sys.stderr)
        return 1
    page = render_perf_html(entries)
    if args.output:
        atomic_write_text(args.output, page)
        print(f"wrote {args.output} ({len(entries)} run(s))")
    else:
        print(page)
    return 0


def cmd_obs(args) -> int:
    if args.obs_command == "tail":
        return _obs_tail(args)
    return _obs_perf(args)


def cmd_journal(args) -> int:
    if args.journal_command == "fsck":
        return _journal_fsck(args)
    from repro.journal import JournalError, read_journal

    try:
        loaded = read_journal(args.file)
    except JournalError as err:
        print(f"journal error: {err}", file=sys.stderr)
        return 1
    campaign = loaded.campaign
    print(f"journal    {loaded.path}")
    print(f"format     {campaign.get('format', '?')}")
    print(f"command    {campaign.get('command', '?')}")
    print(f"code       {campaign.get('code_version', '?')}")
    for key in ("suite", "compiler", "nodes", "sample", "seed"):
        if key in campaign:
            print(f"{key:10s} {campaign[key]}")
    print(f"units      {len(loaded.records)} journaled")
    print(f"resumes    {loaded.resumes} (generation {loaded.generation})")
    if loaded.torn_bytes:
        print(f"torn tail  {loaded.torn_bytes} byte(s) — will be truncated "
              "on resume")
    else:
        print("torn tail  none (clean shutdown)")
    if args.units:
        for unit in sorted(loaded.records):
            print(f"  {unit}")
    return 0


def _journal_fsck(args) -> int:
    """Crash-consistency check: exit 0 when every file is clean or only
    torn at the tail (a resume salvages it), 1 on corruption or a
    campaign-key mismatch between segments."""
    from repro.journal import fsck_journal, render_fsck

    report = fsck_journal(args.file)
    print(render_fsck(report))
    if args.units:
        for unit in sorted(report.salvageable_units()):
            print(f"  {unit}")
    return 0 if report.resumable else 1


def cmd_serve(args) -> int:
    import asyncio

    from repro.server import CampaignServer

    server = CampaignServer(args.root, host=args.host, port=args.port,
                            max_concurrent=args.max_concurrent,
                            watchdog_s=args.watchdog_s,
                            restart_budget=args.restart_budget,
                            tail_buffer=args.tail_buffer,
                            fault_plan=args.inject_faults)

    async def _main() -> None:
        await server.start()
        # the bound address on stdout, flushed, so scripts starting the
        # server in the background (CI smoke) can pick the port up
        print(f"repro server listening on {server.host}:{server.port} "
              f"(root {server.root})", flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, ValueError):
                break
        await stop.wait()
        print("draining: unfinished campaigns re-queued for the next "
              "serve over this directory", file=sys.stderr)
        await server.shutdown()

    asyncio.run(_main())
    return 0


def _server_client(args):
    from repro.server import CampaignClient

    return CampaignClient.at(args.server)


def cmd_submit(args) -> int:
    from repro.server import ServerError

    client = _server_client(args)
    try:
        if args.resume:
            response = client.resubmit(args.resume)
        else:
            config: dict = {
                "iterations": args.iterations,
                "run_cross": not args.no_cross,
            }
            if args.language:
                config["languages"] = [args.language]
            if args.features:
                config["feature_prefixes"] = args.features
            if args.retries:
                config["retries"] = args.retries
            if args.inject_faults is not None:
                # travels as the canonical spec string; the server parses
                # it back into the campaign's FaultPlan
                config["fault_plan"] = args.inject_faults.describe()
            response = client.submit({
                "suite": args.suite,
                "vendor": args.vendor,
                "version": args.version,
                "scheduler": args.scheduler,
                "workers": args.workers,
                "format": args.format,
                "config": config,
            })
    except (ServerError, OSError) as err:
        print(f"submit failed: {err}", file=sys.stderr)
        return 1
    cid = response["id"]
    print(f"submitted {cid}")
    if not args.wait:
        return 0
    try:
        info = client.wait(cid, timeout_s=args.wait_timeout_s)
    except (ServerError, OSError, TimeoutError) as err:
        print(f"wait failed: {err}", file=sys.stderr)
        return 1
    print(f"campaign {cid} {info['state']}")
    if info.get("report_path"):
        print(f"report: {info['report_path']}")
    if info.get("error"):
        print(f"error: {info['error']}", file=sys.stderr)
    if info.get("resume"):
        print(f"resume with: {info['resume']}", file=sys.stderr)
    code = info.get("exit")
    return code if code is not None else 1


def cmd_status(args) -> int:
    from repro.server import ServerError

    client = _server_client(args)
    try:
        response = client.status(args.id)
    except (ServerError, OSError) as err:
        print(f"status failed: {err}", file=sys.stderr)
        return 1
    campaigns = [response["campaign"]] if args.id else response["campaigns"]
    if not campaigns:
        print("no campaigns")
        return 0
    for info in campaigns:
        line = (f"{info['id']}  {info['state']:9s} {info['suite']:12s} "
                f"{info['compiler']:14s} {info['scheduler']}")
        progress = info.get("progress")
        if progress and progress.get("units_done") is not None:
            line += (f"  {progress['units_done']} unit(s), "
                     f"{progress.get('passed', 0)} pass / "
                     f"{progress.get('failed', 0)} fail")
        if info.get("report_path"):
            line += f"  report {info['report_path']}"
        if info.get("error"):
            line += f"  error {info['error']}"
        print(line)
        if info.get("resume"):
            print(f"  resume with: {info['resume']}")
    return 0


def cmd_cancel(args) -> int:
    from repro.server import ServerError

    client = _server_client(args)
    try:
        response = client.cancel(args.id)
    except (ServerError, OSError) as err:
        print(f"cancel failed: {err}", file=sys.stderr)
        return 1
    print(f"cancel requested for {response['id']}: in-flight units finish "
          "and are journaled, remaining units are not started")
    print(f"resume with: {response['resume']}")
    return 0


def cmd_tail(args) -> int:
    from repro.obs.live import render_record_line
    from repro.server import ServerError

    client = _server_client(args)
    try:
        for payload in client.tail(args.id, timeout_s=args.timeout_s):
            if payload.get("end"):
                state = payload["state"]
                print(f"campaign {args.id} {state}", file=sys.stderr)
                dropped = ((payload.get("dropped") or 0)
                           + (payload.get("replay_dropped") or 0))
                if dropped:
                    print(f"note: {dropped} record(s) dropped (slow "
                          "subscriber / late tail); the full stream is in "
                          "the server's <id>.ndjson", file=sys.stderr)
                if payload.get("resume"):
                    print(f"resume with: {payload['resume']}",
                          file=sys.stderr)
                code = payload.get("exit")
                return code if code is not None else 1
            record = payload.get("record")
            if isinstance(record, dict):
                print(render_record_line(record), flush=True)
    except (ServerError, OSError) as err:
        print(f"tail failed: {err}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0
    return 1


def _add_journal_flags(p) -> None:
    group = p.add_mutually_exclusive_group()
    group.add_argument("--journal", metavar="FILE",
                       help="write a crash-safe campaign journal: every "
                            "completed unit is appended and fsync'd, so a "
                            "SIGKILL loses at most the unit in flight")
    group.add_argument("--resume", metavar="FILE",
                       help="resume an interrupted campaign from its "
                            "journal: intact records are replayed, only "
                            "missing units re-run, and the final report is "
                            "byte-identical to an uninterrupted run")


def _add_live_flags(p) -> None:
    p.add_argument("--live-stream", metavar="FILE", dest="live_stream",
                   help="stream live campaign telemetry to FILE as NDJSON "
                        "(events + periodic snapshots; follow with "
                        "`repro obs tail FILE --follow`)")
    p.add_argument("--status", action="store_true",
                   help="repaint a one-line progress/ETA status on stderr "
                        "as units complete")
    p.add_argument("--prom", metavar="FILE", dest="prom",
                   help="export campaign progress as a Prometheus textfile "
                        "(atomically rewritten per snapshot, for "
                        "node_exporter's textfile collector)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OpenACC 1.0 validation testsuite (IPDPSW 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-features", help="feature tree with suite coverage")
    sub.add_parser("list-vendors", help="simulated vendor versions")
    sub.add_parser("table1", help="Table I bug counts")

    p = sub.add_parser("generate", help="emit generated test programs")
    p.add_argument("feature")
    p.add_argument("--language", default="c", choices=["c", "fortran"])
    p.add_argument("--mode", default="both",
                   choices=["functional", "cross", "both"])

    p = sub.add_parser("lint", help="static-check the test corpus "
                                    "(exit 2 on error diagnostics)")
    p.add_argument("--suite", default="1.0", choices=list(_LINT_SUITES),
                   help="corpus to lint (default: the 1.0 suite)")
    p.add_argument("--all", action="store_true",
                   help="lint every shipped suite")
    p.add_argument("--format", default="text",
                   choices=["text", "json", "sarif"])
    p.add_argument("--feature", help="restrict to one dotted feature id")
    p.add_argument("--language", choices=["c", "fortran"],
                   help="restrict to one language")
    p.add_argument("--select", action="append", metavar="CODES",
                   help="only report these diagnostic codes or prefixes "
                        "(comma-separated, repeatable, e.g. ACC4,ACC501)")
    p.add_argument("--ignore", action="append", metavar="CODES",
                   help="drop these diagnostic codes or prefixes")
    p.add_argument("--baseline", metavar="PATH",
                   help="baseline file of known findings to subtract "
                        "(default: the shipped corpus baseline)")
    p.add_argument("--no-baseline", action="store_true",
                   help="report raw findings, ignoring any baseline")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from this run's raw findings "
                        "(to --baseline, or the shipped file)")
    p.add_argument("--cache", metavar="PATH",
                   help="incremental lint cache file (created on first run)")
    p.add_argument("--output", help="write the report to this path "
                                    "(atomic) instead of stdout")

    p = sub.add_parser("validate", help="run the suite against an implementation")
    p.add_argument("--suite", default="1.0", choices=["1.0", "combinations"],
                   help="base 1.0 corpus or the feature-combination suite")
    p.add_argument("--vendor", choices=list(VENDORS))
    p.add_argument("--version", help="vendor version (with --vendor)")
    p.add_argument("--language", choices=["c", "fortran"])
    p.add_argument("--iterations", type=_positive_int, default=3, metavar="M")
    p.add_argument("--no-cross", action="store_true")
    p.add_argument("--features", nargs="*", metavar="PREFIX",
                   help="feature prefixes to select, e.g. parallel loop.reduction")
    p.add_argument("--format", default="text",
                   choices=["text", "html", "csv", "bugs"])
    p.add_argument("--output", help="write the report to a file")
    p.add_argument("--policy", default="serial",
                   choices=list(EXECUTION_POLICIES),
                   help="execution engine (identical reports either way)")
    p.add_argument("--workers", type=_positive_int, default=1, metavar="N",
                   help="pool size for --policy thread/process (and the "
                        "shard/pod count for --scheduler shards/simk8s)")
    p.add_argument("--scheduler", default="local", choices=_SCHEDULERS,
                   help="campaign scheduler backend: 'local' uses --policy, "
                        "'shards' runs work-stealing shards with a "
                        "segmented journal, 'simk8s' drives the simulated "
                        "k8s control plane (identical reports either way)")
    p.add_argument("--metrics", action="store_true",
                   help="run metrics (wall/compile/execute time, compile-"
                        "cache hit rate, worker utilization); written next "
                        "to --output as FILE.metrics.txt/.csv, else printed")
    p.add_argument("--no-compile-cache", action="store_true",
                   help="disable compile memoisation")
    p.add_argument("--backend", default="tree",
                   choices=list(INTERPRETER_BACKENDS),
                   help="interpreter backend: the reference tree walker or "
                        "the compiled-closures fast path (identical reports "
                        "either way)")
    p.add_argument("--lint", action="store_true",
                   help="static-check each template before compiling; "
                        "templates with error diagnostics are marked "
                        "STATIC_ERROR (a corpus defect) and never run")
    p.add_argument("--retries", type=_nonnegative_int, default=0, metavar="R",
                   help="re-run a work unit up to R times after a harness "
                        "fault before marking it HARNESS_ERROR")
    p.add_argument("--timeout-s", type=_positive_float, default=None,
                   metavar="SECONDS",
                   help="per-template wall-clock budget (distinct from the "
                        "interpreter step budget)")
    p.add_argument("--inject-faults", type=_fault_plan, default=None,
                   metavar="SPEC",
                   help="deterministic fault injection, e.g. "
                        "'worker=0.5,iteration=0.2,seed=7' (sites: compile, "
                        "iteration, worker, stall, journal, shard_death, "
                        "pod, conn, frame, slow_client, segment; modifiers: "
                        "seed, stall-s, max-fires, persistent)")
    p.add_argument("--trace", metavar="FILE",
                   help="record a span/event/metrics trace to FILE (JSONL)")
    p.add_argument("--profile", action="store_true",
                   help="add accsim profiling (iteration steps, bytes "
                        "moved, async-queue waits) to the trace")
    _add_journal_flags(p)
    _add_live_flags(p)

    p = sub.add_parser("sweep", help="Fig. 8-style pass-rate sweep")
    p.add_argument("vendor", choices=list(VENDORS))

    p = sub.add_parser("compare",
                       help="diff two versions: fixed / regressed features")
    p.add_argument("vendor", choices=list(VENDORS))
    p.add_argument("old_version")
    p.add_argument("new_version")
    p.add_argument("--language", default="c", choices=["c", "fortran"])

    p = sub.add_parser("titan", help="production sweep on the simulated cluster")
    p.add_argument("--nodes", type=_positive_int, default=16,
                   help="cluster size (>= 1)")
    p.add_argument("--degraded", type=_fraction, default=0.25,
                   help="fraction of degraded nodes, in [0, 1]")
    p.add_argument("--sample", type=_positive_int, default=6,
                   help="nodes sampled per sweep (>= 1)")
    p.add_argument("--seed", type=int, default=2012)
    p.add_argument("--recheck", type=_nonnegative_int, default=1, metavar="R",
                   help="re-checks of a flagged node before quarantining it")
    p.add_argument("--retries", type=_nonnegative_int, default=0, metavar="R",
                   help="per-unit retry budget of the node checks")
    p.add_argument("--timeout-s", type=_positive_float, default=None,
                   metavar="SECONDS",
                   help="per-template wall-clock budget of the node checks")
    p.add_argument("--inject-faults", type=_fault_plan, default=None,
                   metavar="SPEC",
                   help="deterministic fault injection (see validate)")
    p.add_argument("--trace", metavar="FILE",
                   help="record a span/event/metrics trace to FILE (JSONL)")
    p.add_argument("--profile", action="store_true",
                   help="add accsim profiling to the trace")
    _add_journal_flags(p)
    _add_live_flags(p)

    p = sub.add_parser("serve", help="run the campaign server (concurrent "
                                     "submissions, journaled + resumable)")
    p.add_argument("root", help="server state directory: the server "
                                "journal, per-campaign unit journals, "
                                "NDJSON streams and reports live here")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7781,
                   help="TCP port (default 7781; 0 picks a free port, "
                        "printed on startup)")
    p.add_argument("--max-concurrent", type=_positive_int, default=2,
                   metavar="N",
                   help="campaigns run at once; further submissions queue")
    p.add_argument("--watchdog-s", type=_positive_float, default=None,
                   metavar="SECONDS", dest="watchdog_s",
                   help="per-campaign liveness watchdog: a running campaign "
                        "emitting no live record for this long is cancelled "
                        "and re-queued (journaled units replay); off by "
                        "default")
    p.add_argument("--restart-budget", type=_nonnegative_int, default=2,
                   metavar="N", dest="restart_budget",
                   help="watchdog restarts tolerated per campaign before it "
                        "is marked failed with a resume hint (default 2)")
    p.add_argument("--tail-buffer", type=_positive_int, default=512,
                   metavar="N", dest="tail_buffer",
                   help="per-subscriber tail queue capacity; a slow client "
                        "loses oldest records past this and sees the drop "
                        "count on its end line (default 512)")
    p.add_argument("--inject-faults", type=_fault_plan, default=None,
                   metavar="SPEC", dest="inject_faults",
                   help="arm the server-side chaos sites (conn, frame, "
                        "slow_client) against the wire protocol, e.g. "
                        "'conn=1.0,frame=1.0,seed=9' — the chaos-smoke "
                        "harness; campaign-side sites travel in "
                        "'repro submit --inject-faults' instead")

    def _server_flag(p) -> None:
        p.add_argument("--server", default="127.0.0.1:7781",
                       metavar="HOST:PORT",
                       help="campaign server address "
                            "(default 127.0.0.1:7781)")

    p = sub.add_parser("submit", help="submit a campaign to a running "
                                      "server")
    _server_flag(p)
    p.add_argument("--resume", metavar="ID",
                   help="re-enqueue a cancelled/failed campaign by id "
                        "instead of submitting a new spec (its unit "
                        "journal replays completed work)")
    p.add_argument("--suite", default="1.0", choices=["1.0", "combinations"])
    p.add_argument("--vendor", choices=list(VENDORS))
    p.add_argument("--version", help="vendor version (with --vendor)")
    p.add_argument("--language", choices=["c", "fortran"])
    p.add_argument("--iterations", type=_positive_int, default=3, metavar="M")
    p.add_argument("--no-cross", action="store_true")
    p.add_argument("--features", nargs="*", metavar="PREFIX",
                   help="feature prefixes to select")
    p.add_argument("--format", default="text",
                   choices=["text", "html", "csv", "bugs"])
    p.add_argument("--scheduler", default="local", choices=_SCHEDULERS,
                   help="sched backend the server runs the campaign on")
    p.add_argument("--workers", type=_positive_int, default=None, metavar="N",
                   help="pool/shard/pod count for the chosen scheduler")
    p.add_argument("--retries", type=_nonnegative_int, default=0,
                   metavar="R",
                   help="per-unit retry budget inside the campaign (lets "
                        "transient injected faults heal in place)")
    p.add_argument("--inject-faults", type=_fault_plan, default=None,
                   metavar="SPEC", dest="inject_faults",
                   help="arm the campaign-side fault sites inside the "
                        "server-hosted run (compile, iteration, worker, "
                        "stall, journal, shard_death, pod, segment), e.g. "
                        "'shard_death=1.0,segment=1.0,seed=29'")
    p.add_argument("--wait", action="store_true",
                   help="block until the campaign finishes and exit with "
                        "its validate-compatible exit code")
    p.add_argument("--wait-timeout-s", type=_positive_float, default=3600.0,
                   metavar="SECONDS", dest="wait_timeout_s")

    p = sub.add_parser("status", help="list a server's campaigns (or one "
                                      "campaign's state)")
    p.add_argument("id", nargs="?", help="campaign id (all when omitted)")
    _server_flag(p)

    p = sub.add_parser("cancel", help="cancel one running campaign "
                                      "(neighbouring campaigns are "
                                      "untouched)")
    p.add_argument("id")
    _server_flag(p)

    p = sub.add_parser("tail", help="replay + follow a campaign's live "
                                    "records from the server")
    p.add_argument("id")
    _server_flag(p)
    p.add_argument("--timeout-s", type=_positive_float, default=3600.0,
                   metavar="SECONDS", dest="timeout_s",
                   help="give up if the stream stalls this long")

    p = sub.add_parser("journal", help="inspect a campaign journal")
    jsub = p.add_subparsers(dest="journal_command", required=True)
    ji = jsub.add_parser("inspect",
                         help="header, journaled units, resume generations "
                              "and torn-tail status of a journal file")
    ji.add_argument("file")
    ji.add_argument("--units", action="store_true",
                    help="also list the journaled unit keys")
    jf = jsub.add_parser("fsck",
                         help="crash-consistency check of a base journal "
                              "plus all <base>.shardK segments: checksums, "
                              "torn tails, cross-segment campaign keys, and "
                              "what a resume would salvage (exit 1 on "
                              "corruption)")
    jf.add_argument("file", help="journal path (the --journal value; shard "
                                 "segments are found automatically)")
    jf.add_argument("--units", action="store_true",
                    help="also list the salvageable unit keys")

    p = sub.add_parser("trace", help="inspect a recorded trace file")
    tsub = p.add_subparsers(dest="trace_command", required=True)
    ps = tsub.add_parser("summarize",
                         help="text summary: phase totals, cache, slowest "
                              "templates, failure kinds")
    ps.add_argument("file")
    ps.add_argument("--top", type=_positive_int, default=10, metavar="N",
                    help="slowest templates to list")
    ph = tsub.add_parser("html", help="render the HTML trace dashboard")
    ph.add_argument("file")
    ph.add_argument("--output", help="write the page to a file")

    p = sub.add_parser("obs", help="live-telemetry and perf-history tools")
    osub = p.add_subparsers(dest="obs_command", required=True)
    ot = osub.add_parser("tail",
                         help="print or summarize a live NDJSON stream "
                              "(tolerates the torn tail of a killed run)")
    ot.add_argument("file")
    ot.add_argument("--summarize", action="store_true",
                    help="fold the stream into campaign totals instead of "
                         "printing per-record lines")
    ot.add_argument("--follow", action="store_true",
                    help="poll the file and print records as they land; "
                         "exits on the final snapshot or Ctrl-C")
    ot.add_argument("--poll-s", type=_positive_float, default=0.2,
                    metavar="SECONDS", dest="poll_s",
                    help="--follow poll interval (default 0.2s)")
    ot.add_argument("--idle-timeout-s", type=_positive_float, default=None,
                    metavar="SECONDS", dest="idle_timeout_s",
                    help="--follow: exit 1 after this long without new "
                         "stream data (default: wait forever)")
    op = osub.add_parser("perf",
                         help="render bench history (BENCH_history.jsonl "
                              "and/or BENCH_*.json) as an HTML "
                              "perf-trajectory page")
    op.add_argument("inputs", nargs="+", metavar="FILE",
                    help=".jsonl history files (one run per line) or "
                         "single-run .json baselines, oldest first")
    op.add_argument("--output", help="write the page to a file")

    return parser


def cmd_compare(args) -> int:
    from repro.analysis import compare_versions

    diff = compare_versions(args.vendor, args.old_version, args.new_version,
                            args.language)
    print(diff.summary())
    if diff.fixed:
        print("fixed:")
        for feature in diff.fixed:
            print(f"  + {feature}")
    if diff.regressed:
        print("regressed:")
        for feature in diff.regressed:
            print(f"  - {feature}")
    if diff.still_failing:
        print("still failing:")
        for feature in diff.still_failing:
            print(f"  ! {feature}")
    return 0 if not diff.regressed else 2


_COMMANDS = {
    "list-features": cmd_list_features,
    "list-vendors": cmd_list_vendors,
    "generate": cmd_generate,
    "lint": cmd_lint,
    "validate": cmd_validate,
    "sweep": cmd_sweep,
    "compare": cmd_compare,
    "table1": cmd_table1,
    "titan": cmd_titan,
    "trace": cmd_trace,
    "journal": cmd_journal,
    "obs": cmd_obs,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "status": cmd_status,
    "cancel": cmd_cancel,
    "tail": cmd_tail,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "validate" and args.vendor and not args.version:
        parser.error("--vendor requires --version")
    if args.command == "validate" and args.vendor and not args.language:
        parser.error("--vendor requires --language (vendor bugs are "
                     "language-specific)")
    if args.command == "submit" and not args.resume and args.vendor:
        if not args.version:
            parser.error("--vendor requires --version")
        if not args.language:
            parser.error("--vendor requires --language (vendor bugs are "
                         "language-specific)")
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # output piped into e.g. `head`; exit quietly like a good CLI citizen
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
