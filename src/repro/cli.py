"""Command-line interface.

The user-facing face of the harness, covering the feature bullets of
Section III (compiler configuration, feature selection, result formats):

* ``repro list-features`` — the OpenACC 1.0 feature tree with coverage;
* ``repro list-vendors`` — simulated vendor versions and bug counts;
* ``repro generate`` — emit the generated functional/cross programs of a
  template;
* ``repro validate`` — run the suite against the reference or a vendor
  version, in any output format (text/html/csv/bugs);
* ``repro sweep`` — a Fig. 8-style pass-rate sweep over a vendor;
* ``repro table1`` — the Table I bug-count table;
* ``repro titan`` — a Section VII production sweep on the simulated
  cluster.

Invoke as ``python -m repro <command> ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import table1_counts, vendor_pass_rates
from repro.compiler import Compiler, CompilerBehavior
from repro.compiler.vendors import VENDORS, vendor_version
from repro.harness import (
    EXECUTION_POLICIES,
    HarnessConfig,
    ValidationRunner,
    render_bug_report,
    render_csv,
    render_html,
    render_metrics_csv,
    render_metrics_text,
    render_text,
)
from repro.spec.features import OPENACC_10
from repro.suite import openacc10_suite
from repro.templates import generate_cross, generate_functional


def _behavior(args) -> CompilerBehavior:
    if args.vendor:
        return vendor_version(args.vendor, args.version).behavior(args.language)
    return CompilerBehavior()


def _config(args) -> HarnessConfig:
    return HarnessConfig(
        iterations=args.iterations,
        run_cross=not args.no_cross,
        languages=(args.language,) if args.language else ("c", "fortran"),
        feature_prefixes=args.features or None,
        policy=args.policy,
        workers=args.workers,
        compile_cache=not args.no_compile_cache,
    )


def cmd_list_features(args) -> int:
    suite = openacc10_suite()
    covered = set(suite.features())
    for feature in OPENACC_10:
        marker = "x" if feature.fid in covered else " "
        print(f"[{marker}] {feature.fid:40s} {feature.kind.value}")
    print(f"\n{len(covered)} of {len(OPENACC_10)} 1.0 features have "
          "dedicated tests (uncovered features are exercised jointly).")
    return 0


def cmd_list_vendors(args) -> int:
    for vendor, versions in VENDORS.items():
        print(vendor)
        for vv in versions:
            print(f"  {vv.version:8s} C bugs: {vv.bug_count('c'):3d}   "
                  f"Fortran bugs: {vv.bug_count('fortran'):3d}")
    return 0


def cmd_generate(args) -> int:
    suite = openacc10_suite()
    template = suite.get(args.feature, args.language)
    if template is None:
        print(f"no template for feature {args.feature!r} ({args.language})",
              file=sys.stderr)
        return 1
    if args.mode in ("functional", "both"):
        print(f"// --- functional test: {template.name} ---")
        print(generate_functional(template).source)
    if args.mode in ("cross", "both") and template.has_cross:
        print(f"// --- cross test: {template.name} ---")
        print(generate_cross(template).source)
    return 0


def cmd_validate(args) -> int:
    if args.suite == "combinations":
        from repro.suite import combination_suite

        suite = combination_suite()
    else:
        suite = openacc10_suite()
    runner = ValidationRunner(_behavior(args), _config(args))
    report = runner.run_suite(suite)
    renderer = {
        "text": render_text,
        "html": render_html,
        "csv": render_csv,
        "bugs": render_bug_report,
    }[args.format]
    output = renderer(report)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output)
        print(f"wrote {args.output}")
    else:
        print(output)
    if args.metrics:
        render_metrics = (
            render_metrics_csv if args.format == "csv" else render_metrics_text
        )
        print(render_metrics(report))
    return 0 if not report.failures() else 2


def cmd_sweep(args) -> int:
    config = HarnessConfig(iterations=1, run_cross=False)
    rates = vendor_pass_rates(args.vendor, openacc10_suite(), config)
    for language in ("c", "fortran"):
        print(f"{args.vendor.upper()} — {language}")
        for point in rates[language]:
            bar = "#" * round(point.pass_rate / 2)
            print(f"  {point.version:8s} |{bar:<50s}| {point.pass_rate:5.1f}%")
    return 0


def cmd_table1(args) -> int:
    for vendor in ("caps", "pgi", "cray"):
        rows = table1_counts(vendor)
        versions = " ".join(f"{r.version:>7s}" for r in rows)
        c_row = " ".join(f"{r.c_bugs:7d}" for r in rows)
        f_row = " ".join(f"{r.fortran_bugs:7d}" for r in rows)
        match = all(r.matches_paper for r in rows)
        print(f"{vendor.upper():5s} {versions}")
        print(f"  C   {c_row}")
        print(f"  F   {f_row}   (matches paper: {match})")
    return 0


def cmd_titan(args) -> int:
    from repro.harness.titan import TitanCluster, TitanHarness

    cluster = TitanCluster(num_nodes=args.nodes,
                           degraded_fraction=args.degraded, seed=args.seed)
    harness = TitanHarness(
        cluster, openacc10_suite(),
        config=HarnessConfig(iterations=1, run_cross=False, languages=("c",)),
        feature_prefixes=["parallel", "update"],
    )
    checks = harness.sweep(sample_size=args.sample, seed=args.seed)
    for check in checks:
        status = "FLAGGED" if check.flagged else "ok"
        print(f"node {check.node_id:3d} {check.stack:15s} "
              f"{check.pass_rate:6.1f}%  {status}")
    flagged = sum(1 for c in checks if c.flagged)
    print(f"\n{flagged} of {len(checks)} node/stack checks flagged")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OpenACC 1.0 validation testsuite (IPDPSW 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-features", help="feature tree with suite coverage")
    sub.add_parser("list-vendors", help="simulated vendor versions")
    sub.add_parser("table1", help="Table I bug counts")

    p = sub.add_parser("generate", help="emit generated test programs")
    p.add_argument("feature")
    p.add_argument("--language", default="c", choices=["c", "fortran"])
    p.add_argument("--mode", default="both",
                   choices=["functional", "cross", "both"])

    p = sub.add_parser("validate", help="run the suite against an implementation")
    p.add_argument("--suite", default="1.0", choices=["1.0", "combinations"],
                   help="base 1.0 corpus or the feature-combination suite")
    p.add_argument("--vendor", choices=list(VENDORS))
    p.add_argument("--version", help="vendor version (with --vendor)")
    p.add_argument("--language", choices=["c", "fortran"])
    p.add_argument("--iterations", type=int, default=3, metavar="M")
    p.add_argument("--no-cross", action="store_true")
    p.add_argument("--features", nargs="*", metavar="PREFIX",
                   help="feature prefixes to select, e.g. parallel loop.reduction")
    p.add_argument("--format", default="text",
                   choices=["text", "html", "csv", "bugs"])
    p.add_argument("--output", help="write the report to a file")
    p.add_argument("--policy", default="serial",
                   choices=list(EXECUTION_POLICIES),
                   help="execution engine (identical reports either way)")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="pool size for --policy thread/process")
    p.add_argument("--metrics", action="store_true",
                   help="print run metrics (wall/compile/execute time, "
                        "compile-cache hit rate, worker utilization)")
    p.add_argument("--no-compile-cache", action="store_true",
                   help="disable compile memoisation")

    p = sub.add_parser("sweep", help="Fig. 8-style pass-rate sweep")
    p.add_argument("vendor", choices=list(VENDORS))

    p = sub.add_parser("compare",
                       help="diff two versions: fixed / regressed features")
    p.add_argument("vendor", choices=list(VENDORS))
    p.add_argument("old_version")
    p.add_argument("new_version")
    p.add_argument("--language", default="c", choices=["c", "fortran"])

    p = sub.add_parser("titan", help="production sweep on the simulated cluster")
    p.add_argument("--nodes", type=int, default=16)
    p.add_argument("--degraded", type=float, default=0.25)
    p.add_argument("--sample", type=int, default=6)
    p.add_argument("--seed", type=int, default=2012)

    return parser


def cmd_compare(args) -> int:
    from repro.analysis import compare_versions

    diff = compare_versions(args.vendor, args.old_version, args.new_version,
                            args.language)
    print(diff.summary())
    if diff.fixed:
        print("fixed:")
        for feature in diff.fixed:
            print(f"  + {feature}")
    if diff.regressed:
        print("regressed:")
        for feature in diff.regressed:
            print(f"  - {feature}")
    if diff.still_failing:
        print("still failing:")
        for feature in diff.still_failing:
            print(f"  ! {feature}")
    return 0 if not diff.regressed else 2


_COMMANDS = {
    "list-features": cmd_list_features,
    "list-vendors": cmd_list_vendors,
    "generate": cmd_generate,
    "validate": cmd_validate,
    "sweep": cmd_sweep,
    "compare": cmd_compare,
    "table1": cmd_table1,
    "titan": cmd_titan,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "validate" and args.vendor and not args.version:
        parser.error("--vendor requires --version")
    if args.command == "validate" and args.vendor and not args.language:
        parser.error("--vendor requires --language (vendor bugs are "
                     "language-specific)")
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # output piped into e.g. `head`; exit quietly like a good CLI citizen
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
