"""The :class:`SchedulerBackend` contract and the backend registry.

A backend is a *campaign placement policy*: given a behaviour, a config
and a suite it produces a :class:`~repro.harness.runner.SuiteRunReport`
by driving ``ValidationRunner.run_suite`` with a backend-specific
execution engine.  All the hard invariants live in ``run_suite`` and are
therefore shared by every backend:

* reports are byte-identical to a serial run of the same configuration
  (template order and per-iteration seeds derive from the config, never
  from scheduling);
* journal replay/append and live telemetry work unchanged;
* cancellation is the campaign's own
  :class:`~repro.harness.engine.CancelToken` — cancelling one campaign
  never touches its neighbours.
"""

from __future__ import annotations

from typing import Iterable, Optional

#: backend names accepted by :func:`create_backend` (and the CLI's
#: ``--scheduler`` flag)
SCHEDULERS = ("local", "shards", "simk8s")


class SchedulerBackend:
    """Base class: one campaign-placement policy.

    Subclasses implement :meth:`engine` — anything honouring the engine
    protocol ``run(templates, runner, on_complete=, cancel=) ->
    EngineOutcomes`` — and inherit :meth:`run`, which wires the engine
    into the shared ``run_suite`` machinery (selection, journal replay,
    live telemetry, metrics, report assembly).
    """

    #: registry name; also reported as ``RunMetrics.policy``
    name = "?"

    def engine(self, config):
        """Build this backend's execution engine for one campaign."""
        raise NotImplementedError

    def run(
        self,
        behavior,
        config,
        suite,
        templates: Optional[Iterable] = None,
        *,
        journal=None,
        cancel=None,
        tracer=None,
        live=None,
    ):
        """Run one campaign on this backend; returns the SuiteRunReport."""
        from repro.harness.runner import ValidationRunner

        runner = ValidationRunner(behavior, config, tracer=tracer, live=live)
        return runner.run_suite(
            suite, templates=templates, journal=journal, cancel=cancel,
            engine=self.engine(config),
        )


def create_backend(name: str, workers: Optional[int] = None) -> SchedulerBackend:
    """Instantiate a registered backend.

    ``workers`` maps onto the backend's pool-shape knob: the engine pool
    size for ``local`` (where None defers to ``config.workers``), the
    shard count for ``shards``, the pod count for ``simk8s``.
    """
    from repro.sched.local import LocalBackend
    from repro.sched.shards import ShardsBackend
    from repro.sched.simk8s import SimK8sBackend

    if name == "local":
        return LocalBackend(workers=workers)
    if name == "shards":
        return ShardsBackend(shards=workers or 2)
    if name == "simk8s":
        return SimK8sBackend(pods=workers or 2)
    raise ValueError(
        f"unknown scheduler backend {name!r}; expected one of "
        f"{', '.join(SCHEDULERS)}"
    )
