"""The ``shards`` backend: work-stealing over N self-contained shards.

Each shard is a worker thread with its *own* :class:`ValidationRunner`
(and therefore its own compile cache and fault injector) — the shape of
a distributed deployment where every shard is a separate node holding
private state.  Work units are dealt round-robin into per-shard deques;
an idle shard steals from the back of the longest neighbour's deque, so
a shard stuck on a slow unit cannot strand the rest of the suite.

Determinism: which shard runs a unit affects *only* the metrics' worker
attribution.  Results are reassembled in template order and every seed
derives from the config, so shard runs render byte-identical reports to
serial runs — the invariant the cross-backend differential test pins.

Resilience mirrors :class:`~repro.harness.engine.ProcessEngine`: an
injected worker death kills the shard thread; the engine respawns a
fresh shard (new runner, bumped attempt for the lost unit) up to
:data:`~repro.harness.engine.MAX_POOL_DEATHS` deaths, then stops
trusting shards and runs the remainder serially in the coordinator.

:class:`ShardedJournal` gives each shard campaign a segmented WAL:
every segment is an ordinary :class:`~repro.journal.JournalWriter` file
(inspectable with ``repro journal inspect``), and units route to
segments by a stable hash of the unit key — *not* by which shard ran
them, because work stealing makes that assignment scheduling-dependent
and a resume must find each record no matter how the original run was
interleaved.
"""

from __future__ import annotations

import queue
import threading
import zlib
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.engine import (
    MAX_POOL_DEATHS,
    CancelToken,
    CampaignInterrupted,
    EngineOutcomes,
    UnitCallback,
    run_unit_resilient,
)
from repro.sched.base import SchedulerBackend


class ShardsEngine:
    """Work-stealing execution over ``shards`` self-contained shards."""

    policy = "shards"

    def __init__(self, shards: int = 2):
        if shards < 1:
            raise ValueError(f"shards must be >= 1 (got {shards})")
        self.shards = shards
        self.workers = shards

    # ------------------------------------------------------------ internals

    def _shard_runner(self, runner, cancel):
        """A shard's private runner: own cache, shared tracer/live/token."""
        from repro.harness.runner import ValidationRunner

        shard = ValidationRunner(runner.behavior, runner.config,
                                 tracer=runner.tracer)
        # the live bus and the campaign token are process-wide, thread-safe
        # coordination points; the backoff sleeper stays injectable
        shard.live = runner.live
        shard.cancel = cancel
        shard.sleeper = runner.sleeper
        if shard.faults.enabled and runner.faults.enabled:
            shard.faults.sleeper = runner.faults.sleeper
        return shard

    # ------------------------------------------------------------------ run

    def run(self, templates: Sequence, runner,
            on_complete: Optional[UnitCallback] = None,
            cancel: Optional[CancelToken] = None) -> EngineOutcomes:
        if not templates:
            return []
        cancel = cancel if cancel is not None else CancelToken()
        cancel.check()
        total = len(templates)
        shard_count = min(self.shards, total)

        lock = threading.Lock()
        queues: List[deque] = [deque() for _ in range(shard_count)]
        attempts: Dict[int, int] = {i: 0 for i in range(total)}
        for i in range(total):
            queues[i % shard_count].append(i)
        completions: "queue.Queue[tuple]" = queue.Queue()
        stop = threading.Event()

        def take_work(shard_id: int) -> Optional[Tuple[int, int]]:
            with lock:
                own = queues[shard_id]
                if own:
                    index = own.popleft()
                    return index, attempts[index]
                victim = max(
                    (q for q in queues if q), key=len, default=None
                )
                if victim is None:
                    return None
                # steal from the back: the victim keeps its near-term work
                index = victim.pop()
                return index, attempts[index]

        def shard_main(shard_id: int, shard_runner) -> None:
            index = None
            try:
                while not stop.is_set():
                    item = take_work(shard_id)
                    if item is None:
                        break
                    index, attempt = item
                    template = templates[index]
                    unit_key = f"{template.feature}:{template.language}"
                    if (shard_runner.faults.worker_site(unit_key, attempt)
                            or shard_runner.faults.shard_site(unit_key,
                                                              attempt)):
                        # injected shard death: the thread exits mid-unit,
                        # exactly like a node dropping off the network
                        completions.put(("died", shard_id, index))
                        return
                    result = run_unit_resilient(shard_runner, template,
                                                base_attempt=attempt)
                    completions.put(("done", shard_id, index, result))
                    index = None
                completions.put(("exit", shard_id))
            except CampaignInterrupted:
                completions.put(("exit", shard_id))
            except BaseException:  # a harness bug: treat as a shard death
                if index is not None:
                    completions.put(("died", shard_id, index))
                else:
                    completions.put(("exit", shard_id))

        threads: Dict[int, threading.Thread] = {}

        def spawn(shard_id: int) -> None:
            thread = threading.Thread(
                target=shard_main,
                args=(shard_id, self._shard_runner(runner, cancel)),
                name=f"shard-{shard_id}",
            )
            threads[f"{shard_id}:{id(thread)}"] = thread
            thread.start()

        for shard_id in range(shard_count):
            spawn(shard_id)

        tracer = runner.tracer
        live = getattr(runner, "live", None)
        done: Dict[int, Tuple[object, str]] = {}
        pending_serial: List[int] = []
        deaths = 0
        alive = shard_count
        try:
            while len(done) + len(pending_serial) < total and alive > 0:
                kind, shard_id, *rest = completions.get()
                if kind == "exit":
                    alive -= 1
                    continue
                if kind == "died":
                    (index,) = rest
                    deaths += 1
                    alive -= 1
                    attempts[index] += 1
                    if tracer.enabled:
                        tracer.event("engine.worker_lost", lost_units=1,
                                     pool_deaths=deaths)
                        tracer.metrics.counter("engine.worker_lost").inc()
                    if live is not None:
                        live.event("engine.worker_lost", lost_units=1,
                                   pool_deaths=deaths)
                    if deaths <= MAX_POOL_DEATHS:
                        with lock:
                            queues[shard_id].appendleft(index)
                        spawn(shard_id)
                        alive += 1
                    else:
                        # too many dead shards: stop dispatching, pull all
                        # queued work back for the serial fallback below
                        stop.set()
                        with lock:
                            pending_serial.append(index)
                            for q in queues:
                                pending_serial.extend(q)
                                q.clear()
                    continue
                index, result = rest
                done[index] = (result, f"shard-{shard_id}")
                if on_complete is not None:
                    on_complete(index, templates[index], result)
                cancel.check()
            # every shard exited (drain or death overflow): anything not
            # completed and not already pulled is still queued
            with lock:
                for q in queues:
                    pending_serial.extend(q)
                    q.clear()
        finally:
            stop.set()
            for thread in threads.values():
                thread.join()
        cancel.check()
        if pending_serial and tracer.enabled:
            tracer.event("engine.serial_fallback",
                         units=len(pending_serial), pool_deaths=deaths)
        for index in sorted(set(pending_serial)):
            if index in done:
                continue
            cancel.check()
            result = run_unit_resilient(runner, templates[index],
                                        base_attempt=attempts[index])
            done[index] = (result, "fallback")
            if on_complete is not None:
                on_complete(index, templates[index], result)
        return [done[i] for i in range(total)]


class ShardsBackend(SchedulerBackend):
    """Campaign placement onto a :class:`ShardsEngine`."""

    name = "shards"

    def __init__(self, shards: int = 2):
        self.shards = shards

    def engine(self, config):
        return ShardsEngine(self.shards)


# ---------------------------------------------------------------------------
# sharded journal
# ---------------------------------------------------------------------------


def segment_path(path: str, shard: int) -> str:
    """The on-disk path of one journal segment."""
    return f"{path}.shard{shard}"


def route_unit(unit: str, segments: int) -> int:
    """Stable unit-key -> segment routing (crc32, no PYTHONHASHSEED)."""
    return zlib.crc32(unit.encode("utf-8")) % segments


class ShardedJournal:
    """A campaign journal split into N per-shard WAL segments.

    Duck-types :class:`~repro.journal.JournalWriter` (``get``/``append``/
    ``close``/``records``/``path``), so ``run_suite`` and the CLI use it
    unchanged.  Every segment is a complete, independently inspectable
    journal bound to the *same* campaign key; appends route by
    :func:`route_unit` so a resume — possibly with a different shard
    count in the config, which is execution-only — replays every record
    found across the segments on disk.
    """

    def __init__(self, path: str, writers: List):
        self.path = path
        self.writers = writers
        self.campaign = writers[0].campaign

    @classmethod
    def create(cls, path: str, campaign: dict, shards: int,
               tracer=None, faults=None) -> "ShardedJournal":
        from repro.journal import JournalWriter

        if shards < 1:
            raise ValueError(f"shards must be >= 1 (got {shards})")
        writers = [
            JournalWriter.create(segment_path(path, k), campaign,
                                 tracer=tracer, faults=faults)
            for k in range(shards)
        ]
        return cls(path, writers)

    @classmethod
    def resume(cls, path: str, campaign: dict,
               tracer=None, faults=None) -> "ShardedJournal":
        import os

        from repro.journal import JournalError, JournalWriter

        count = 0
        while os.path.exists(segment_path(path, count)):
            count += 1
        if count == 0:
            raise JournalError(
                f"no journal segments found at {segment_path(path, 0)!r}; "
                "was this campaign journaled with --scheduler shards?"
            )
        writers = [
            JournalWriter.resume(segment_path(path, k), campaign,
                                 tracer=tracer, faults=faults)
            for k in range(count)
        ]
        return cls(path, writers)

    @property
    def records(self) -> Dict[str, dict]:
        merged: Dict[str, dict] = {}
        for writer in self.writers:
            merged.update(writer.records)
        return merged

    def get(self, unit: str) -> Optional[dict]:
        # the routed segment is the expected home, but a resume may run
        # with a different segment count than the writer that recorded the
        # unit — fall back to scanning all segments
        payload = self.writers[route_unit(unit, len(self.writers))].get(unit)
        if payload is not None:
            return payload
        for writer in self.writers:
            payload = writer.get(unit)
            if payload is not None:
                return payload
        return None

    def append(self, unit: str, payload: dict) -> None:
        writer = self.writers[route_unit(unit, len(self.writers))]
        if writer.faults.segment_site(unit, writer.generation):
            # injected segment corruption: trailing garbage lands in the
            # routed segment (no newline, so the torn-tail rule can heal
            # it on resume) and the simulated crash escapes like the
            # shard's node dying mid-write
            import os

            from repro.faults import InjectedSegmentCorruption

            with open(writer.path, "ab") as handle:
                handle.write(b"\x00\xff\xfe injected segment corruption")
                handle.flush()
                os.fsync(handle.fileno())
            raise InjectedSegmentCorruption(
                f"injected segment corruption (unit={unit!r}, "
                f"segment={writer.path!r}, generation={writer.generation})"
            )
        writer.append(unit, payload)

    def close(self) -> None:
        for writer in self.writers:
            writer.close()
