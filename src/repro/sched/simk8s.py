"""The ``simk8s`` backend: a simulated Kubernetes-flavoured scheduler.

Modeled on the shape of ReFrame's k8s scheduler: the controller turns
each work unit into a :class:`JobSpec`, submits it to a
:class:`SimK8sCluster`, then *polls* pod phases (``Pending`` ->
``Running`` -> ``Succeeded``/``Failed``), collects logs from failed
pods, resubmits failed jobs with a bumped attempt number, and deletes
jobs on completion or cancellation.  The cluster is an in-process stand
in — pods are threads with private runners (own compile cache each),
like real pods with private filesystems — so the whole control plane
(submission, state machine, log plumbing, cancellation, failure
budgets) is exercised without a cluster.

Failure semantics differ deliberately from the process engine: a real
batch controller cannot fall back to running work "in the parent" on a
remote node, so a job that keeps failing past ``max_pod_failures``
degrades to a HARNESS_ERROR-marked result (with the pod's last log line
as the detail) instead of hanging or crashing the campaign.

Determinism: poll order is sorted by job name and results are
reassembled in template order, so clean simk8s runs render
byte-identical reports to serial runs of the same configuration.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.engine import (
    CancelToken,
    CampaignInterrupted,
    EngineOutcomes,
    UnitCallback,
    harness_error_result,
    run_unit_resilient,
)
from repro.sched.base import SchedulerBackend

POD_PENDING = "Pending"
POD_RUNNING = "Running"
POD_SUCCEEDED = "Succeeded"
POD_FAILED = "Failed"


class PodFailure(RuntimeError):
    """A job exhausted its pod-failure budget; carries the last pod log."""


@dataclass
class JobSpec:
    """One submitted unit of work (a k8s Job with a single pod)."""

    name: str
    index: int
    template: object
    attempt: int = 0


@dataclass
class _Job:
    spec: JobSpec
    phase: str = POD_PENDING
    logs: List[str] = field(default_factory=list)
    result: Optional[object] = None
    future: Optional[object] = None
    #: the pod that ran the job (metrics worker attribution)
    worker: str = "pod"


class SimK8sCluster:
    """The simulated cluster API: submit / poll / logs / delete.

    ``pods`` bounds concurrency (the cluster's node capacity); a
    submitted job sits ``Pending`` until a pod thread picks it up.  Each
    pod thread lazily builds one private runner via ``runner_factory``
    and reuses it across the jobs it executes — pods are long-lived,
    caches are per-pod.
    """

    def __init__(self, pods: int, runner_factory, namespace: str = "repro"):
        if pods < 1:
            raise ValueError(f"pods must be >= 1 (got {pods})")
        self.namespace = namespace
        self._runner_factory = runner_factory
        self._local = threading.local()
        self._lock = threading.Lock()
        self._jobs: Dict[str, _Job] = {}
        self._pod_ids = iter(range(1_000_000))
        self._executor = ThreadPoolExecutor(
            max_workers=pods, thread_name_prefix=f"{namespace}-pod"
        )

    # ----------------------------------------------------------- cluster API

    def submit(self, spec: JobSpec) -> None:
        """Create the job; a pod will be scheduled for it when capacity
        allows."""
        with self._lock:
            if spec.name in self._jobs:
                raise ValueError(f"job {spec.name!r} already exists")
            job = _Job(spec=spec)
            job.logs.append(f"job {spec.name} created (attempt {spec.attempt})")
            self._jobs[spec.name] = job
        job.future = self._executor.submit(self._run_pod, spec.name)

    def poll(self) -> Dict[str, str]:
        """Snapshot of every live job's pod phase, sorted by job name."""
        with self._lock:
            return {name: self._jobs[name].phase
                    for name in sorted(self._jobs)}

    def logs(self, name: str) -> str:
        with self._lock:
            return "\n".join(self._jobs[name].logs)

    def result(self, name: str):
        with self._lock:
            return self._jobs[name].result

    def worker(self, name: str) -> str:
        with self._lock:
            return self._jobs[name].worker

    def delete(self, name: str) -> None:
        """Delete a job: forget its state, cancel its pod if still
        pending (a running pod finishes its unit first, as a real
        controller's grace period would allow)."""
        with self._lock:
            job = self._jobs.pop(name, None)
        if job is not None and job.future is not None:
            job.future.cancel()

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------- pod side

    def _pod_runner(self):
        runner = getattr(self._local, "runner", None)
        if runner is None:
            runner = self._runner_factory()
            self._local.runner = runner
            self._local.pod = f"pod-{next(self._pod_ids)}"
        return runner

    def _log(self, name: str, line: str) -> None:
        with self._lock:
            job = self._jobs.get(name)
            if job is not None:
                job.logs.append(line)

    def _set_phase(self, name: str, phase: str) -> None:
        with self._lock:
            job = self._jobs.get(name)
            if job is not None:
                job.phase = phase

    def _run_pod(self, name: str) -> None:
        with self._lock:
            job = self._jobs.get(name)
            if job is None:  # deleted while pending
                return
            spec = job.spec
        runner = self._pod_runner()
        pod = self._local.pod
        self._set_phase(name, POD_RUNNING)
        self._log(name, f"pod {pod} running {spec.name}")
        template = spec.template
        unit_key = f"{template.feature}:{template.language}"
        try:
            worker_fired = runner.faults.worker_site(unit_key, spec.attempt)
            if worker_fired or runner.faults.pod_site(unit_key, spec.attempt):
                # injected pod death (the OOMKilled of this simulation)
                label = "worker" if worker_fired else "pod"
                self._log(name, f"pod killed by injected {label} fault "
                                f"(attempt {spec.attempt})")
                self._set_phase(name, POD_FAILED)
                return
            result = run_unit_resilient(runner, template,
                                        base_attempt=spec.attempt)
        except CampaignInterrupted:
            self._log(name, "pod cancelled: campaign drain requested")
            self._set_phase(name, POD_FAILED)
            return
        except BaseException as err:  # a harness bug inside the pod
            self._log(name, f"pod crashed: {err!r}")
            self._set_phase(name, POD_FAILED)
            return
        with self._lock:
            job = self._jobs.get(name)
            if job is not None:
                job.result = result
                job.worker = pod
                job.logs.append(f"pod {pod} completed {spec.name}")
                job.phase = POD_SUCCEEDED


class SimK8sEngine:
    """The controller: submit every unit, poll, resubmit, degrade."""

    policy = "simk8s"

    def __init__(self, pods: int = 2, namespace: str = "repro",
                 poll_interval_s: float = 0.005,
                 max_pod_failures: int = 3):
        self.pods = pods
        self.workers = pods
        self.namespace = namespace
        self.poll_interval_s = poll_interval_s
        #: failed pods tolerated per job before the unit degrades to a
        #: HARNESS_ERROR row (a controller cannot serial-fallback)
        self.max_pod_failures = max_pod_failures
        #: injectable clock for tests
        self.sleeper = time.sleep

    def _job_name(self, index: int, attempt: int) -> str:
        return f"{self.namespace}-job{index:04d}-a{attempt}"

    def _pod_runner_factory(self, runner, cancel):
        from repro.harness.runner import ValidationRunner

        def factory():
            pod = ValidationRunner(runner.behavior, runner.config,
                                   tracer=runner.tracer)
            pod.live = runner.live
            pod.cancel = cancel
            pod.sleeper = runner.sleeper
            if pod.faults.enabled and runner.faults.enabled:
                pod.faults.sleeper = runner.faults.sleeper
            return pod

        return factory

    def run(self, templates: Sequence, runner,
            on_complete: Optional[UnitCallback] = None,
            cancel: Optional[CancelToken] = None) -> EngineOutcomes:
        if not templates:
            return []
        cancel = cancel if cancel is not None else CancelToken()
        cancel.check()
        tracer = runner.tracer
        live = getattr(runner, "live", None)
        cluster = SimK8sCluster(
            self.pods, self._pod_runner_factory(runner, cancel),
            namespace=self.namespace,
        )
        #: live job name -> template index
        active: Dict[str, int] = {}
        failures: Dict[int, int] = {}
        done: Dict[int, Tuple[object, str]] = {}
        try:
            for index, template in enumerate(templates):
                name = self._job_name(index, 0)
                cluster.submit(JobSpec(name=name, index=index,
                                       template=template))
                active[name] = index
            while active:
                progressed = False
                for name, phase in cluster.poll().items():
                    index = active.get(name)
                    if index is None or phase in (POD_PENDING, POD_RUNNING):
                        continue
                    progressed = True
                    del active[name]
                    if phase == POD_SUCCEEDED:
                        result = cluster.result(name)
                        worker = cluster.worker(name)
                        cluster.delete(name)
                        done[index] = (result, worker)
                        if on_complete is not None:
                            on_complete(index, templates[index], result)
                        continue
                    # Failed: collect the log, resubmit or degrade
                    log_tail = cluster.logs(name).splitlines()[-1]
                    cluster.delete(name)
                    count = failures[index] = failures.get(index, 0) + 1
                    if tracer.enabled:
                        tracer.event("engine.pod_failed", job=name,
                                     failures=count, log=log_tail)
                        tracer.metrics.counter("engine.pod_failed").inc()
                    if live is not None:
                        live.event("engine.worker_lost", lost_units=1,
                                   pool_deaths=count)
                    if cancel.cancelled():
                        # draining: do not resubmit, the check below raises
                        continue
                    if count > self.max_pod_failures:
                        template = templates[index]
                        result = harness_error_result(template, PodFailure(
                            f"job for {template.feature}:{template.language} "
                            f"failed {count} time(s); last pod log: "
                            f"{log_tail}"
                        ))
                        done[index] = (result, "controller")
                        if on_complete is not None:
                            on_complete(index, templates[index], result)
                        continue
                    attempt = failures[index]
                    respawn = self._job_name(index, attempt)
                    cluster.submit(JobSpec(name=respawn, index=index,
                                           template=templates[index],
                                           attempt=attempt))
                    active[respawn] = index
                cancel.check()
                if active and not progressed:
                    self.sleeper(self.poll_interval_s)
        finally:
            cluster.shutdown()
        cancel.check()
        return [done[i] for i in range(len(templates))]


class SimK8sBackend(SchedulerBackend):
    """Campaign placement onto a :class:`SimK8sEngine`."""

    name = "simk8s"

    def __init__(self, pods: int = 2, namespace: str = "repro",
                 poll_interval_s: float = 0.005,
                 max_pod_failures: int = 3):
        self.pods = pods
        self.namespace = namespace
        self.poll_interval_s = poll_interval_s
        self.max_pod_failures = max_pod_failures

    def engine(self, config):
        return SimK8sEngine(
            self.pods, namespace=self.namespace,
            poll_interval_s=self.poll_interval_s,
            max_pod_failures=self.max_pod_failures,
        )
