"""Scheduler backends: pluggable campaign placement (DESIGN §5h).

The execution *engines* (:mod:`repro.harness.engine`) decide how one
suite run's work units are interleaved in a single process.  A
*scheduler backend* decides where a whole campaign runs: it owns the
engine choice, the worker pool shape, and — for distributed flavours —
the journal layout.  Three implementations ship:

* ``local`` — wraps today's serial/thread/process engines unchanged;
* ``shards`` — work-stealing over N worker shards, each owning its own
  compile cache (and, with :class:`ShardedJournal`, its own journal
  segment), merged into the usual byte-identical report;
* ``simk8s`` — a simulated Kubernetes-flavoured backend (job-spec
  submission, pod-phase polling, log collection, cancellation) shaped
  after ReFrame's k8s scheduler, so the control-plane code paths a real
  cluster would exercise are testable in-process.

Every backend honours the engine protocol's per-campaign
:class:`~repro.harness.engine.CancelToken` and produces reports that are
byte-identical to a serial run of the same configuration.
"""

from repro.sched.base import (
    SCHEDULERS,
    SchedulerBackend,
    create_backend,
)
from repro.sched.local import LocalBackend
from repro.sched.shards import ShardedJournal, ShardsBackend, ShardsEngine
from repro.sched.simk8s import (
    POD_FAILED,
    POD_PENDING,
    POD_RUNNING,
    POD_SUCCEEDED,
    JobSpec,
    SimK8sBackend,
    SimK8sCluster,
    SimK8sEngine,
)

__all__ = [
    "SCHEDULERS", "SchedulerBackend", "create_backend",
    "LocalBackend",
    "ShardedJournal", "ShardsBackend", "ShardsEngine",
    "JobSpec", "SimK8sBackend", "SimK8sCluster", "SimK8sEngine",
    "POD_PENDING", "POD_RUNNING", "POD_SUCCEEDED", "POD_FAILED",
]
