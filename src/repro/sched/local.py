"""The ``local`` backend: today's engines behind the backend contract."""

from __future__ import annotations

from typing import Optional

from repro.sched.base import SchedulerBackend


class LocalBackend(SchedulerBackend):
    """Runs the campaign with the config's serial/thread/process engine.

    ``workers`` (and ``policy``) override the config's knobs when given,
    so a server can place campaigns onto a sized pool without rewriting
    each submission's config.
    """

    name = "local"

    def __init__(self, policy: Optional[str] = None,
                 workers: Optional[int] = None):
        self.policy = policy
        self.workers = workers

    def engine(self, config):
        from repro.harness.engine import create_engine

        return create_engine(self.policy or config.policy,
                             self.workers or config.workers)
