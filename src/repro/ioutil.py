"""Crash-safe file I/O helpers.

Every artifact the harness writes — reports, traces, metrics sidecars,
journal headers — goes through :func:`atomic_write_text`, so an observer
(a CI step, a dashboard scraper, a resumed campaign) can never read a
half-written file.  The recipe is the classic POSIX one:

1. write the full payload to a temporary file *in the target directory*
   (same filesystem, so the final rename cannot degrade to a copy);
2. flush and ``fsync`` the temporary file (the data is on disk, not just
   in the page cache);
3. ``os.replace`` it over the destination (atomic on POSIX and Windows);
4. best-effort ``fsync`` of the directory, so the rename itself survives
   a power cut.

Readers therefore see either the old complete file or the new complete
file — never a prefix.
"""

from __future__ import annotations

import os
import tempfile


def fsync_directory(path: str) -> None:
    """Best-effort fsync of a directory (persists renames/creations).

    Not every platform or filesystem allows opening a directory for
    fsync; failing to harden the rename is not worth crashing over.
    """
    try:
        fd = os.open(path or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (tmp + fsync + os.replace)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=f".{os.path.basename(path)}.", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    fsync_directory(directory)
