"""Compile cache: memoise ``Compiler.compile`` across suite runs.

The harness compiles the same generated program many times: repeated
iterations of one phase share a :class:`CompiledProgram` already, but the
Fig. 8 version sweeps, the Titan node sweeps and benchmark rounds recompile
byte-identical sources over and over.  A :class:`CompileCache` keyed on
``(source, language, name, behavior)`` makes every repeat a dictionary
lookup.  ``CompilerBehavior`` is a frozen (hashable) dataclass, so keying on
the whole behaviour — rather than just its label — guarantees two
implementations can never alias each other's cache entries.

Compile *errors* are cached too (negative caching): a vendor version that
rejects a directive rejects it identically on every attempt, and the
error-heavy beta sweeps benefit the most.

The cache is thread-safe (the ``thread`` execution policy shares one
runner); under the ``process`` policy each worker process holds its own
cache, and the engine aggregates hit counters from the per-phase flags
carried by the results.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple, TYPE_CHECKING

from repro.compiler.errors import CompileError, CompilerCrashError

if TYPE_CHECKING:  # pragma: no cover
    from repro.compiler.behavior import CompilerBehavior
    from repro.compiler.pipeline import CompiledProgram, Compiler

#: default number of entries kept (LRU beyond this); one full-suite run
#: against one behaviour needs ~2 entries per template (functional + cross)
DEFAULT_MAXSIZE = 4096


@dataclass
class CacheOutcome:
    """Result of a cached compile: exactly one of program/error is set."""

    program: Optional["CompiledProgram"]
    error: Optional[CompileError]
    hit: bool


@dataclass(frozen=True)
class CacheStats:
    """A consistent snapshot of the cache counters.

    Taken under the cache lock, so ``hits + misses == lookups`` always
    holds *within one snapshot* — reading the ``hits``/``misses``
    attributes separately under the thread policy can tear (one counter
    from before a concurrent update, the other from after) and report
    totals that don't sum to the number of lookups.
    """

    hits: int
    misses: int
    entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CompileCache:
    """Bounded LRU cache of compile results (successes and errors)."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, Tuple[object, object]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        return self.stats().hit_rate

    def stats(self) -> CacheStats:
        """Snapshot hits/misses/entries atomically (see CacheStats)."""
        with self._lock:
            return CacheStats(
                hits=self.hits, misses=self.misses, entries=len(self._entries)
            )

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    # ------------------------------------------------------------------ api

    @staticmethod
    def key(source: str, language: str, name: str,
            behavior: "CompilerBehavior") -> tuple:
        return (source, language, name, behavior)

    def get_or_compile(
        self,
        compiler: "Compiler",
        source: str,
        language: str,
        name: str,
        tracer=None,
    ) -> CacheOutcome:
        """Compile through the cache; never raises.

        A cached :class:`CompileError` counts as a hit — the second
        rejection is exactly as informative as the first and much cheaper.
        A *non*-``CompileError`` exception (an internal compiler crash) is
        accounted as a miss, wrapped in :class:`CompilerCrashError` and
        surfaced as the outcome's error — never cached, never raised.

        ``tracer`` (a :class:`repro.obs.Tracer`, optional) receives
        ``compile.cache_hit``/``compile.cache_miss`` events and counters;
        cached errors are hits, fresh errors additionally bump
        ``compile.errors``.
        """
        k = self.key(source, language, name, compiler.behavior)
        observe = tracer is not None and tracer.enabled
        with self._lock:
            entry = self._entries.get(k)
            if entry is not None:
                self._entries.move_to_end(k)
                self.hits += 1
        if entry is not None:
            program, error = entry
            if observe:
                tracer.event("compile.cache_hit", template=name,
                             language=language)
                tracer.metrics.counter("compile.cache_hits").inc()
            return CacheOutcome(program=program, error=error, hit=True)
        if observe:
            tracer.event("compile.cache_miss", template=name,
                         language=language)
            tracer.metrics.counter("compile.cache_misses").inc()
        try:
            program = compiler.compile(source, language, name)
        except CompileError as err:
            self._store(k, (None, err))
            if observe:
                tracer.metrics.counter("compile.errors").inc()
            return CacheOutcome(program=None, error=err, hit=False)
        except Exception as err:  # internal compiler crash: keep the contract
            # Account the miss (the attempt really went to the compiler) but
            # cache nothing: a transient crash must not poison future
            # compiles of the same source the way a negative-cached
            # diagnostic would.
            with self._lock:
                self.misses += 1
            if observe:
                tracer.event("compile.crashed", template=name,
                             language=language, error=repr(err))
                tracer.metrics.counter("compile.crashes").inc()
            crash = CompilerCrashError(
                f"internal compiler crash: {err!r}", cause=err
            )
            return CacheOutcome(program=None, error=crash, hit=False)
        self._store(k, (program, None))
        return CacheOutcome(program=program, error=None, hit=False)

    def _store(self, k: tuple, entry: Tuple[object, object]) -> None:
        with self._lock:
            self.misses += 1
            self._entries[k] = entry
            self._entries.move_to_end(k)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
