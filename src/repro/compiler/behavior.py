"""Compiler behaviour model — the bug-injection surface.

A :class:`CompilerBehavior` instance describes everything about a compiler
implementation that the validation suite can observe.  The conforming
reference compiler uses the defaults; simulated vendor versions
(:mod:`repro.compiler.vendors`) patch fields to reproduce the paper's
documented bug classes, e.g.:

* ``require_constant_parallelism_exprs`` — CAPS < 3.1.0 only accepted
  constant expressions in ``num_gangs``/``num_workers``/``vector_length``
  (Section V-B, Fig. 9) and raised a compile error otherwise;
* ``async_wedged_by_compute_data_clauses`` — PGI 13.x async family: an
  ``async`` on a compute construct carrying data clauses blocked the
  asynchronous activity and made ``acc_async_test`` misbehave (Fig. 10);
* ``skip_scalar_data_transfers`` — Cray did not copy scalars in ``copy``
  (Section V-B "Data copy for scalar variables");
* ``eliminate_copy_only_regions`` — Cray deleted compute regions it proved
  free of computation, breaking the copyout test design (Fig. 11);
* ``unsupported_directives`` / ``unsupported_clauses`` — features rejected
  at compile time (e.g. CAPS 3.1.x ``declare``);
* wrong-code toggles (``broken_reductions``, ``firstprivate_uninitialized``,
  ``ignore_private_clause``, ``ignore_loop_directive``, ...) — silent
  wrong-result bugs, the class the paper says dominates.

Everything downstream (lowering, runtime) consults only this object, never
vendor identity, so new vendor models are pure data.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Optional, Tuple

from repro.spec.devices import ACC_DEVICE_NVIDIA, DeviceType
from repro.spec.versions import ACC_10, SpecVersion


@dataclass(frozen=True)
class CompilerBehavior:
    """Observable behaviour of a (possibly buggy) OpenACC implementation."""

    # ---- identification ----------------------------------------------------
    name: str = "reference"
    version: str = "1.0"
    spec_version: SpecVersion = ACC_10
    languages: Tuple[str, ...] = ("c", "fortran")

    # ---- execution model (Section II: implementation-defined mapping) ------
    default_num_gangs: int = 16
    default_num_workers: int = 4
    default_vector_length: int = 8
    worker_ignored: bool = False
    mapping_description: str = "gang->block, worker->warp, vector->threads"
    concrete_device_type: DeviceType = ACC_DEVICE_NVIDIA

    # ---- compile-time restrictions -----------------------------------------
    #: directives rejected with a compile error, e.g. frozenset({"declare"})
    unsupported_directives: FrozenSet[str] = frozenset()
    #: (directive, clause) pairs rejected, e.g. {("parallel", "firstprivate")}
    unsupported_clauses: FrozenSet[Tuple[str, str]] = frozenset()
    #: runtime routines missing from the implementation
    unsupported_routines: FrozenSet[str] = frozenset()
    #: CAPS<3.1.0: num_gangs/num_workers/vector_length must be literals
    require_constant_parallelism_exprs: bool = False

    # ---- silent wrong-code toggles -----------------------------------------
    #: loop directives in this set are accepted but have no scheduling effect
    ignored_loop_levels: FrozenSet[str] = frozenset()  # subset of {gang,worker,vector}
    #: `#pragma acc loop` entirely ignored (body runs redundantly per gang)
    ignore_loop_directive: bool = False
    #: reduction clauses compute garbage (treated as shared, no combine)
    broken_reductions: FrozenSet[str] = frozenset()  # operator symbols, or {"*"} etc.
    #: firstprivate behaves like private (no host-value initialisation)
    firstprivate_uninitialized: bool = False
    #: private clauses ignored (variable stays shared)
    ignore_private_clause: bool = False
    #: collapse clause ignored (only outer loop associated)
    ignore_collapse: bool = False
    #: copyin behaves like create (no host->device transfer)
    copyin_as_create: bool = False
    #: copyout behaves like create (no device->host transfer)
    copyout_not_copied: bool = False
    #: update directives are no-ops
    ignore_update: bool = False
    #: scalars in copy/copyin/copyout clauses are not transferred (Cray)
    skip_scalar_data_transfers: bool = False
    #: compute regions containing only array-copy statements are deleted (Cray)
    eliminate_copy_only_regions: bool = False
    #: `if` clauses on compute/data constructs are ignored (always offload)
    ignore_if_clause: bool = False

    # ---- async behaviour -----------------------------------------------------
    #: PGI 13.x: async on a compute construct that itself carries data
    #: clauses executes synchronously AND wedges acc_async_test (returns -1)
    async_wedged_by_compute_data_clauses: bool = False
    #: async clauses entirely ignored (synchronous execution)
    ignore_async: bool = False

    # ---- runtime-library behaviour ------------------------------------------
    #: value acc_async_test returns when wedged
    wedged_async_test_value: int = -1

    # -------------------------------------------------------------- helpers

    @property
    def label(self) -> str:
        return f"{self.name} {self.version}"

    def supports_language(self, language: str) -> bool:
        return language in self.languages

    def with_(self, **changes) -> "CompilerBehavior":
        """Functional update (bug patches compose through this)."""
        return replace(self, **changes)


#: The conforming implementation every vendor is validated against.
REFERENCE_BEHAVIOR = CompilerBehavior()
