"""OpenACC construct execution (the lowering's runtime half).

This module gives directives their meaning on the simulated device:

* **parallel** — the region body executes redundantly, once per gang
  (sequentially, gang 0..G-1, so removed work-sharing directives produce
  deterministic wrong values — the cross-test mechanism of Section III);
* **kernels** — the body executes once; each ``loop`` (or auto-parallelised
  bare loop, after a simple dependence test) is distributed over gangs;
* **loop** — iterations are distributed cyclically over the named
  parallelism levels (gang/worker/vector).  Cyclic distribution makes the
  execution order differ from program order, so a loop with real carried
  dependences that is (wrongly) declared ``independent`` yields a wrong
  result, as the paper's independent test requires (Section IV-C1);
* **data / host_data / update / wait / cache / declare** — data-environment
  bookkeeping on the device present table;
* **async** — region execution (including its data movement) is enqueued
  and only runs at ``wait`` (Fig. 10 semantics).

Vendor bugs enter through :class:`~repro.compiler.behavior.CompilerBehavior`
flags consulted at the relevant decision points; this module never knows
which vendor it is simulating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.accsim.errors import AccRuntimeError, PresentError
from repro.accsim.memory import Mapping
from repro.accsim.values import ArrayValue, Cell, DevicePointer, coerce_scalar
from repro.ir.acc import Clause, DataRef, Directive
from repro.ir.astnodes import (
    AccConstruct,
    AccLoop,
    AccStandalone,
    Assign,
    Binary,
    Block,
    Call,
    DeclStmt,
    Expr,
    For,
    Function,
    Ident,
    If,
    Index,
    IntLit,
    Node,
    Stmt,
    Unary,
    While,
    walk,
)
from repro.spec.devices import ACC_DEVICE_HOST, DeviceType
from repro.spec.reductions import (
    canonical_reduction,
    reduction_combine,
    reduction_identity,
)

_DATA_ACTION_CLAUSES = (
    "copy", "copyin", "copyout", "create", "present",
    "present_or_copy", "present_or_copyin", "present_or_copyout",
    "present_or_create",
)


class _IterationSpace:
    """Lazy cartesian iteration space of one or more (collapsed) loops.

    Replaces ``list(itertools.product(*spaces))``: a 2e9-trip loop must cost
    O(1) memory so the interpreter's step budget — not the allocator — is
    what stops it.  Yields index tuples in exactly ``itertools.product``
    order (last loop varies fastest), and supports the cyclic ``[a::b]``
    sharing the gang/worker/vector schedulers use, by slicing a lazy
    ``range`` of flat indices and decoding on iteration.
    """

    __slots__ = ("_spaces", "_indices")

    def __init__(self, spaces: Sequence[Sequence[int]], indices=None):
        self._spaces = tuple(spaces)
        if indices is None:
            total = 1
            for space in self._spaces:
                total *= len(space)
            indices = range(total)
        self._indices = indices

    def __len__(self) -> int:
        return len(self._indices)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return _IterationSpace(self._spaces, self._indices[item])
        return self._decode(self._indices[item])

    def __iter__(self):
        spaces = self._spaces
        if len(spaces) == 1:
            space = spaces[0]
            for ix in self._indices:
                yield (space[ix],)
            return
        for ix in self._indices:
            yield self._decode(ix)

    def _decode(self, ix: int) -> Tuple[int, ...]:
        out = []
        for space in reversed(self._spaces):
            ix, r = divmod(ix, len(space))
            out.append(space[r])
        out.reverse()
        return tuple(out)


@dataclass
class _GangLoopReduction:
    op: str
    original: object
    acc: object


@dataclass
class RegionState:
    """State of the currently executing compute region."""

    mode: str  # 'parallel' | 'kernels'
    device: object
    host_env: object
    region_env: object
    num_gangs: int
    num_workers: int
    vector_length: int
    gang_id: Optional[int] = None
    worker_id: Optional[int] = None
    lane_id: Optional[int] = None
    mappings: List[Mapping] = field(default_factory=list)
    scalar_syncs: List[Tuple[Mapping, Cell]] = field(default_factory=list)
    # (loop node id, var) -> accumulated gang-level loop reduction
    gang_loop_reductions: Dict[Tuple[int, str], _GangLoopReduction] = field(
        default_factory=dict
    )


class AccExecutor:
    """Executes OpenACC statements for one :class:`Interpreter`."""

    def __init__(self, interp):
        self.interp = interp
        self.behavior = interp.behavior
        self.region: Optional[RegionState] = None
        #: >0 while executing a compute region body on the host (if(false))
        self._degraded = 0
        #: async tags wedged by the PGI async bug
        self._wedged_tags: Set[object] = set()
        self._wedged_all = False
        #: per-function processed declare mappings
        self._declare_stack: List[Tuple[Function, List[Mapping]]] = []

    # ----------------------------------------------------------- runtime hooks

    def hook_async_test(self, tag, result: int) -> int:
        if self._wedged_all or (tag is not None and tag in self._wedged_tags):
            return self.behavior.wedged_async_test_value
        return result

    def on_device_answer(self, requested: DeviceType) -> int:
        if self.region is not None:
            return 1 if self.region.device.device_type.matches(requested) else 0
        return 1 if ACC_DEVICE_HOST.matches(requested) else 0

    # ------------------------------------------------------ function declares

    def enter_function(self, fn: Function, env) -> None:
        processed: List[Mapping] = []
        self._declare_stack.append((fn, processed))
        # declares that reference globals can be processed immediately
        self._process_pending_declares(env)

    def exit_function(self, fn: Function) -> None:
        _fn, processed = self._declare_stack.pop()
        device = self.interp.machine.current_device()
        for mapping in reversed(processed):
            device.memory.exit(mapping)

    def _process_pending_declares(self, env) -> None:
        """Enter declare-directive data that has become resolvable.

        Only runs in host context: inside a compute region names resolve to
        device-side cells and must not create mappings of device data.
        """
        if self.region is not None or self._degraded:
            return
        if not self._declare_stack:
            return
        fn, processed = self._declare_stack[-1]
        if not fn.declares:
            return
        device = self.interp.machine.current_device()
        already = {id(m.cell) for m in processed}
        for directive in fn.declares:
            if directive.kind != "declare":
                continue
            for clause in directive.clauses:
                action = clause.name
                if action == "device_resident":
                    action = "create"
                if action == "deviceptr":
                    continue
                if action not in _DATA_ACTION_CLAUSES:
                    continue
                for ref in clause.refs:
                    cell = env.lookup(ref.name)
                    if cell is None or id(cell) in already:
                        continue
                    start, length = self._section_bounds(ref, cell, env)
                    mapping = device.memory.enter(
                        action, cell, start, length,
                        skip_scalar_transfer=self.behavior.skip_scalar_data_transfers,
                    )
                    processed.append(mapping)
                    already.add(id(cell))

    # ------------------------------------------------------------- standalone

    def exec_standalone(self, stmt: AccStandalone, env) -> None:
        self._process_pending_declares(env)
        d = stmt.directive
        if d.kind == "update":
            self._exec_update(d, env)
        elif d.kind == "wait":
            self._exec_wait(d, env)
        elif d.kind == "cache":
            pass  # a performance hint; semantics unchanged
        elif d.kind == "enter data":
            self._exec_enter_data(d, env)
        elif d.kind == "exit data":
            self._exec_exit_data(d, env)
        else:  # pragma: no cover - validated at compile time
            raise AccRuntimeError(f"unexpected standalone directive {d.kind}")

    def _exec_update(self, d: Directive, env) -> None:
        if self.behavior.ignore_update:
            return
        if_clause = d.clause("if")
        if if_clause is not None and not self.behavior.ignore_if_clause:
            if not _truthy(self.interp.eval(if_clause.expr, env)):
                return
        device = self.interp.machine.current_device()

        def do_update() -> None:
            for clause in d.clauses:
                if clause.name not in ("host", "device"):
                    continue
                for ref in clause.refs:
                    cell = env.lookup(ref.name)
                    if cell is None:
                        raise AccRuntimeError(
                            f"update of undefined variable {ref.name!r}"
                        )
                    start, length = self._section_bounds(ref, cell, env)
                    if clause.name == "host":
                        device.memory.update_host(cell, start, length)
                    else:
                        device.memory.update_device(cell, start, length)

        async_clause = d.clause("async")
        if async_clause is not None and not self.behavior.ignore_async:
            tag = (
                _as_int(self.interp.eval(async_clause.expr, env))
                if async_clause.expr is not None
                else None
            )
            device.queues.enqueue(tag, do_update, "update")
        else:
            do_update()

    def _exec_wait(self, d: Directive, env) -> None:
        device = self.interp.machine.current_device()
        wait_clause = d.clause("wait")
        if wait_clause is not None and wait_clause.expr is not None:
            device.queues.wait(_as_int(self.interp.eval(wait_clause.expr, env)))
        else:
            device.queues.wait_all()

    def _exec_enter_data(self, d: Directive, env) -> None:
        if_clause = d.clause("if")
        if if_clause is not None and not _truthy(self.interp.eval(if_clause.expr, env)):
            return
        device = self.interp.machine.current_device()
        for clause in d.clauses:
            if clause.name not in ("copyin", "create", "present_or_copyin", "present_or_create"):
                continue
            for ref in clause.refs:
                cell = env.lookup(ref.name)
                if cell is None:
                    raise AccRuntimeError(f"enter data of undefined {ref.name!r}")
                start, length = self._section_bounds(ref, cell, env)
                device.memory.enter(clause.name, cell, start, length)

    def _exec_exit_data(self, d: Directive, env) -> None:
        if_clause = d.clause("if")
        if if_clause is not None and not _truthy(self.interp.eval(if_clause.expr, env)):
            return
        device = self.interp.machine.current_device()
        for clause in d.clauses:
            if clause.name not in ("copyout", "delete"):
                continue
            for ref in clause.refs:
                cell = env.lookup(ref.name)
                if cell is None:
                    raise AccRuntimeError(f"exit data of undefined {ref.name!r}")
                if clause.name == "copyout":
                    device.memory.force_copyout(cell)
                else:
                    device.memory.delete(cell)

    # ------------------------------------------------------------- constructs

    def exec_construct(self, stmt: AccConstruct, env) -> None:
        self._process_pending_declares(env)
        kind = stmt.directive.kind
        if self._degraded:
            # if(false) host execution: constructs degrade to plain blocks
            self.interp.exec_stmt(stmt.body, env.child())
            return
        if kind == "data":
            self._exec_data(stmt, env)
        elif kind == "host_data":
            self._exec_host_data(stmt, env)
        elif kind in ("parallel", "kernels"):
            self._exec_compute(stmt.directive, stmt.body, env, kind)
        else:  # pragma: no cover - validated at compile time
            raise AccRuntimeError(f"unexpected construct {kind}")

    def _exec_data(self, stmt: AccConstruct, env) -> None:
        d = stmt.directive
        if_clause = d.clause("if")
        active = True
        if if_clause is not None and not self.behavior.ignore_if_clause:
            active = _truthy(self.interp.eval(if_clause.expr, env))
        device = self.interp.machine.current_device()
        mappings: List[Mapping] = []
        deviceptr_binds: Dict[str, Cell] = {}
        if active:
            mappings, deviceptr_binds = self._enter_data_clauses(d, env, device)
        body_env = env.child()
        for name, cell in deviceptr_binds.items():
            body_env.define(name, cell)
        try:
            self.interp.exec_stmt(stmt.body, body_env)
        finally:
            for mapping in reversed(mappings):
                device.memory.exit(mapping)

    def _exec_host_data(self, stmt: AccConstruct, env) -> None:
        d = stmt.directive
        device = self.interp.machine.current_device()
        body_env = env.child()
        use = d.clause("use_device")
        if use is not None:
            for ref in use.refs:
                cell = env.lookup(ref.name)
                if cell is None:
                    raise AccRuntimeError(f"use_device of undefined {ref.name!r}")
                mapping = device.memory.lookup(cell)
                if mapping is None:
                    raise PresentError(
                        f"use_device of {ref.name!r} which is not present on the device"
                    )
                body_env.define(
                    ref.name,
                    Cell(mapping.device_data, type=cell.type, name=ref.name),
                )
        self.interp.exec_stmt(stmt.body, body_env)

    # --------------------------------------------------------- compute regions

    def exec_acc_loop(self, stmt: AccLoop, env) -> None:
        """Dispatch for loop-family directives."""
        self._process_pending_declares(env)
        kind = stmt.directive.kind
        if kind in ("parallel loop", "kernels loop"):
            if self._degraded:
                self.interp.exec_for(stmt.loop, env)
                return
            construct_kind = kind.split()[0]
            construct_d, loop_d = _split_combined(stmt.directive)
            body = AccLoop(directive=loop_d, loop=stmt.loop, loc=stmt.loc)
            self._exec_compute(construct_d, body, env, construct_kind)
            return
        # plain `loop`
        if self.region is None or self._degraded:
            # orphan loop (or if(false) region): sequential host execution
            self.interp.exec_for(stmt.loop, env)
            return
        self._exec_device_loop(stmt, env)

    def _exec_compute(self, d: Directive, body: Stmt, env, mode: str) -> None:
        behavior = self.behavior
        if behavior.eliminate_copy_only_regions and _is_copy_only_region(body):
            return  # Cray: "deletes the full compute region" (Fig. 11)

        if_clause = d.clause("if")
        if if_clause is not None and not behavior.ignore_if_clause:
            if not _truthy(self.interp.eval(if_clause.expr, env)):
                # region executes on the host, no data movement
                self._degraded += 1
                try:
                    self.interp.exec_stmt(body, env.child())
                finally:
                    self._degraded -= 1
                return

        device = self.interp.machine.current_device()

        # clause expressions evaluate on the host at region entry
        num_gangs = self._clause_int(d, "num_gangs", env, device.profile.default_num_gangs)
        num_workers = device.profile.effective_workers(
            self._clause_int(d, "num_workers", env, None)
        )
        vector_length = self._clause_int(
            d, "vector_length", env, device.profile.default_vector_length
        )

        async_clause = d.clause("async")
        run_async = async_clause is not None and not behavior.ignore_async
        tag: Optional[int] = None
        if async_clause is not None and async_clause.expr is not None:
            tag = _as_int(self.interp.eval(async_clause.expr, env))

        wedged = (
            async_clause is not None
            and behavior.async_wedged_by_compute_data_clauses
            and any(c.name in _DATA_ACTION_CLAUSES for c in d.clauses)
        )
        if wedged:
            # PGI 13.x: the async activity is blocked -> synchronous execution
            # and the async-test routines misbehave for this tag
            run_async = False
            if tag is None:
                self._wedged_all = True
            else:
                self._wedged_tags.add(tag)

        def run_region() -> None:
            self._run_region_body(d, body, env, mode, device,
                                  num_gangs, num_workers, vector_length)

        if run_async:
            device.queues.enqueue(tag, run_region, f"{mode} region")
        else:
            run_region()

    def _run_region_body(
        self, d: Directive, body: Stmt, env, mode: str, device,
        num_gangs: int, num_workers: int, vector_length: int,
    ) -> None:
        from repro.compiler.interp import Env  # local import avoids cycle

        behavior = self.behavior
        device.kernels_launched += 1

        mappings, deviceptr_binds = self._enter_data_clauses(d, env, device)

        region_env = Env()
        scalar_syncs: List[Tuple[Mapping, Cell]] = []
        for mapping in mappings:
            cell = mapping.cell
            if mapping.is_scalar:
                dev_cell = Cell(mapping.device_data, type=cell.type, name=cell.name)
                region_env.define(cell.name, dev_cell)
                scalar_syncs.append((mapping, dev_cell))
            else:
                region_env.define(
                    cell.name, Cell(mapping.device_data, type=cell.type, name=cell.name)
                )
        for name, cell in deviceptr_binds.items():
            region_env.define(name, cell)

        # construct-level privatisation clauses
        private_names = _clause_names(d, "private")
        firstprivate_names = _clause_names(d, "firstprivate")
        reductions = _construct_reductions(d)
        explicit = (
            set(region_env.vars)
            | set(private_names)
            | set(firstprivate_names)
            | {name for _op, name in reductions}
        )

        implicit_scalars, implicit_arrays = self._implicit_data(
            body, d, env, explicit
        )
        for cell in implicit_arrays:
            action = "present_or_copy"
            mapping = device.memory.enter(action, cell)
            mappings.append(mapping)
            region_env.define(
                cell.name, Cell(mapping.device_data, type=cell.type, name=cell.name)
            )
        kernels_scalar_cells: Dict[str, object] = {}
        fp_snapshot: Dict[str, object] = {}
        for cell in implicit_scalars:
            if device.memory.is_present(cell):
                mapping = device.memory.lookup(cell)
                mapping.refcount += 1
                mappings.append(mapping)
                dev_cell = Cell(mapping.device_data, type=cell.type, name=cell.name)
                region_env.define(cell.name, dev_cell)
                scalar_syncs.append((mapping, dev_cell))
            elif mode == "kernels":
                # kernels: implicit scalars get copy semantics
                mapping = device.memory.enter(
                    "present_or_copy", cell,
                    skip_scalar_transfer=behavior.skip_scalar_data_transfers,
                )
                mappings.append(mapping)
                dev_cell = Cell(mapping.device_data, type=cell.type, name=cell.name)
                region_env.define(cell.name, dev_cell)
                scalar_syncs.append((mapping, dev_cell))
            else:
                # parallel: implicit firstprivate (snapshot per gang)
                fp_snapshot[cell.name] = (cell.value, cell.type)

        # explicit firstprivate snapshots (taken at region entry)
        for name in firstprivate_names:
            cell = env.lookup(name)
            if cell is None:
                raise AccRuntimeError(f"firstprivate of undefined {name!r}")
            fp_snapshot[name] = (cell.value, cell.type)

        # reduction originals + targets
        red_state: Dict[str, Tuple[str, object, List[object]]] = {}
        for op, name in reductions:
            cell = region_env.lookup(name) or env.lookup(name)
            if cell is None:
                raise AccRuntimeError(f"reduction over undefined {name!r}")
            red_state[name] = (op, cell.value, [])

        region = RegionState(
            mode=mode,
            device=device,
            host_env=env,
            region_env=region_env,
            num_gangs=num_gangs,
            num_workers=num_workers,
            vector_length=vector_length,
            mappings=mappings,
            scalar_syncs=scalar_syncs,
        )
        outer_region = self.region
        self.region = region
        try:
            if mode == "parallel":
                for g in range(num_gangs):
                    gang_env = region_env.child()
                    if not behavior.ignore_private_clause:
                        for name in private_names:
                            gang_env.define(name, _fresh_private(env, name))
                    for name, (value, ctype) in fp_snapshot.items():
                        if behavior.firstprivate_uninitialized and name in firstprivate_names:
                            gang_env.define(name, _fresh_private(env, name))
                        else:
                            gang_env.define(
                                name, Cell(_copy_value(value), type=ctype, name=name)
                            )
                    for name, (op, _orig, partials) in red_state.items():
                        cell = env.lookup(name) or region_env.lookup(name)
                        ident = reduction_identity(op, _type_base(cell))
                        gang_env.define(name, Cell(ident, type=cell.type, name=name))
                    region.gang_id = g
                    self.interp.exec_stmt(body, gang_env)
                    for name in red_state:
                        partial_cell = gang_env.lookup(name)
                        red_state[name][2].append(partial_cell.value)
            else:
                region.gang_id = None
                kern_env = region_env.child()
                for name, (value, ctype) in fp_snapshot.items():
                    kern_env.define(name, Cell(_copy_value(value), type=ctype, name=name))
                self.interp.exec_stmt(body, kern_env)
        finally:
            self.region = outer_region

        # construct-level reduction combine (skipped by broken_reductions)
        for name, (op, original, partials) in red_state.items():
            if canonical_reduction(op) in behavior.broken_reductions:
                continue
            value = original
            for partial in partials:
                value = reduction_combine(op, value, partial)
            target = env.lookup(name)
            if target is not None:
                target.value = coerce_scalar(_type_base(target), value)
            dev_target = region_env.lookup(name)
            if dev_target is not None and dev_target is not target:
                dev_target.value = coerce_scalar(_type_base(dev_target), value)

        # gang-level loop reductions accumulated across gangs
        for (key, name), state in region.gang_loop_reductions.items():
            if canonical_reduction(state.op) in behavior.broken_reductions:
                continue
            final = reduction_combine(state.op, state.original, state.acc)
            dev_target = region_env.lookup(name)
            if dev_target is not None:
                dev_target.value = coerce_scalar(_type_base(dev_target), final)
            else:
                target = env.lookup(name)
                if target is not None:
                    target.value = coerce_scalar(_type_base(target), final)

        # push scalar device cells back into their mappings, then exit
        for mapping, dev_cell in scalar_syncs:
            mapping.device_data = dev_cell.value
        for mapping in reversed(mappings):
            device.memory.exit(mapping)

    # --------------------------------------------------------- loop execution

    def _exec_device_loop(self, stmt: AccLoop, env) -> None:
        region = self.region
        behavior = self.behavior
        d = stmt.directive
        loop = stmt.loop

        if behavior.ignore_loop_directive:
            self.interp.exec_for(loop, env)
            return

        levels = self._levels(d, loop)
        levels = [l for l in levels if l not in behavior.ignored_loop_levels]

        loops, tuples = self._iteration_space(d, loop, env)
        private_names = [] if behavior.ignore_private_clause else _clause_names(d, "private")
        reductions = _loop_reductions(d)

        gang_level = "gang" in levels
        inner_levels = [l for l in levels if l != "gang"]

        if gang_level and region.mode == "parallel":
            # this gang executes only its cyclic share; reduction partials
            # accumulate region-wide and finalise at region end
            share = tuples[region.gang_id :: region.num_gangs]
            self._run_lanes(
                stmt, loops, share, inner_levels, env, private_names, reductions,
                gang_scope=True,
            )
        elif gang_level:
            # kernels mode: iterate gangs here
            for g in range(region.num_gangs):
                region.gang_id = g
                share = tuples[g :: region.num_gangs]
                self._run_lanes(
                    stmt, loops, share, inner_levels, env, private_names, reductions,
                    gang_scope=True,
                )
            region.gang_id = None
        else:
            self._run_lanes(
                stmt, loops, tuples, inner_levels, env, private_names, reductions,
                gang_scope=False,
            )

    def _run_lanes(
        self,
        stmt: AccLoop,
        loops: List[For],
        tuples: List[Tuple[int, ...]],
        levels: List[str],
        env,
        private_names: List[str],
        reductions: List[Tuple[str, str]],
        gang_scope: bool,
    ) -> None:
        """Execute `tuples` across worker/vector lanes, then fold reductions."""
        region = self.region
        behavior = self.behavior

        # originals for reduction targets, read before any lane runs
        originals: Dict[str, object] = {}
        targets: Dict[str, Cell] = {}
        for op, name in reductions:
            cell = env.lookup(name)
            if cell is None:
                raise AccRuntimeError(f"reduction over undefined {name!r}")
            targets[name] = cell
            originals[name] = cell.value

        accum: Dict[str, object] = {
            name: reduction_identity(op, _type_base(targets[name]))
            for op, name in reductions
        }

        def run_lane(lane_tuples: Sequence[Tuple[int, ...]]) -> None:
            lane_env = env.child()
            for name in private_names:
                lane_env.define(name, _fresh_private(env, name))
            red_cells: Dict[str, Cell] = {}
            for op, name in reductions:
                ident = reduction_identity(op, _type_base(targets[name]))
                cell = Cell(ident, type=targets[name].type, name=name)
                lane_env.define(name, cell)
                red_cells[name] = cell
            var_cells = [
                lane_env.define(l.var, Cell(0, name=l.var)) for l in loops
            ]
            body = loops[-1].body
            for values in lane_tuples:
                self.interp.steps += 1
                if self.interp.steps > self.interp.limits.max_steps:
                    from repro.accsim.errors import ExecutionTimeout

                    raise ExecutionTimeout("step budget exceeded in device loop")
                for cell, v in zip(var_cells, values):
                    cell.value = v
                self.interp.exec_stmt(body, lane_env.child())
            for op, name in reductions:
                accum[name] = reduction_combine(op, accum[name], red_cells[name].value)

        if "worker" in levels:
            W = max(1, region.num_workers)
            V = region.vector_length if "vector" in levels else 1
            for w in range(W):
                worker_share = tuples[w::W]
                if "vector" in levels:
                    for v in range(max(1, V)):
                        region.worker_id, region.lane_id = w, v
                        run_lane(worker_share[v::V])
                else:
                    region.worker_id = w
                    run_lane(worker_share)
            region.worker_id = region.lane_id = None
        elif "vector" in levels:
            V = max(1, region.vector_length)
            for v in range(V):
                region.lane_id = v
                run_lane(tuples[v::V])
            region.lane_id = None
        else:
            run_lane(tuples)

        # fold reductions into their targets
        for op, name in reductions:
            if canonical_reduction(op) in behavior.broken_reductions:
                continue
            if gang_scope and region.mode == "parallel":
                key = (id(stmt), name)
                state = region.gang_loop_reductions.get(key)
                if state is None:
                    host_cell = region.host_env.lookup(name)
                    original = host_cell.value if host_cell is not None else originals[name]
                    state = _GangLoopReduction(
                        op=op, original=original,
                        acc=reduction_identity(op, _type_base(targets[name])),
                    )
                    region.gang_loop_reductions[key] = state
                state.acc = reduction_combine(op, state.acc, accum[name])
            else:
                final = reduction_combine(op, originals[name], accum[name])
                targets[name].value = coerce_scalar(_type_base(targets[name]), final)

    # --------------------------------------------------------------- helpers

    def _levels(self, d: Directive, loop: For) -> List[str]:
        """Parallelism levels a loop directive maps to."""
        explicit = [l for l in ("gang", "worker", "vector") if d.has_clause(l)]
        if explicit:
            return explicit
        if d.has_clause("seq"):
            return []
        region = self.region
        if region is not None and region.mode == "kernels":
            if d.has_clause("independent"):
                return ["gang"]
            if d.has_clause("auto"):
                return [] if _has_loop_dependence(loop) else ["gang"]
            # bare loop in kernels: compiler dependence analysis
            return [] if _has_loop_dependence(loop) else ["gang"]
        # bare loop in a parallel region work-shares over gangs
        return ["gang"]

    def _iteration_space(
        self, d: Directive, loop: For, env
    ) -> Tuple[List[For], "_IterationSpace"]:
        """Apply collapse and build the (lazy) iteration-tuple space."""
        collapse = 1
        clause = d.clause("collapse")
        if clause is not None and not self.behavior.ignore_collapse:
            collapse = _as_int(self.interp.eval(clause.expr, env))
        loops = [loop]
        current = loop
        for _ in range(collapse - 1):
            inner = _tightly_nested(current)
            if inner is None:
                raise AccRuntimeError(
                    f"collapse({collapse}) requires tightly nested loops at {loop.loc}"
                )
            loops.append(inner)
            current = inner
        spaces = [self.interp.iteration_values(l, env) for l in loops]
        return loops, _IterationSpace(spaces)

    def _clause_int(self, d: Directive, name: str, env, default):
        clause = d.clause(name)
        if clause is None or clause.expr is None:
            return default
        return _as_int(self.interp.eval(clause.expr, env))

    def _section_bounds(self, ref: DataRef, cell: Cell, env):
        """Evaluate a data-clause section to (start, length) or (None, None)."""
        if not ref.sections:
            return None, None
        section = ref.sections[0]
        value = cell.value
        start = None
        if section.start is not None:
            start = _as_int(self.interp.eval(section.start, env))
        elif isinstance(value, ArrayValue):
            start = value.lowers[0]
        length = None
        if section.length is not None:
            length = _as_int(self.interp.eval(section.length, env))
        elif isinstance(value, ArrayValue):
            length = value.length - (start - value.lowers[0])
        return start, length

    def _enter_data_clauses(
        self, d: Directive, env, device
    ) -> Tuple[List[Mapping], Dict[str, Cell]]:
        """Process the explicit data clauses of a directive."""
        behavior = self.behavior
        mappings: List[Mapping] = []
        deviceptr_binds: Dict[str, Cell] = {}
        for clause in d.clauses:
            if clause.name == "deviceptr":
                for ref in clause.refs:
                    cell = env.lookup(ref.name)
                    if cell is None:
                        raise AccRuntimeError(f"deviceptr of undefined {ref.name!r}")
                    value = cell.value
                    if isinstance(value, DevicePointer):
                        elem = cell.type.base if cell.type is not None else "int"
                        value = value.as_array(elem)
                    if not isinstance(value, ArrayValue):
                        raise AccRuntimeError(
                            f"deviceptr variable {ref.name!r} does not hold a device pointer"
                        )
                    deviceptr_binds[ref.name] = Cell(value, type=cell.type, name=ref.name)
                continue
            if clause.name not in _DATA_ACTION_CLAUSES:
                continue
            action = clause.name
            if behavior.copyin_as_create and action in ("copyin", "present_or_copyin"):
                action = "create"
            if behavior.copyout_not_copied and action in ("copyout", "present_or_copyout"):
                action = "create"
            for ref in clause.refs:
                cell = env.lookup(ref.name)
                if cell is None:
                    raise AccRuntimeError(
                        f"data clause names undefined variable {ref.name!r}"
                    )
                start, length = self._section_bounds(ref, cell, env)
                mapping = device.memory.enter(
                    action, cell, start, length,
                    skip_scalar_transfer=behavior.skip_scalar_data_transfers,
                )
                mappings.append(mapping)
        return mappings, deviceptr_binds

    def _implicit_data(
        self, body: Stmt, d: Directive, env, explicit: Set[str]
    ) -> Tuple[List[Cell], List[Cell]]:
        """Determine implicitly mapped cells (1.0 default rules)."""
        scalars: List[Cell] = []
        arrays: List[Cell] = []
        seen: Set[str] = set()
        skip = set(explicit)
        # names declared inside the region shadow outer bindings
        declared_inside = {
            decl.name
            for node in walk(body)
            if isinstance(node, DeclStmt)
            for decl in node.decls
        }
        for node in walk(body):
            names: List[str] = []
            if isinstance(node, Ident):
                names.append(node.name)
            elif isinstance(node, (For,)):
                names.append(node.var)
            elif isinstance(node, DataRef):
                names.append(node.name)
            for name in names:
                if name in seen or name in skip or name in declared_inside:
                    continue
                seen.add(name)
                cell = env.lookup(name)
                if cell is None:
                    continue
                value = cell.value
                if isinstance(value, ArrayValue):
                    arrays.append(cell)
                elif isinstance(value, DevicePointer):
                    # an unmapped device pointer binds directly
                    scalars.append(cell)
                else:
                    scalars.append(cell)
        # loop induction variables become lane-private at execution time and
        # must still be *visible*; they are scalars, handled above.
        return scalars, arrays


# ---------------------------------------------------------------------------
# module-level helpers
# ---------------------------------------------------------------------------


def _truthy(value) -> bool:
    if isinstance(value, (int, float)):
        return value != 0
    return value is not None


def _as_int(value) -> int:
    import math

    if isinstance(value, float):
        return math.trunc(value)
    return int(value)


def _type_base(cell: Cell) -> str:
    if cell.type is not None and cell.type.pointer == 0:
        return cell.type.base
    return "double" if isinstance(cell.value, float) else "int"


def _copy_value(value):
    if isinstance(value, ArrayValue):
        return value.clone()
    return value


def _fresh_private(env, name: str) -> Cell:
    """A private copy with the shape/type of the visible binding."""
    outer = env.lookup(name)
    if outer is not None and isinstance(outer.value, ArrayValue):
        src = outer.value
        return Cell(
            ArrayValue(src.data.shape, src.type_base, src.lowers),
            type=outer.type,
            name=name,
        )
    ctype = outer.type if outer is not None else None
    default = 0.0 if (ctype is not None and ctype.base in ("float", "double")) else 0
    return Cell(default, type=ctype, name=name)


def _clause_names(d: Directive, clause_name: str) -> List[str]:
    out: List[str] = []
    for clause in d.clauses_named(clause_name):
        out.extend(clause.var_names)
    return out


def _construct_reductions(d: Directive) -> List[Tuple[str, str]]:
    """Reductions attached to a parallel construct (not its loops)."""
    if d.kind != "parallel":
        return []
    return _loop_reductions(d)


def _loop_reductions(d: Directive) -> List[Tuple[str, str]]:
    out: List[Tuple[str, str]] = []
    for clause in d.clauses_named("reduction"):
        for name in clause.var_names:
            out.append((clause.op, name))
    return out


#: clauses that belong to the `loop` part of a combined construct
_LOOP_ONLY_CLAUSES = {
    "gang", "worker", "vector", "collapse", "seq", "independent",
    "private", "reduction", "auto",
}


def _split_combined(d: Directive) -> Tuple[Directive, Directive]:
    """Split `parallel loop` / `kernels loop` into construct + loop parts."""
    construct_kind = d.kind.split()[0]
    construct = Directive(kind=construct_kind, source=d.source, loc=d.loc)
    loop = Directive(kind="loop", source=d.source, loc=d.loc)
    for clause in d.clauses:
        if clause.name in _LOOP_ONLY_CLAUSES:
            loop.clauses.append(clause)
        else:
            construct.clauses.append(clause)
    return construct, loop


def _tightly_nested(loop: For) -> Optional[For]:
    body = loop.body
    if isinstance(body, For):
        return body
    if isinstance(body, Block):
        stmts = [s for s in body.stmts if not isinstance(s, DeclStmt)]
        if len(stmts) == 1 and isinstance(stmts[0], For):
            return stmts[0]
        if len(stmts) == 1 and isinstance(stmts[0], Block):
            return _tightly_nested_block(stmts[0])
    return None


def _tightly_nested_block(block: Block) -> Optional[For]:
    stmts = [s for s in block.stmts if not isinstance(s, DeclStmt)]
    if len(stmts) == 1 and isinstance(stmts[0], For):
        return stmts[0]
    return None


def _has_loop_dependence(loop: For) -> bool:
    """Conservative dependence test for kernels auto-parallelisation.

    A loop is treated as dependent when (a) a scalar visible outside the
    loop is both read and written (an accumulation like ``s = s + a[i]``),
    or (b) an array is written at one subscript and read at a structurally
    different subscript (``a[i] = a[i-1] + 1``).
    """
    writes_scalar: Set[str] = set()
    reads_scalar: Set[str] = set()
    array_writes: Dict[str, List[Expr]] = {}
    array_reads: Dict[str, List[Expr]] = {}
    declared: Set[str] = {loop.var}
    for node in walk(loop.body):
        if isinstance(node, DeclStmt):
            declared.update(decl.name for decl in node.decls)
    for node in walk(loop.body):
        if isinstance(node, Assign):
            target = node.target
            if isinstance(target, Ident):
                writes_scalar.add(target.name)
                if node.op:
                    reads_scalar.add(target.name)
            elif isinstance(target, Index) and isinstance(target.base, Ident):
                array_writes.setdefault(target.base.name, []).extend(target.indices)
                if node.op:
                    array_reads.setdefault(target.base.name, []).extend(target.indices)
            _collect_reads(node.value, reads_scalar, array_reads)
    for name in writes_scalar & reads_scalar:
        if name not in declared:
            return True
    for name, write_idx in array_writes.items():
        read_idx = array_reads.get(name, [])
        for w in write_idx:
            for r in read_idx:
                if not _expr_equal(w, r):
                    return True
    return False


def _collect_reads(expr: Expr, scalars: Set[str], arrays: Dict[str, List[Expr]]) -> None:
    for node in walk(expr):
        if isinstance(node, Ident):
            scalars.add(node.name)
        elif isinstance(node, Index) and isinstance(node.base, Ident):
            arrays.setdefault(node.base.name, []).extend(node.indices)
            scalars.discard(node.base.name)


def _expr_equal(a: Expr, b: Expr) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, Ident):
        return a.name == b.name
    if isinstance(a, IntLit):
        return a.value == b.value
    if isinstance(a, Binary):
        return a.op == b.op and _expr_equal(a.left, b.left) and _expr_equal(a.right, b.right)
    if isinstance(a, Unary):
        return a.op == b.op and _expr_equal(a.operand, b.operand)
    return False


def _is_copy_only_region(body: Stmt) -> bool:
    """True when every assignment in the region merely copies array elements
    (no arithmetic, no calls) — the pattern Cray's optimiser deleted."""
    assigns = [n for n in walk(body) if isinstance(n, Assign)]
    if not assigns:
        return False
    for node in assigns:
        if node.op:
            return False
        if not isinstance(node.target, Index):
            return False
        if not isinstance(node.value, (Index, Ident)):
            return False
    # any call or conditional means real work
    for node in walk(body):
        if isinstance(node, (Call, If, While)):
            return False
    return True
