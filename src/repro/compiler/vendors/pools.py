"""Deterministic feature pools for unsupported-feature bug inventories.

Beta-era compiler versions fail large numbers of tests because whole
feature groups are simply not implemented yet.  To keep Table I counts
stable regardless of suite-authoring order, pools draw from the sorted 1.0
feature list minus a core set every version supported from day one (the
constructs without which nothing at all would run — the paper's Fig. 8
shows even the worst betas passing a fraction of the suite).
"""

from __future__ import annotations

from typing import List, Sequence

#: features every simulated vendor version supports (the minimal working
#: subset visible in the paper: data/kernels/loop/parallel/update were
#: prioritised over e.g. declare — Section V-A)
CORE_FEATURES = frozenset({
    "parallel", "kernels", "data", "loop",
    "parallel loop", "kernels loop",
    "parallel.copy", "parallel.copyin", "parallel.copyout",
    "parallel.num_gangs", "parallel.reduction",
    "kernels.copy", "kernels.copyin", "kernels.copyout",
    "data.copy", "data.copyin", "data.copyout",
    "loop.gang", "wait",
    "runtime.acc_on_device",
})


def eligible_pool(all_features: Sequence[str]) -> List[str]:
    """Sorted pool of features that may appear in unsupported inventories."""
    return sorted(
        f for f in all_features
        if f not in CORE_FEATURES and not f.startswith("env.")
    )


def take(pool: Sequence[str], count: int, exclude: Sequence[str] = ()) -> List[str]:
    """First `count` pool features not in `exclude` (deterministic)."""
    excluded = set(exclude)
    out = [f for f in pool if f not in excluded][:count]
    if len(out) < count:
        raise ValueError(
            f"feature pool too small: wanted {count}, have {len(out)}"
        )
    return out
