"""Simulated CAPS compiler versions (Table I row 1; Fig. 8a).

Calibration targets (bugs identified, C / Fortran):

====== ====== ======
ver      C      F
====== ====== ======
3.0.7    36     32
3.0.8    24     70
3.1.0    20     15
3.2.3     1      1
3.2.4     1      1
3.3.0     1      0
3.3.3     0      0
3.3.4     0      0
====== ====== ======

Narrative encoded (Section V-A/V-B): 3.0.x were beta versions with large
unsupported-feature inventories — 3.0.8's Fortran frontend regressed badly;
versions before 3.1.0 additionally accepted only *constant* expressions in
``num_gangs``/``num_workers``/``vector_length`` (Fig. 9); 3.1.x still had
no working ``declare`` ("probably due to priority given to other important
directives such as data, kernels, loop, parallel and update"); from 3.2.x
quality is high and the last releases are clean.
"""

from __future__ import annotations

from typing import List

from repro.compiler.vendors.bugmodel import (
    BugRecord,
    VendorVersion,
    unsupported_feature_bug,
)
from repro.compiler.vendors.pools import eligible_pool, take
from repro.spec.devices import ACC_DEVICE_CUDA

_BASE = dict(
    mapping_description=(
        "gang->grid-x, worker->block-y, vector->block-x (Section II)"
    ),
    # Section V-C: "CAPS compiler 3.3.3 considers two additional device
    # types: acc_device_cuda and acc_device_opencl"
    concrete_device_type=ACC_DEVICE_CUDA,
)


def _const_expr_bug(version: str) -> BugRecord:
    return BugRecord.make(
        bug_id=f"caps-{version}-c-const-parallelism",
        title="variable expressions rejected in num_gangs/num_workers/"
              "vector_length",
        language="c",
        patch={"require_constant_parallelism_exprs": True},
        # latent for the standard suite: per Section IV-A1 the tests
        # deliberately "use a constant value for our validation test
        # purposes"; the Fig. 9 variable-expression variant exposes it
        affects=(),
        description=(
            "Versions earlier than 3.1.0 only supported constant "
            "expressions inside num_gangs/num_workers/vector_length "
            "(Section V-B, Fig. 9)."
        ),
    )


def _declare_bug(version: str, language: str) -> BugRecord:
    tag = "c" if language == "c" else "f"
    return BugRecord.make(
        bug_id=f"caps-{version}-{tag}-declare",
        title=f"declare directive not functional ({language})",
        language=language,
        patch={"unsupported_directives": frozenset({"declare"})},
        affects=("declare.copy", "declare.copyin", "declare.copyout",
                 "declare.create", "declare.present",
                 "declare.device_resident"),
        description=(
            "CAPS 3.1.x had not passed the declare test scenarios "
            "(Section V-A)."
        ),
    )


def _beta_unsupported(version: str, language: str, count: int,
                      all_features: List[str]) -> List[BugRecord]:
    pool = eligible_pool(all_features)
    return [
        unsupported_feature_bug("caps", version, feature, language)
        for feature in take(pool, count)
    ]


def build_caps_versions() -> List[VendorVersion]:
    # import here: vendor tables are calibrated against the actual corpus
    from repro.suite import openacc10_suite

    features = openacc10_suite().features()
    versions: List[VendorVersion] = []

    # --- 3.0.7 (beta) ------------------------------------------------------
    versions.append(VendorVersion(
        vendor="caps", version="3.0.7",
        c_bugs=[_const_expr_bug("3.0.7")]
               + _beta_unsupported("3.0.7", "c", 35, features),
        fortran_bugs=_beta_unsupported("3.0.7", "fortran", 32, features),
        base_overrides=dict(_BASE),
    ))

    # --- 3.0.8 (beta; Fortran frontend regression) --------------------------
    versions.append(VendorVersion(
        vendor="caps", version="3.0.8",
        c_bugs=[_const_expr_bug("3.0.8")]
               + _beta_unsupported("3.0.8", "c", 23, features),
        fortran_bugs=_beta_unsupported("3.0.8", "fortran", 70, features),
        base_overrides=dict(_BASE),
    ))

    # --- 3.1.0 (const-expr fixed; declare still broken) ---------------------
    versions.append(VendorVersion(
        vendor="caps", version="3.1.0",
        c_bugs=[_declare_bug("3.1.0", "c")]
               + _beta_unsupported("3.1.0", "c", 19, features),
        fortran_bugs=[_declare_bug("3.1.0", "fortran")]
                     + _beta_unsupported("3.1.0", "fortran", 14, features),
        base_overrides=dict(_BASE),
    ))

    # --- 3.2.3 / 3.2.4 (one residual bug each) ------------------------------
    for version in ("3.2.3", "3.2.4"):
        versions.append(VendorVersion(
            vendor="caps", version=version,
            c_bugs=[unsupported_feature_bug("caps", version,
                                            "update.async", "c")],
            fortran_bugs=[unsupported_feature_bug("caps", version,
                                                  "update.async", "fortran")],
            base_overrides=dict(_BASE),
        ))

    # --- 3.3.0 (Fortran clean; one C residual) ------------------------------
    versions.append(VendorVersion(
        vendor="caps", version="3.3.0",
        c_bugs=[unsupported_feature_bug("caps", "3.3.0",
                                        "runtime.acc_async_test_all", "c")],
        fortran_bugs=[],
        base_overrides=dict(_BASE),
    ))

    # --- 3.3.3 / 3.3.4 (clean) ----------------------------------------------
    for version in ("3.3.3", "3.3.4"):
        versions.append(VendorVersion(
            vendor="caps", version=version,
            base_overrides=dict(_BASE),
        ))
    return versions


CAPS_VERSIONS: List[VendorVersion] = build_caps_versions()
