"""Simulated Cray compiler versions (Table I row 3; Fig. 8c).

Calibration targets (bugs identified, C / Fortran):

====== ====== ======
ver      C      F
====== ====== ======
8.1.2    16      6
8.1.3    16      6
8.1.4    16      6
8.1.5    16      6
8.1.6    16      6
8.1.7    16      5
8.1.8    16      5
8.2.0    16      5
====== ====== ======

Narrative encoded: "the bar plots mostly show no variation" — the C
inventory is constant across all eight versions and includes the two
behavioural bugs discussed in Section V-B: scalar variables are not
transferred by copy clauses ("Data copy for scalar variables"), and the
optimiser deletes compute regions it proves free of computation, which
breaks the Fig. 11 copyout test design.  The Fortran inventory is small and
loses one bug at 8.1.7.
"""

from __future__ import annotations

from typing import List

from repro.compiler.vendors.bugmodel import (
    BugRecord,
    VendorVersion,
    unsupported_feature_bug,
)

_BASE = dict(
    mapping_description=(
        "gang->thread block, worker->warp, vector->SIMT group (Section II)"
    ),
)

_VERSIONS = (
    "8.1.2", "8.1.3", "8.1.4", "8.1.5", "8.1.6", "8.1.7", "8.1.8", "8.2.0",
)


def _scalar_copy_bug(version: str) -> BugRecord:
    return BugRecord.make(
        bug_id=f"cray-{version}-c-scalar-copy",
        title="scalar variables are not transferred by data copy clauses",
        language="c",
        patch={"skip_scalar_data_transfers": True},
        affects=("parallel", "kernels", "loop.seq", "loop.collapse",
                 "loop.private", "runtime.acc_on_device"),
        description=(
            "Copying a scalar between host and device silently does "
            "nothing (Section V-B 'Data copy for scalar variables'); every "
            "test observing results through a copied scalar fails."
        ),
    )


def _dead_region_bug(version: str) -> BugRecord:
    return BugRecord.make(
        bug_id=f"cray-{version}-c-dead-region-elimination",
        title="compute regions without computation are deleted",
        language="c",
        patch={"eliminate_copy_only_regions": True},
        affects=(),
        description=(
            "Forward substitution plus dead-code elimination removes "
            "compute regions that only copy arrays, defeating the original "
            "copyout test design (Section V-B, Fig. 11); the suite's tests "
            "were redesigned to always compute, so this bug is latent here."
        ),
    )


_C_UNSUPPORTED = [
    "declare.copy", "declare.copyin", "declare.copyout", "declare.create",
    "declare.present", "declare.device_resident",
    "host_data.use_device", "cache",
    "parallel.deviceptr", "kernels.deviceptr", "data.deviceptr",
    "runtime.acc_malloc", "runtime.acc_free", "update.async",
]

_F_UNSUPPORTED = [
    "declare.copy", "declare.create", "host_data.use_device",
    "update.async", "runtime.acc_malloc",
]


def build_cray_versions() -> List[VendorVersion]:
    versions: List[VendorVersion] = []
    for version in _VERSIONS:
        c_bugs: List[BugRecord] = [
            _scalar_copy_bug(version),
            _dead_region_bug(version),
        ]
        for feature in _C_UNSUPPORTED:
            c_bugs.append(unsupported_feature_bug("cray", version, feature, "c"))
        fortran_features = list(_F_UNSUPPORTED)
        if version in ("8.1.2", "8.1.3", "8.1.4", "8.1.5", "8.1.6"):
            fortran_features.append("loop.collapse")
        fortran_bugs = [
            unsupported_feature_bug("cray", version, feature, "fortran")
            for feature in fortran_features
        ]
        versions.append(VendorVersion(
            vendor="cray", version=version,
            c_bugs=c_bugs, fortran_bugs=fortran_bugs,
            base_overrides=dict(_BASE),
        ))
    return versions


CRAY_VERSIONS: List[VendorVersion] = build_cray_versions()
