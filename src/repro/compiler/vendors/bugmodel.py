"""Bug inventory model.

A :class:`BugRecord` is one vendor bug as the paper's Table I counts them:
an identifiable defect in one language frontend of one compiler version
range.  Its ``patch`` is a partial :class:`CompilerBehavior` update; a
version's behaviour for a language is the reference behaviour plus the
union of its bug patches (:func:`compose_behavior`).

:func:`feature_unsupported_patch` maps a feature id to the patch that makes
that feature fail compilation — the dominant bug class in early/beta
releases ("if the user uses an OpenACC feature that is not yet supported by
the compiler", Section V).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.compiler.behavior import CompilerBehavior, REFERENCE_BEHAVIOR

#: behaviour fields that merge as set-unions when composing patches
_SET_FIELDS = (
    "unsupported_directives",
    "unsupported_clauses",
    "unsupported_routines",
    "ignored_loop_levels",
    "broken_reductions",
)


@dataclass(frozen=True)
class BugRecord:
    """One counted vendor bug."""

    bug_id: str
    title: str
    language: str  # 'c' | 'fortran'
    patch: Tuple[Tuple[str, object], ...] = ()
    #: feature ids whose tests this bug is expected to fail (documentation
    #: and detection-check targets; collateral failures may add more)
    affects: Tuple[str, ...] = ()
    description: str = ""

    @staticmethod
    def make(bug_id: str, title: str, language: str,
             patch: Optional[Dict[str, object]] = None,
             affects: Iterable[str] = (),
             description: str = "") -> "BugRecord":
        items = tuple(sorted((patch or {}).items()))
        return BugRecord(
            bug_id=bug_id, title=title, language=language, patch=items,
            affects=tuple(affects), description=description,
        )


def compose_behavior(
    base: CompilerBehavior, bugs: Iterable[BugRecord]
) -> CompilerBehavior:
    """Reference/base behaviour plus the union of the bug patches."""
    changes: Dict[str, object] = {}
    for bug in bugs:
        for key, value in bug.patch:
            if key in _SET_FIELDS:
                current = changes.get(key, getattr(base, key))
                changes[key] = frozenset(current) | frozenset(value)
            else:
                changes[key] = value
    return base.with_(**changes) if changes else base


#: reduction feature leaf -> clause operator symbol
_REDUCTION_OPS = {
    "add": "+", "mul": "*", "max": "max", "min": "min",
    "bitand": "&", "bitor": "|", "bitxor": "^",
    "logand": "&&", "logor": "||",
}


def feature_unsupported_patch(feature: str) -> Dict[str, object]:
    """Patch making `feature`'s test fail at compile time (or, for
    reduction operators, produce silent wrong code)."""
    if feature.startswith("runtime."):
        return {"unsupported_routines": frozenset({feature.split(".", 1)[1]})}
    if feature.startswith("loop.reduction."):
        leaf = feature.rsplit(".", 1)[-1]          # e.g. int_add
        op = _REDUCTION_OPS[leaf.split("_", 1)[1]]
        return {"broken_reductions": frozenset({op})}
    if "." in feature:
        directive, clause = feature.split(".", 1)
        return {"unsupported_clauses": frozenset({(directive, clause)})}
    return {"unsupported_directives": frozenset({feature})}


def unsupported_feature_bug(vendor: str, version: str, feature: str,
                            language: str) -> BugRecord:
    """Convenience constructor for the unsupported-feature bug class."""
    lang_tag = "c" if language == "c" else "f"
    return BugRecord.make(
        bug_id=f"{vendor}-{version}-{lang_tag}-{feature}",
        title=f"{feature} not supported ({language})",
        language=language,
        patch=feature_unsupported_patch(feature),
        affects=(feature,),
        description=(
            f"The {language} frontend of {vendor} {version} rejects or "
            f"mishandles `{feature}`."
        ),
    )


@dataclass
class VendorVersion:
    """One (vendor, version) with its per-language bug inventory."""

    vendor: str
    version: str
    c_bugs: List[BugRecord] = field(default_factory=list)
    fortran_bugs: List[BugRecord] = field(default_factory=list)
    #: vendor-wide base-behaviour overrides (execution-model mapping etc.)
    base_overrides: Dict[str, object] = field(default_factory=dict)

    def bugs(self, language: str) -> List[BugRecord]:
        return self.c_bugs if language == "c" else self.fortran_bugs

    def bug_count(self, language: str) -> int:
        return len(self.bugs(language))

    def behavior(self, language: str) -> CompilerBehavior:
        base = REFERENCE_BEHAVIOR.with_(
            name=self.vendor, version=self.version, **self.base_overrides
        )
        return compose_behavior(base, self.bugs(language))

    @property
    def label(self) -> str:
        return f"{self.vendor} {self.version}"
