"""Simulated vendor compilers (Section V).

Each vendor module defines the per-version bug inventories whose *counts*
reproduce Table I exactly; the bugs themselves are behaviour patches on
:class:`~repro.compiler.behavior.CompilerBehavior`, so running the suite
against a version reproduces the qualitative pass-rate evolution of
Fig. 8(a)/(b)/(c).
"""

from repro.compiler.vendors.bugmodel import BugRecord, VendorVersion, compose_behavior
from repro.compiler.vendors.caps import CAPS_VERSIONS
from repro.compiler.vendors.pgi import PGI_VERSIONS
from repro.compiler.vendors.cray import CRAY_VERSIONS
from repro.compiler.vendors.registry import VENDORS, vendor_versions, vendor_version

__all__ = [
    "BugRecord", "VendorVersion", "compose_behavior",
    "CAPS_VERSIONS", "PGI_VERSIONS", "CRAY_VERSIONS",
    "VENDORS", "vendor_versions", "vendor_version",
]
