"""Simulated PGI compiler versions (Table I row 2; Fig. 8b).

Calibration targets (bugs identified, C / Fortran):

====== ====== ======
ver      C      F
====== ====== ======
12.6      8     14
12.8      8     14
12.9      7     14
12.10     6     14
13.2      6     14
13.4      5     13
13.6      5     13
13.8      5     13
====== ====== ======

Narrative encoded: the persistent async-family bug of Section V-B
(``async`` on a compute construct that carries data clauses blocks the
asynchronous activity and wedges ``acc_async_test`` at the caller's initial
value, Fig. 10 — "it can pass all of them if the data clauses are moved out
using data directive"); steady fixes from 12.8 to 12.10; a 13.2 regression
from the multi-target reorganisation that widens one data-clause bug (so
Fig. 8b's pass rate dips although the bug *count* stays at six); recovery
from 13.4.  PGI's execution model ignores the worker level (Section II).
"""

from __future__ import annotations

from typing import List

from repro.compiler.vendors.bugmodel import (
    BugRecord,
    VendorVersion,
    unsupported_feature_bug,
)

_BASE = dict(
    worker_ignored=True,
    mapping_description=(
        "gang->thread block, vector->threads, worker ignored (Section II)"
    ),
)

_VERSIONS = ("12.6", "12.8", "12.9", "12.10", "13.2", "13.4", "13.6", "13.8")


def _wedge_bug(version: str, language: str) -> BugRecord:
    tag = "c" if language == "c" else "f"
    return BugRecord.make(
        bug_id=f"pgi-{version}-{tag}-async-wedge",
        title="async on compute constructs with data clauses blocks "
              "asynchronous execution",
        language=language,
        patch={"async_wedged_by_compute_data_clauses": True},
        affects=("parallel.async", "kernels.async",
                 "runtime.acc_async_test", "runtime.acc_async_test_all"),
        description=(
            "acc_async_test always returned the caller's initial value (-1) "
            "when the async compute construct carried data clauses; moving "
            "the data clauses to a data construct made the tests pass "
            "(Section V-B, Fig. 10)."
        ),
    )


def _reorg_bug(version: str) -> BugRecord:
    return BugRecord.make(
        bug_id=f"pgi-{version}-c-multitarget-kernels-data",
        title="multi-target reorganisation regression: kernels data "
              "clauses rejected",
        language="c",
        patch={"unsupported_clauses": frozenset({
            ("kernels", "copyin"), ("kernels", "deviceptr"),
            ("kernels", "present"), ("kernels", "create"),
        })},
        affects=("kernels.copyin", "kernels.deviceptr", "kernels.present",
                 "kernels.create", "kernels.async"),
        description=(
            "The 13.x releases were reorganised to support multiple "
            "targets; 13.2's pass rate regressed below 12.10 (Section V-A)."
        ),
    )


def _update_wide_bug(version: str) -> BugRecord:
    return BugRecord.make(
        bug_id=f"pgi-{version}-c-update-ignored",
        title="update directives have no effect",
        language="c",
        patch={"ignore_update": True},
        affects=("update.host", "update.device", "update.if",
                 "update.async"),
        description=(
            "Early releases silently dropped update data motion — a "
            "wrong-code bug affecting every test that fetches results "
            "mid-region."
        ),
    )


def _c_bugs(version: str) -> List[BugRecord]:
    bugs: List[BugRecord] = [_wedge_bug(version, "c")]
    # persistent inventory present in every version
    persistent = [
        "kernels.deviceptr",
        "declare.device_resident",
        "loop.reduction.int_bitxor",   # broken ^ reduction (silent)
        "cache",
    ]
    fixable = []
    if version in ("12.6", "12.8"):
        fixable.append("parallel.firstprivate")
    if version in ("12.6", "12.8", "12.9"):
        fixable.append("loop.collapse")
        bugs.append(_update_wide_bug(version))   # wide early update bug
    elif version in ("12.10", "13.2"):
        fixable.append("update.device")          # narrowed, fixed in 13.4
    if version == "13.2":
        # the reorganisation regression temporarily subsumes the
        # kernels.deviceptr bug (count stays at six, failures widen)
        persistent = [f for f in persistent if f != "kernels.deviceptr"]
        bugs.append(_reorg_bug(version))
    for feature in persistent + fixable:
        bugs.append(unsupported_feature_bug("pgi", version, feature, "c"))
    return bugs


def _fortran_bugs(version: str) -> List[BugRecord]:
    bugs: List[BugRecord] = [_wedge_bug(version, "fortran")]
    persistent = [
        "declare.copy", "declare.copyin", "declare.copyout",
        "declare.create", "declare.present", "declare.device_resident",
        "host_data.use_device",
        "kernels.deviceptr", "data.deviceptr", "parallel.deviceptr",
        "cache", "update.async",
    ]
    fixable = []
    if version in ("12.6", "12.8", "12.9", "12.10", "13.2"):
        fixable.append("loop.collapse")
    for feature in persistent + fixable:
        bugs.append(unsupported_feature_bug("pgi", version, feature, "fortran"))
    return bugs


def build_pgi_versions() -> List[VendorVersion]:
    return [
        VendorVersion(
            vendor="pgi", version=version,
            c_bugs=_c_bugs(version),
            fortran_bugs=_fortran_bugs(version),
            base_overrides=dict(_BASE),
        )
        for version in _VERSIONS
    ]


PGI_VERSIONS: List[VendorVersion] = build_pgi_versions()
