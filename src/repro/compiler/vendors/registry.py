"""Vendor registry."""

from __future__ import annotations

from typing import Dict, List

from repro.compiler.vendors.bugmodel import VendorVersion
from repro.compiler.vendors.caps import CAPS_VERSIONS
from repro.compiler.vendors.cray import CRAY_VERSIONS
from repro.compiler.vendors.pgi import PGI_VERSIONS

VENDORS: Dict[str, List[VendorVersion]] = {
    "caps": CAPS_VERSIONS,
    "pgi": PGI_VERSIONS,
    "cray": CRAY_VERSIONS,
}


def vendor_versions(vendor: str) -> List[VendorVersion]:
    try:
        return VENDORS[vendor]
    except KeyError:
        raise KeyError(
            f"unknown vendor {vendor!r} (have: {', '.join(VENDORS)})"
        ) from None


def vendor_version(vendor: str, version: str) -> VendorVersion:
    for vv in vendor_versions(vendor):
        if vv.version == version:
            return vv
    raise KeyError(f"unknown {vendor} version {version!r}")
