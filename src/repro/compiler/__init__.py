"""The simulated OpenACC compiler.

:class:`~repro.compiler.pipeline.Compiler` bundles a frontend (mini-C or
mini-Fortran), a validation pass producing compile-time diagnostics, and the
execution engine (:mod:`repro.compiler.interp` driving
:mod:`repro.compiler.exec_model` on the accelerator simulator).  Behavioural
variation between implementations — including every injected vendor bug —
is carried entirely by :class:`~repro.compiler.behavior.CompilerBehavior`.
"""

from repro.compiler.behavior import CompilerBehavior, REFERENCE_BEHAVIOR
from repro.compiler.cache import CacheOutcome, CacheStats, CompileCache
from repro.compiler.closures import LoweredProgram, lower_program
from repro.compiler.errors import (
    CompileError,
    CompilerCrashError,
    UnsupportedFeatureError,
)
from repro.compiler.interp import (
    BACKENDS,
    ExecutionLimits,
    ExecutionResult,
    Interpreter,
    InterpreterReuseError,
)
from repro.compiler.pipeline import CompiledProgram, Compiler, ProgramRunner

__all__ = [
    "CompilerBehavior", "REFERENCE_BEHAVIOR",
    "CacheOutcome", "CacheStats", "CompileCache",
    "LoweredProgram", "lower_program",
    "CompileError", "CompilerCrashError", "UnsupportedFeatureError",
    "BACKENDS", "ExecutionLimits", "ExecutionResult", "Interpreter",
    "InterpreterReuseError",
    "CompiledProgram", "Compiler", "ProgramRunner",
]
