"""AST interpreter (host execution engine).

Executes a :class:`repro.ir.Program` against a simulated
:class:`~repro.accsim.machine.Machine`.  All OpenACC construct statements are
delegated to an :class:`~repro.compiler.exec_model.AccExecutor`, which owns
the device-side execution model; everything else here is ordinary dynamic
evaluation with C/Fortran numeric semantics:

* integer division truncates toward zero (both languages);
* ``&&`` / ``||`` short-circuit; comparisons yield int 0/1;
* Fortran ``**`` supported; scalar assignment coerces to the declared type;
* C arrays pass by reference (shared ArrayValue), scalars by value;
  Fortran passes by reference whenever the argument is a bare variable.

Execution is bounded by a step budget so the harness can classify runaway
programs as the paper's "executes forever" runtime error class.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.accsim.errors import AccRuntimeError, ExecutionTimeout
from repro.accsim.machine import Machine
from repro.accsim.runtime import AccRuntime
from repro.accsim.device import ExecProfile
from repro.accsim.values import ArrayValue, Cell, DevicePointer, coerce_scalar
from repro.compiler.behavior import CompilerBehavior, REFERENCE_BEHAVIOR
from repro.ir.astnodes import (
    AccConstruct,
    AccLoop,
    AccStandalone,
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Cast,
    Conditional,
    Continue,
    DeclStmt,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    Function,
    Ident,
    If,
    Index,
    IntLit,
    Program,
    Return,
    Stmt,
    StringLit,
    Unary,
    VarDecl,
    While,
)
from repro.spec.devices import (
    ACC_DEVICE_DEFAULT,
    ACC_DEVICE_HOST,
    ACC_DEVICE_NONE,
    ACC_DEVICE_NOT_HOST,
    VENDOR_DEVICE_TYPES,
    DeviceType,
    device_type_by_name,
)


# ---------------------------------------------------------------------------
# control-flow signals
# ---------------------------------------------------------------------------


#: interpreter execution backends: the reference tree walker and the
#: closure-compilation backend (see repro.compiler.closures)
BACKENDS = ("tree", "closures")


class InterpreterReuseError(RuntimeError):
    """``run()`` called again on an interpreter that cannot be reset.

    Deliberately *not* an :class:`AccRuntimeError`: reusing an interpreter
    over a caller-supplied machine is a harness programming error, never a
    simulated-program crash, so it must not be classified as one.
    """


class BreakSignal(Exception):
    pass


class ContinueSignal(Exception):
    pass


class ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value
        super().__init__()


# ---------------------------------------------------------------------------
# environments
# ---------------------------------------------------------------------------


class Env:
    """Lexically chained name -> Cell map."""

    __slots__ = ("vars", "parent")

    def __init__(self, parent: Optional["Env"] = None):
        self.vars: Dict[str, Cell] = {}
        self.parent = parent

    def define(self, name: str, cell: Cell) -> Cell:
        self.vars[name] = cell
        return cell

    def lookup(self, name: str) -> Optional[Cell]:
        env: Optional[Env] = self
        while env is not None:
            cell = env.vars.get(name)
            if cell is not None:
                return cell
            env = env.parent
        return None

    def child(self) -> "Env":
        return Env(parent=self)


# ---------------------------------------------------------------------------
# results / limits
# ---------------------------------------------------------------------------


@dataclass
class ExecutionLimits:
    max_steps: int = 2_000_000


@dataclass
class ExecutionResult:
    value: int
    output: List[str] = field(default_factory=list)
    steps: int = 0
    kernels_launched: int = 0
    #: execution profile (repro.obs): data-clause traffic and async-queue
    #: behaviour summed over all devices of the run's machine
    bytes_to_device: int = 0
    bytes_to_host: int = 0
    queue_waits: int = 0
    queue_max_pending: int = 0


# ---------------------------------------------------------------------------
# interpreter
# ---------------------------------------------------------------------------


class Interpreter:
    def __init__(
        self,
        program: Program,
        behavior: CompilerBehavior = REFERENCE_BEHAVIOR,
        machine: Optional[Machine] = None,
        env_vars: Optional[Dict[str, str]] = None,
        rng_seed: int = 12345,
        backend: str = "tree",
        lowered=None,
    ):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown interpreter backend {backend!r}; "
                f"expected one of {', '.join(BACKENDS)}"
            )
        self.program = program
        self.behavior = behavior
        self.backend = backend
        if backend == "closures":
            from repro.compiler.closures import invoke_function, lower_program

            if lowered is None:
                lowered = lower_program(program)
            self._lowered = lowered
            self._invoke = invoke_function
        else:
            self._lowered = None
            self._invoke = None
        self._env_vars = dict(env_vars) if env_vars else None
        self._rng_seed = rng_seed
        self._owns_machine = machine is None
        if machine is None:
            machine = self._fresh_machine()
        self._attach_machine(machine)

        self.output: List[str] = []
        self.steps = 0
        self.limits = ExecutionLimits()
        #: hot-path mirror of ``limits.max_steps`` (one attribute hop instead
        #: of two in every statement's step-budget check)
        self._max_steps = self.limits.max_steps
        self._rng_state = rng_seed
        self.globals = Env()
        self._install_constants()
        self._user_functions = {fn.name: fn for fn in program.functions}
        self._has_run = False

    def _fresh_machine(self) -> Machine:
        behavior = self.behavior
        return Machine(
            accel_count=1,
            accel_device_type=behavior.concrete_device_type,
            profile=ExecProfile(
                default_num_gangs=behavior.default_num_gangs,
                default_num_workers=behavior.default_num_workers,
                default_vector_length=behavior.default_vector_length,
                worker_ignored=behavior.worker_ignored,
                mapping=behavior.mapping_description,
            ),
        )

    def _attach_machine(self, machine: Machine) -> None:
        from repro.compiler.exec_model import AccExecutor  # cycle-free import

        self.machine = machine
        self.acc = AccExecutor(self)
        self.runtime = AccRuntime(machine, hooks=self.acc)
        if self._env_vars:
            from repro.accsim.envvars import apply_environment

            apply_environment(machine, self._env_vars)

    # ------------------------------------------------------------------ run

    def run(self, entry: str = "main", limits: Optional[ExecutionLimits] = None) -> ExecutionResult:
        """Execute ``entry`` and return the run's :class:`ExecutionResult`.

        ``run()`` is reuse-safe: every call executes on per-run state reset
        to how ``__init__`` left it (fresh globals, output, RNG, machine and
        device counters).  The exception is an interpreter constructed over
        a *caller-supplied* machine — that machine's counters cannot be
        rebuilt here, so a second ``run()`` raises
        :class:`InterpreterReuseError` instead of silently double-counting
        ``bytes_to_device``/``kernels_launched``.
        """
        if limits is not None:
            self.limits = limits
        self._max_steps = self.limits.max_steps
        if self._has_run:
            if not self._owns_machine:
                raise InterpreterReuseError(
                    "Interpreter.run() called twice over a caller-supplied "
                    "machine: its device counters cannot be reset, so the "
                    "second result would double-count data traffic and "
                    "kernel launches; build a new Interpreter instead"
                )
            self._attach_machine(self._fresh_machine())
            self.output = []
            self._rng_state = self._rng_seed
            self.globals = Env()
            self._install_constants()
        self._has_run = True
        self.steps = 0
        for decl in self.program.globals:
            self._declare(decl, self.globals)
        fn = self.program.function(entry)
        try:
            value = self.call_function(fn, [])
        finally:
            # flush async work so observability counters are stable
            for dev in [self.machine.host] + self.machine.accelerators:
                dev.queues.wait_all()
        kernels = sum(d.kernels_launched for d in self.machine.accelerators)
        devices = [self.machine.host] + self.machine.accelerators
        return ExecutionResult(
            value=_as_int(value),
            output=self.output,
            steps=self.steps,
            kernels_launched=kernels,
            bytes_to_device=sum(d.memory.bytes_to_device for d in devices),
            bytes_to_host=sum(d.memory.bytes_to_host for d in devices),
            queue_waits=sum(d.queues.waits for d in devices),
            queue_max_pending=max(d.queues.max_pending for d in devices),
        )

    # ----------------------------------------------------------- functions

    def call_function(self, fn: Function, args: Sequence[object]) -> object:
        if self._lowered is not None:
            lowered_fn = self._lowered.functions.get(fn.name)
            if lowered_fn is not None:
                return self._invoke(self, lowered_fn, args)
        env = self.globals.child()
        if len(args) != len(fn.params):
            raise AccRuntimeError(
                f"{fn.name}: expected {len(fn.params)} arguments, got {len(args)}"
            )
        for param, arg in zip(fn.params, args):
            if isinstance(arg, Cell):
                env.define(param.name, arg)  # by-reference (Fortran)
            else:
                env.define(param.name, Cell(arg, type=param.type, name=param.name))
        self.acc.enter_function(fn, env)
        try:
            self.exec_block(fn.body, env)
            result: object = 0
        except ReturnSignal as signal:
            result = signal.value if signal.value is not None else 0
        finally:
            self.acc.exit_function(fn)
        return result

    # ----------------------------------------------------------- statements

    def exec_stmt(self, stmt: Stmt, env: Env) -> None:
        if self._lowered is not None:
            self._lowered.stmt_closure(stmt)(self, env)
            return
        self.steps += 1
        if self.steps > self.limits.max_steps:
            raise ExecutionTimeout(
                f"step budget {self.limits.max_steps} exceeded at {stmt.loc}"
            )

        kind = type(stmt)
        if kind is Block:
            self.exec_block(stmt, env)
        elif kind is DeclStmt:
            for decl in stmt.decls:
                self._declare(decl, env)
        elif kind is Assign:
            self.exec_assign(stmt, env)
        elif kind is ExprStmt:
            self.eval(stmt.expr, env)
        elif kind is If:
            if _truthy(self.eval(stmt.cond, env)):
                self.exec_stmt(stmt.then, env.child())
            elif stmt.other is not None:
                self.exec_stmt(stmt.other, env.child())
        elif kind is For:
            self.exec_for(stmt, env)
        elif kind is While:
            while _truthy(self.eval(stmt.cond, env)):
                self.steps += 1
                if self.steps > self.limits.max_steps:
                    raise ExecutionTimeout(f"step budget exceeded at {stmt.loc}")
                try:
                    self.exec_stmt(stmt.body, env.child())
                except BreakSignal:
                    break
                except ContinueSignal:
                    continue
        elif kind is Return:
            value = self.eval(stmt.value, env) if stmt.value is not None else None
            raise ReturnSignal(value)
        elif kind is Break:
            raise BreakSignal()
        elif kind is Continue:
            raise ContinueSignal()
        elif kind is AccConstruct:
            self.acc.exec_construct(stmt, env)
        elif kind is AccLoop:
            self.acc.exec_acc_loop(stmt, env)
        elif kind is AccStandalone:
            self.acc.exec_standalone(stmt, env)
        else:  # pragma: no cover - parser produces no other kinds
            raise AccRuntimeError(f"cannot execute statement {kind.__name__}")

    def exec_block(self, block: Block, env: Env) -> None:
        scope = env.child()
        for stmt in block.stmts:
            self.exec_stmt(stmt, scope)

    def exec_for(self, loop: For, env: Env) -> None:
        """Execute a canonical counted loop sequentially."""
        if self._lowered is not None:
            self._lowered.for_closure(loop)(self, env)
            return
        scope = env.child()
        cell = scope.lookup(loop.var)
        if cell is None:
            cell = scope.define(loop.var, Cell(0, name=loop.var))
        for i in self.iteration_values(loop, env):
            self.steps += 1
            if self.steps > self.limits.max_steps:
                raise ExecutionTimeout(f"step budget exceeded at {loop.loc}")
            cell.value = i
            try:
                self.exec_stmt(loop.body, scope.child())
            except BreakSignal:
                break
            except ContinueSignal:
                continue

    def iteration_values(self, loop: For, env: Env) -> range:
        """The iteration-variable value sequence of a canonical loop.

        Returned as a lazy ``range`` — a huge trip count must cost O(1)
        memory here so the step budget (not the allocator) is what stops a
        runaway loop.
        """
        start = _as_int(self.eval(loop.start, env))
        bound = _as_int(self.eval(loop.bound, env))
        step = _as_int(self.eval(loop.step, env))
        if step == 0:
            raise AccRuntimeError(f"zero loop step at {loop.loc}")
        if step > 0:
            stop = bound + 1 if loop.inclusive else bound
        else:
            stop = bound - 1 if loop.inclusive else bound
        return range(start, stop, step)

    def exec_assign(self, stmt: Assign, env: Env) -> None:
        value = self.eval(stmt.value, env)
        target = stmt.target
        if isinstance(target, Ident):
            cell = env.lookup(target.name)
            if cell is None:
                # C tolerates assignment to undeclared only via globals in
                # generated code; treat as implicit int definition at global
                # scope to be forgiving for template-authored helpers.
                cell = self.globals.define(target.name, Cell(0, name=target.name))
            if stmt.op:
                value = self._binary_value(stmt.op, _cell_scalar(cell), value, stmt)
            base = cell.type.base if cell.type is not None and cell.type.pointer == 0 else None
            if isinstance(value, (int, float)) and not isinstance(cell.value, (ArrayValue, DevicePointer)):
                cell.value = coerce_scalar(base, value)
            else:
                cell.value = value
        elif isinstance(target, Index):
            array, indices = self._resolve_index(target, env)
            if stmt.op:
                value = self._binary_value(stmt.op, array.get(indices), value, stmt)
            array.set(indices, value)
        elif isinstance(target, Unary) and target.op == "*":
            pointee = self.eval(target.operand, env)
            array = self._pointer_array(pointee, target)
            if stmt.op:
                value = self._binary_value(stmt.op, array.get([array.lowers[0]]), value, stmt)
            array.set([array.lowers[0]], value)
        else:
            raise AccRuntimeError(f"invalid assignment target at {stmt.loc}")

    # ---------------------------------------------------------- expressions

    def eval(self, expr: Expr, env: Env):
        if self._lowered is not None:
            return self._lowered.expr_closure(expr)(self, env)
        kind = type(expr)
        if kind is IntLit:
            return expr.value
        if kind is FloatLit:
            return expr.value
        if kind is StringLit:
            return expr.value
        if kind is Ident:
            return self._eval_ident(expr, env)
        if kind is Index:
            array, indices = self._resolve_index(expr, env)
            return array.get(indices)
        if kind is Binary:
            return self._eval_binary(expr, env)
        if kind is Unary:
            return self._eval_unary(expr, env)
        if kind is Conditional:
            if _truthy(self.eval(expr.cond, env)):
                return self.eval(expr.then, env)
            return self.eval(expr.other, env)
        if kind is Call:
            return self.eval_call(expr, env)
        if kind is Cast:
            return self._eval_cast(expr, env)
        raise AccRuntimeError(f"cannot evaluate expression {kind.__name__}")

    def _eval_ident(self, expr: Ident, env: Env):
        cell = env.lookup(expr.name)
        if cell is None:
            raise AccRuntimeError(f"undefined variable {expr.name!r} at {expr.loc}")
        return cell.value

    def _eval_binary(self, expr: Binary, env: Env):
        op = expr.op
        if op == "&&":
            return 1 if (_truthy(self.eval(expr.left, env)) and _truthy(self.eval(expr.right, env))) else 0
        if op == "||":
            return 1 if (_truthy(self.eval(expr.left, env)) or _truthy(self.eval(expr.right, env))) else 0
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        return self._binary_value(op, left, right, expr)

    def _binary_value(self, op: str, left, right, node):
        return binary_value(op, left, right, node)

    def _eval_unary(self, expr: Unary, env: Env):
        if expr.op == "*":
            pointee = self.eval(expr.operand, env)
            array = self._pointer_array(pointee, expr)
            return array.get([array.lowers[0]])
        value = self.eval(expr.operand, env)
        if expr.op == "-":
            return -value
        if expr.op == "!":
            return 0 if _truthy(value) else 1
        if expr.op == "~":
            return ~int(value)
        raise AccRuntimeError(f"unknown unary operator {expr.op!r} at {expr.loc}")

    def _eval_cast(self, expr: Cast, env: Env):
        value = self.eval(expr.operand, env)
        if expr.type.pointer > 0:
            # (T*)malloc(nbytes) / (T*)acc_malloc(nbytes)
            if isinstance(value, _MallocResult):
                size = _SIZEOF.get(expr.type.base, 8)
                count = value.nbytes // size
                return ArrayValue((count,), expr.type.base)
            return value  # pointer-to-pointer casts are identity here
        if isinstance(value, _MallocResult):
            raise AccRuntimeError("malloc result used without pointer cast")
        return coerce_scalar(expr.type.base, value)

    def _resolve_index(self, expr: Index, env: Env):
        """Resolve an Index node to (ArrayValue, concrete indices)."""
        base = expr.base
        if isinstance(base, Ident):
            cell = env.lookup(base.name)
            if cell is None:
                raise AccRuntimeError(f"undefined array {base.name!r} at {expr.loc}")
            value = cell.value
            if isinstance(value, DevicePointer):
                elem = cell.type.base if cell.type is not None else "int"
                value = value.as_array(elem)
            if not isinstance(value, ArrayValue):
                raise AccRuntimeError(
                    f"variable {base.name!r} is not an array at {expr.loc}"
                )
            indices = [_as_int(self.eval(ix, env)) for ix in expr.indices]
            return value, indices
        value = self.eval(base, env)
        if isinstance(value, DevicePointer):
            value = value.as_array("int")
        if not isinstance(value, ArrayValue):
            raise AccRuntimeError(f"indexing a non-array at {expr.loc}")
        indices = [_as_int(self.eval(ix, env)) for ix in expr.indices]
        return value, indices

    def _pointer_array(self, value, node) -> ArrayValue:
        if isinstance(value, DevicePointer):
            return value.as_array("int")
        if isinstance(value, ArrayValue):
            return value
        raise AccRuntimeError(f"dereference of a non-pointer at {node.loc}")

    # ---------------------------------------------------------------- calls

    def eval_call(self, expr: Call, env: Env):
        name = expr.name
        # user functions take precedence except inside compute regions,
        # where exec_model vets them during region analysis
        fn = self._user_functions.get(name)
        if fn is not None:
            args = []
            for param, arg in zip(fn.params, expr.args):
                if (
                    self.program.language == "fortran"
                    and isinstance(arg, Ident)
                ):
                    cell = env.lookup(arg.name)
                    if cell is None:
                        raise AccRuntimeError(
                            f"undefined variable {arg.name!r} at {arg.loc}"
                        )
                    args.append(cell)
                elif isinstance(arg, Ident) and isinstance(
                    _maybe_cell_value(env, arg.name), (ArrayValue, DevicePointer)
                ):
                    args.append(self.eval(arg, env))
                else:
                    args.append(self.eval(arg, env))
            if len(expr.args) != len(fn.params):
                raise AccRuntimeError(
                    f"{name}: expected {len(fn.params)} args, got {len(expr.args)}"
                )
            return self.call_function(fn, args)
        handler = _BUILTINS.get(name)
        if handler is not None:
            args = [self.eval(a, env) for a in expr.args]
            return handler(self, args, expr)
        raise AccRuntimeError(f"call to unknown function {name!r} at {expr.loc}")

    # -------------------------------------------------------- declarations

    def _declare(self, decl: VarDecl, env: Env) -> Cell:
        if decl.dims:
            shape = [_as_int(self.eval(d, env)) for d in decl.dims]
            lowers = [
                (_as_int(self.eval(l, env)) if l is not None else _default_lower(self.program.language))
                for l in (decl.lowers or [None] * len(shape))
            ]
            value: object = ArrayValue(shape, decl.type.base, lowers)
            if decl.init is not None:
                fill = self.eval(decl.init, env)
                value.data.fill(fill)
        elif decl.type.pointer > 0:
            value = self.eval(decl.init, env) if decl.init is not None else None
        else:
            if decl.init is not None:
                value = coerce_scalar(decl.type.base, self.eval(decl.init, env))
            else:
                value = coerce_scalar(decl.type.base, 0)
        return env.define(decl.name, Cell(value, type=decl.type, name=decl.name))

    # ------------------------------------------------------------- builtins

    def _install_constants(self) -> None:
        for dt_name in (
            "acc_device_none",
            "acc_device_default",
            "acc_device_host",
            "acc_device_not_host",
        ):
            self.globals.define(dt_name, Cell(device_type_by_name(dt_name), name=dt_name))
        for types in VENDOR_DEVICE_TYPES.values():
            for dt in types:
                if self.globals.lookup(dt.name) is None:
                    self.globals.define(dt.name, Cell(dt, name=dt.name))
        self.globals.define("stderr", Cell("<stderr>", name="stderr"))
        self.globals.define("stdout", Cell("<stdout>", name="stdout"))
        self.globals.define("NULL", Cell(None, name="NULL"))

    def next_rand(self) -> int:
        self._rng_state = (self._rng_state * 1103515245 + 12345) % (2**31)
        return self._rng_state % 32768


# ---------------------------------------------------------------------------
# builtin function table
# ---------------------------------------------------------------------------


@dataclass
class _MallocResult:
    nbytes: int


_SIZEOF = {"int": 4, "long": 8, "float": 4, "double": 8, "char": 1, "bool": 4}


def _as_int(value) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int,)):
        return value
    if isinstance(value, float):
        return math.trunc(value)
    raise AccRuntimeError(f"expected integer value, got {type(value).__name__}")


def _truthy(value) -> bool:
    if isinstance(value, (int, float)):
        return value != 0
    return value is not None


def _trunc_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def binary_value(op: str, left, right, node):
    """C/Fortran binary-operator semantics shared by both backends.

    ``node`` supplies the source location for error diagnostics; the error
    strings are part of suite reports and must match across backends.
    """
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise AccRuntimeError(f"division by zero at {node.loc}")
        if isinstance(left, int) and isinstance(right, int):
            return _trunc_div(left, right)
        return left / right
    if op == "%":
        if right == 0:
            raise AccRuntimeError(f"modulo by zero at {node.loc}")
        return left - _trunc_div(left, right) * right
    if op == "**":
        return left ** right
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "<":
        return 1 if left < right else 0
    if op == "<=":
        return 1 if left <= right else 0
    if op == ">":
        return 1 if left > right else 0
    if op == ">=":
        return 1 if left >= right else 0
    if op == "&":
        return int(left) & int(right)
    if op == "|":
        return int(left) | int(right)
    if op == "^":
        return int(left) ^ int(right)
    if op == "<<":
        return int(left) << int(right)
    if op == ">>":
        return int(left) >> int(right)
    raise AccRuntimeError(f"unknown binary operator {op!r} at {node.loc}")


def _cell_scalar(cell: Cell):
    if isinstance(cell.value, (ArrayValue, DevicePointer)):
        raise AccRuntimeError(f"scalar operation on array {cell.name!r}")
    return cell.value


def _maybe_cell_value(env: Env, name: str):
    cell = env.lookup(name)
    return cell.value if cell is not None else None


def _default_lower(language: str) -> int:
    return 1 if language == "fortran" else 0


def _fmt(interp: Interpreter, args, expr) -> str:
    parts = []
    for a in args:
        if isinstance(a, float):
            parts.append(f"{a:g}")
        else:
            parts.append(str(a))
    return " ".join(parts)


def _bi_print(interp, args, expr):
    interp.output.append(_fmt(interp, args, expr))
    return 0


def _bi_fprintf(interp, args, expr):
    interp.output.append(_fmt(interp, args[1:], expr))
    return 0


def _bi_malloc(interp, args, expr):
    return _MallocResult(nbytes=_as_int(args[0]))


def _bi_free(interp, args, expr):
    return 0


def _bi_rand(interp, args, expr):
    return interp.next_rand()


def _bi_srand(interp, args, expr):
    interp._rng_state = _as_int(args[0])
    return 0


def _math1(fn):
    def impl(interp, args, expr):
        return fn(float(args[0]))

    return impl


def _bi_abs(interp, args, expr):
    return abs(args[0])


def _bi_mod(interp, args, expr):
    a, b = args
    if b == 0:
        raise AccRuntimeError("mod by zero")
    return a - _trunc_div(int(a), int(b)) * b if isinstance(a, int) and isinstance(b, int) else math.fmod(a, b)


def _bi_merge(interp, args, expr):
    tsource, fsource, mask = args
    return tsource if _truthy(mask) else fsource


def _bi_pow(interp, args, expr):
    return float(args[0]) ** float(args[1])


def _bi_max(interp, args, expr):
    return max(args)


def _bi_min(interp, args, expr):
    return min(args)


def _bi_int(interp, args, expr):
    return math.trunc(float(args[0]))


def _bi_real(interp, args, expr):
    return float(args[0])


def _bi_iand(interp, args, expr):
    return int(args[0]) & int(args[1])


def _bi_ior(interp, args, expr):
    return int(args[0]) | int(args[1])


def _bi_ieor(interp, args, expr):
    return int(args[0]) ^ int(args[1])


def _bi_exit(interp, args, expr):
    raise ReturnSignal(_as_int(args[0]) if args else 0)


# --- OpenACC runtime bindings ---------------------------------------------


def _require_routine(interp: Interpreter, name: str, expr) -> None:
    if name in interp.behavior.unsupported_routines:
        raise AccRuntimeError(
            f"runtime routine {name} is not provided by {interp.behavior.label}"
        )


def _acc(name: str, impl):
    def wrapped(interp, args, expr):
        _require_routine(interp, name, expr)
        return impl(interp, args, expr)

    return wrapped


def _devtype(arg) -> DeviceType:
    if isinstance(arg, DeviceType):
        return arg
    raise AccRuntimeError(f"expected a device type constant, got {arg!r}")


_BUILTINS: Dict[str, Callable] = {
    # I/O
    "printf": _bi_print,
    "fprintf": _bi_fprintf,
    "print": _bi_print,
    # memory
    "malloc": _bi_malloc,
    "free": _bi_free,
    # PRNG (deterministic LCG)
    "rand": _bi_rand,
    "srand": _bi_srand,
    # math (C spellings)
    "pow": _bi_pow,
    "powf": _bi_pow,
    "fabs": _bi_abs,
    "fabsf": _bi_abs,
    "abs": _bi_abs,
    "labs": _bi_abs,
    "sqrt": _math1(math.sqrt),
    "sqrtf": _math1(math.sqrt),
    "exp": _math1(math.exp),
    "expf": _math1(math.exp),
    "log": _math1(math.log),
    "sin": _math1(math.sin),
    "cos": _math1(math.cos),
    "floor": _math1(math.floor),
    "ceil": _math1(math.ceil),
    "exit": _bi_exit,
    # Fortran intrinsics
    "mod": _bi_mod,
    "merge": _bi_merge,
    "max": _bi_max,
    "min": _bi_min,
    "int": _bi_int,
    "real": _bi_real,
    "dble": _bi_real,
    "iand": _bi_iand,
    "ior": _bi_ior,
    "ieor": _bi_ieor,
    # OpenACC runtime library
    "acc_get_num_devices": _acc(
        "acc_get_num_devices",
        lambda i, a, e: i.runtime.acc_get_num_devices(_devtype(a[0])),
    ),
    "acc_set_device_type": _acc(
        "acc_set_device_type",
        lambda i, a, e: (i.runtime.acc_set_device_type(_devtype(a[0])), 0)[1],
    ),
    "acc_get_device_type": _acc(
        "acc_get_device_type", lambda i, a, e: i.runtime.acc_get_device_type()
    ),
    "acc_set_device_num": _acc(
        "acc_set_device_num",
        lambda i, a, e: (
            i.runtime.acc_set_device_num(
                _as_int(a[0]), _devtype(a[1]) if len(a) > 1 else None
            ),
            0,
        )[1],
    ),
    "acc_get_device_num": _acc(
        "acc_get_device_num",
        lambda i, a, e: i.runtime.acc_get_device_num(
            _devtype(a[0]) if a else None
        ),
    ),
    "acc_async_test": _acc(
        "acc_async_test", lambda i, a, e: i.runtime.acc_async_test(_as_int(a[0]))
    ),
    "acc_async_test_all": _acc(
        "acc_async_test_all", lambda i, a, e: i.runtime.acc_async_test_all()
    ),
    "acc_async_wait": _acc(
        "acc_async_wait",
        lambda i, a, e: (i.runtime.acc_async_wait(_as_int(a[0])), 0)[1],
    ),
    "acc_async_wait_all": _acc(
        "acc_async_wait_all", lambda i, a, e: (i.runtime.acc_async_wait_all(), 0)[1]
    ),
    "acc_init": _acc(
        "acc_init",
        lambda i, a, e: (i.runtime.acc_init(_devtype(a[0]) if a else None), 0)[1],
    ),
    "acc_shutdown": _acc(
        "acc_shutdown",
        lambda i, a, e: (i.runtime.acc_shutdown(_devtype(a[0]) if a else None), 0)[1],
    ),
    "acc_on_device": _acc(
        "acc_on_device", lambda i, a, e: i.acc.on_device_answer(_devtype(a[0]))
    ),
    "acc_malloc": _acc(
        "acc_malloc", lambda i, a, e: i.runtime.acc_malloc(_as_int(a[0]))
    ),
    "acc_free": _acc("acc_free", lambda i, a, e: (i.runtime.acc_free(a[0]), 0)[1]),
}


def builtin_names() -> List[str]:
    """Names callable inside programs without user definitions."""
    return list(_BUILTINS)
