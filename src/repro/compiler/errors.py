"""Compiler diagnostics.

The harness distinguishes the paper's two error classes (Section V):
compile-time errors terminate compilation and produce no executable
(:class:`CompileError`), while runtime errors surface during execution
(exceptions from :mod:`repro.accsim.errors`) — or, worst, don't surface at
all ("wrong code bugs ... generate wrong results in silence").
"""

from __future__ import annotations

from typing import Optional

from repro.ir.astnodes import SourceLocation


class CompileError(Exception):
    """Compilation failed (unsupported feature, bad clause expression, ...)."""

    def __init__(self, message: str, loc: Optional[SourceLocation] = None):
        self.loc = loc or SourceLocation()
        self.message = message
        super().__init__(f"{self.loc}: {message}")


class UnsupportedFeatureError(CompileError):
    """The (possibly simulated vendor) compiler does not implement a feature."""
