"""Compiler diagnostics.

The harness distinguishes the paper's two error classes (Section V):
compile-time errors terminate compilation and produce no executable
(:class:`CompileError`), while runtime errors surface during execution
(exceptions from :mod:`repro.accsim.errors`) — or, worst, don't surface at
all ("wrong code bugs ... generate wrong results in silence").
"""

from __future__ import annotations

from typing import Optional

from repro.ir.astnodes import SourceLocation


class CompileError(Exception):
    """Compilation failed (unsupported feature, bad clause expression, ...)."""

    def __init__(self, message: str, loc: Optional[SourceLocation] = None):
        self.loc = loc or SourceLocation()
        self.message = message
        super().__init__(f"{self.loc}: {message}")


class UnsupportedFeatureError(CompileError):
    """The (possibly simulated vendor) compiler does not implement a feature."""


class CompilerCrashError(CompileError):
    """The compiler itself crashed — an infrastructure fault, not a
    diagnostic.

    Raised by nothing in the compiler proper: :class:`CompileCache`
    synthesises it when ``Compiler.compile`` escapes with a
    non-:class:`CompileError` exception, so callers that only understand
    compile failures still get one — while resilience-aware callers (the
    validation runner) can recognise the crash and escalate it to the
    engine's retry layer instead of charging it to the implementation
    under test.
    """

    def __init__(self, message: str, loc: Optional[SourceLocation] = None,
                 cause: Optional[BaseException] = None):
        super().__init__(message, loc)
        self.cause = cause
