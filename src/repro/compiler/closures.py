"""Closure-compilation backend for the accsim interpreter.

The reference interpreter (:mod:`repro.compiler.interp`) walks the AST for
every statement of every iteration: each step pays a ``type()`` dispatch,
and each name pays an :class:`~repro.compiler.interp.Env` chain walk.  The
harness runs every template M times per behavior, so that per-node cost
dominates campaign wall-clock.

This module lowers a :class:`~repro.ir.astnodes.Program` **once** into
nested Python closures.  Every statement/expression becomes a pre-bound
callable ``f(I, S)`` where ``I`` is the per-run :class:`Interpreter`
(mutable state: steps, limits, globals, output, machine) and ``S`` is the
current scope.  Lowering is a pure function of the AST — closures never
capture an interpreter — so one :class:`LoweredProgram` is shared across
all M iterations, across threads, and across compile-cache hits.

Two lowering tiers:

* **Tier A (slot frames)** — host function bodies.  A compile-time lexical
  resolver mirrors exactly where the tree walker would create
  ``env.child()`` scopes and assigns every declaration site a distinct
  integer slot in a flat per-call frame (a plain Python list).  Name uses
  become ``S[slot]`` loads; unresolved names fall through to
  ``I.globals`` — correct because local scopes can only ever contain
  parameters, ``DeclStmt`` declarations and loop variables (implicit
  assignment targets are defined at global scope, and
  :class:`~repro.compiler.exec_model.AccExecutor` never defines into an
  env it was handed, only into children it creates).

* **Tier B (env closures)** — statements and expressions executed by the
  OpenACC execution model through ``interp.exec_stmt``/``eval``/
  ``exec_for`` with an :class:`Env` it built (region bodies, clause
  expressions).  These are lowered on demand and memoised per node, with
  the same ``Env`` semantics as the tree walker.

At the boundary between the tiers, an OpenACC statement inside a Tier-A
function body materialises a *bridge* ``Env`` whose ``vars`` hold the
lexically visible frame cells (chained to ``I.globals``), and hands it to
the executor — the executor sees exactly the env chain the tree walker
would have given it.

The hard constraint is observable equivalence with the tree walker: step
accounting, error strings (they appear in suite reports) and evaluation
order are mirrored exactly; ``tests/test_closures.py`` enforces identical
:class:`ExecutionResult`s over the full shipped corpus.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.accsim.errors import AccRuntimeError, ExecutionTimeout
from repro.accsim.values import ArrayValue, Cell, DevicePointer, coerce_scalar
from repro.compiler.interp import (
    _BUILTINS,
    _MallocResult,
    _SIZEOF,
    _as_int,
    _cell_scalar,
    _default_lower,
    _truthy,
    _trunc_div,
    BreakSignal,
    ContinueSignal,
    Env,
    ReturnSignal,
    binary_value,
)
from repro.ir.astnodes import (
    AccConstruct,
    AccLoop,
    AccStandalone,
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Cast,
    Conditional,
    Continue,
    DeclStmt,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    Function,
    Ident,
    If,
    Index,
    IntLit,
    Program,
    Return,
    Stmt,
    StringLit,
    Unary,
    VarDecl,
    While,
)

#: acc statement kinds are never memoised: combined directives synthesise a
#: fresh ``AccLoop`` node per execution (see ``AccExecutor.exec_acc_loop``),
#: so an ``id()``-keyed cache would grow without bound — and their lowering
#: is a single trivial closure anyway.
_ACC_STMTS = (AccConstruct, AccLoop, AccStandalone)

#: bases for which ``coerce_scalar`` is the identity on an exact ``int``
#: (must track the int family in :func:`repro.accsim.values.coerce_scalar`)
_INT_BASES = frozenset(("int", "long", "char", "bool"))


def _hot_binary(op: str, left, right) -> Optional[Callable]:
    """A fully inlined closure for a binary op over *leaf* operands.

    ``left``/``right`` are ``('slot', i)`` (frame-resolved Ident) or
    ``('const', v)`` (numeric literal) descriptors.  Each emitted closure
    computes exactly what the hand-specialised operators in
    ``_lower_binary`` compute, minus two operand-closure calls — the single
    biggest win of the backend, since ``i = i + 1`` and ``a[i] < n``-style
    spines dominate interpreter step counts.
    """
    lk, lv = left
    rk, rv = right
    if lk == "slot" and rk == "slot":
        a, b = lv, rv
        if op == "+":
            return lambda I, S: S[a].value + S[b].value
        if op == "-":
            return lambda I, S: S[a].value - S[b].value
        if op == "*":
            return lambda I, S: S[a].value * S[b].value
        if op == "==":
            return lambda I, S: 1 if S[a].value == S[b].value else 0
        if op == "!=":
            return lambda I, S: 1 if S[a].value != S[b].value else 0
        if op == "<":
            return lambda I, S: 1 if S[a].value < S[b].value else 0
        if op == "<=":
            return lambda I, S: 1 if S[a].value <= S[b].value else 0
        if op == ">":
            return lambda I, S: 1 if S[a].value > S[b].value else 0
        if op == ">=":
            return lambda I, S: 1 if S[a].value >= S[b].value else 0
        return None
    if lk == "slot":
        a, k = lv, rv
        if op == "+":
            return lambda I, S: S[a].value + k
        if op == "-":
            return lambda I, S: S[a].value - k
        if op == "*":
            return lambda I, S: S[a].value * k
        if op == "==":
            return lambda I, S: 1 if S[a].value == k else 0
        if op == "!=":
            return lambda I, S: 1 if S[a].value != k else 0
        if op == "<":
            return lambda I, S: 1 if S[a].value < k else 0
        if op == "<=":
            return lambda I, S: 1 if S[a].value <= k else 0
        if op == ">":
            return lambda I, S: 1 if S[a].value > k else 0
        if op == ">=":
            return lambda I, S: 1 if S[a].value >= k else 0
        return None
    if rk == "slot":
        k, b = lv, rv
        if op == "+":
            return lambda I, S: k + S[b].value
        if op == "-":
            return lambda I, S: k - S[b].value
        if op == "*":
            return lambda I, S: k * S[b].value
        if op == "==":
            return lambda I, S: 1 if k == S[b].value else 0
        if op == "!=":
            return lambda I, S: 1 if k != S[b].value else 0
        if op == "<":
            return lambda I, S: 1 if k < S[b].value else 0
        if op == "<=":
            return lambda I, S: 1 if k <= S[b].value else 0
        if op == ">":
            return lambda I, S: 1 if k > S[b].value else 0
        if op == ">=":
            return lambda I, S: 1 if k >= S[b].value else 0
        return None
    # const op const: these nine operators are total over numbers, so
    # folding at lowering time is observationally identical
    if op == "+":
        v = lv + rv
    elif op == "-":
        v = lv - rv
    elif op == "*":
        v = lv * rv
    elif op == "==":
        v = 1 if lv == rv else 0
    elif op == "!=":
        v = 1 if lv != rv else 0
    elif op == "<":
        v = 1 if lv < rv else 0
    elif op == "<=":
        v = 1 if lv <= rv else 0
    elif op == ">":
        v = 1 if lv > rv else 0
    elif op == ">=":
        v = 1 if lv >= rv else 0
    else:
        return None
    return lambda I, S: v


def _hot_cond(op: str, left, right) -> Optional[Callable]:
    """Truth-context variant of :func:`_hot_binary` for comparisons: skips
    the 0/1 materialisation (``_truthy(1 if l < r else 0)`` *is* ``l < r``).
    """
    lk, lv = left
    rk, rv = right
    if lk == "slot" and rk == "slot":
        a, b = lv, rv
        if op == "==":
            return lambda I, S: S[a].value == S[b].value
        if op == "!=":
            return lambda I, S: S[a].value != S[b].value
        if op == "<":
            return lambda I, S: S[a].value < S[b].value
        if op == "<=":
            return lambda I, S: S[a].value <= S[b].value
        if op == ">":
            return lambda I, S: S[a].value > S[b].value
        if op == ">=":
            return lambda I, S: S[a].value >= S[b].value
        return None
    if lk == "slot":
        a, k = lv, rv
        if op == "==":
            return lambda I, S: S[a].value == k
        if op == "!=":
            return lambda I, S: S[a].value != k
        if op == "<":
            return lambda I, S: S[a].value < k
        if op == "<=":
            return lambda I, S: S[a].value <= k
        if op == ">":
            return lambda I, S: S[a].value > k
        if op == ">=":
            return lambda I, S: S[a].value >= k
        return None
    if rk == "slot":
        k, b = lv, rv
        if op == "==":
            return lambda I, S: k == S[b].value
        if op == "!=":
            return lambda I, S: k != S[b].value
        if op == "<":
            return lambda I, S: k < S[b].value
        if op == "<=":
            return lambda I, S: k <= S[b].value
        if op == ">":
            return lambda I, S: k > S[b].value
        if op == ">=":
            return lambda I, S: k >= S[b].value
        return None
    return None


# ---------------------------------------------------------------------------
# compile-time scope resolver (Tier A)
# ---------------------------------------------------------------------------


class _FrameScope:
    """Lexical scope stack mapping names to frame slots during lowering.

    ``push``/``pop`` mirror every point where the tree walker would create
    an ``env.child()``; each declaration site gets a fresh slot, so
    shadowing works and re-executing a block (loop bodies) simply rebinds
    the same slots — observationally identical to a fresh child env because
    a slot-resolved use always executes after its declaration (the language
    has no goto; uses lowered *before* a declaration resolve to the outer
    binding, exactly as the runtime chain walk would).
    """

    __slots__ = ("_stack", "nslots")

    def __init__(self) -> None:
        self._stack: List[Dict[str, int]] = [{}]
        self.nslots = 0

    def push(self) -> None:
        self._stack.append({})

    def pop(self) -> None:
        self._stack.pop()

    def declare(self, name: str) -> int:
        slot = self.nslots
        self.nslots += 1
        self._stack[-1][name] = slot
        return slot

    def resolve(self, name: str) -> Optional[int]:
        for scope in reversed(self._stack):
            slot = scope.get(name)
            if slot is not None:
                return slot
        return None

    def visible(self) -> Tuple[Tuple[str, int], ...]:
        """All visible (name, slot) bindings, inner scopes shadowing outer."""
        merged: Dict[str, int] = {}
        for scope in self._stack:
            merged.update(scope)
        return tuple(merged.items())


# ---------------------------------------------------------------------------
# lowered artifacts
# ---------------------------------------------------------------------------


class LoweredFunction:
    """One function body lowered to a frame-based closure."""

    __slots__ = ("fn", "nslots", "param_slots", "entry_visible", "body")

    def __init__(self, fn: Function, nslots: int, param_slots: List[int],
                 entry_visible: Tuple[Tuple[str, int], ...], body: Callable):
        self.fn = fn
        self.nslots = nslots
        self.param_slots = param_slots
        self.entry_visible = entry_visible
        self.body = body


def invoke_function(I, lowered: LoweredFunction, args: Sequence[object]):
    """Call protocol for a lowered function (mirrors ``call_function``)."""
    fn = lowered.fn
    if len(args) != len(fn.params):
        raise AccRuntimeError(
            f"{fn.name}: expected {len(fn.params)} arguments, got {len(args)}"
        )
    frame: List[Optional[Cell]] = [None] * lowered.nslots
    for slot, param, arg in zip(lowered.param_slots, fn.params, args):
        if isinstance(arg, Cell):
            frame[slot] = arg  # by-reference (Fortran)
        else:
            frame[slot] = Cell(arg, type=param.type, name=param.name)
    env = _bridge_env(I, frame, lowered.entry_visible)
    I.acc.enter_function(fn, env)
    try:
        lowered.body(I, frame)
        result: object = 0
    except ReturnSignal as signal:
        result = signal.value if signal.value is not None else 0
    finally:
        I.acc.exit_function(fn)
    return result


def _bridge_env(I, frame: List[Optional[Cell]],
                visible: Tuple[Tuple[str, int], ...]) -> Env:
    """An Env over the lexically visible frame cells, chained to globals."""
    env = Env(parent=I.globals)
    env_vars = env.vars
    for name, slot in visible:
        cell = frame[slot]
        if cell is not None:
            env_vars[name] = cell
    return env


class LoweredProgram:
    """A program lowered once, runnable by any number of interpreters."""

    def __init__(self, program: Program):
        self.program = program
        self.functions: Dict[str, LoweredFunction] = {}
        for fn in program.functions:
            lowerer = _Lowerer(program, frame=True, lowered_fns=self.functions)
            self.functions[fn.name] = lowerer.lower_function(fn)
        self._env_lowerer = _Lowerer(program, frame=False,
                                     lowered_fns=self.functions)
        # Tier-B memos, keyed by node identity.  The node itself is pinned
        # in the value so a collected node can never recycle a key's id().
        # Benign data race under the GIL: worst case a node lowers twice.
        self._stmts: Dict[int, Tuple[Stmt, Callable]] = {}
        self._exprs: Dict[int, Tuple[Expr, Callable]] = {}
        self._fors: Dict[int, Tuple[For, Callable]] = {}

    # Tier-B entry points (dispatch targets of Interpreter.exec_stmt/eval/
    # exec_for when the executor calls back in with an Env).

    def stmt_closure(self, stmt: Stmt) -> Callable:
        if isinstance(stmt, _ACC_STMTS):
            return self._env_lowerer.lower_stmt(stmt)
        entry = self._stmts.get(id(stmt))
        if entry is None or entry[0] is not stmt:
            entry = (stmt, self._env_lowerer.lower_stmt(stmt))
            self._stmts[id(stmt)] = entry
        return entry[1]

    def expr_closure(self, expr: Expr) -> Callable:
        entry = self._exprs.get(id(expr))
        if entry is None or entry[0] is not expr:
            entry = (expr, self._env_lowerer.lower_expr(expr))
            self._exprs[id(expr)] = entry
        return entry[1]

    def for_closure(self, loop: For) -> Callable:
        entry = self._fors.get(id(loop))
        if entry is None or entry[0] is not loop:
            entry = (loop, self._env_lowerer.lower_for_core(loop))
            self._fors[id(loop)] = entry
        return entry[1]


def lower_program(program: Program) -> LoweredProgram:
    """Lower every function of ``program`` into closures (Tier A) and set
    up the on-demand Tier-B lowerer.  Pure: safe to share and reuse."""
    return LoweredProgram(program)


# ---------------------------------------------------------------------------
# the lowerer
# ---------------------------------------------------------------------------


def _op_fn(op: str, node) -> Callable:
    """A two-argument combiner mirroring ``binary_value`` for one operator."""
    if op == "+":
        return lambda left, right: left + right
    if op == "-":
        return lambda left, right: left - right
    if op == "*":
        return lambda left, right: left * right
    if op == "/":
        def _div(left, right):
            if right == 0:
                raise AccRuntimeError(f"division by zero at {node.loc}")
            if isinstance(left, int) and isinstance(right, int):
                return _trunc_div(left, right)
            return left / right
        return _div
    if op == "%":
        def _mod(left, right):
            if right == 0:
                raise AccRuntimeError(f"modulo by zero at {node.loc}")
            return left - _trunc_div(left, right) * right
        return _mod
    if op == "==":
        return lambda left, right: 1 if left == right else 0
    if op == "!=":
        return lambda left, right: 1 if left != right else 0
    if op == "<":
        return lambda left, right: 1 if left < right else 0
    if op == "<=":
        return lambda left, right: 1 if left <= right else 0
    if op == ">":
        return lambda left, right: 1 if left > right else 0
    if op == ">=":
        return lambda left, right: 1 if left >= right else 0
    return lambda left, right: binary_value(op, left, right, node)


class _Lowerer:
    """Lowers statements/expressions to closures over ``(I, S)``.

    ``frame=True`` is Tier A (``S`` is a slot frame, names resolved at
    lowering time); ``frame=False`` is Tier B (``S`` is an :class:`Env`,
    names resolved by chain walk at runtime, same as the tree walker).
    """

    def __init__(self, program: Program, frame: bool,
                 lowered_fns: Optional[Dict[str, LoweredFunction]] = None):
        self.program = program
        self.language = program.language
        self.functions = {fn.name: fn for fn in program.functions}
        self.frame = frame
        self.sc = _FrameScope() if frame else None
        # shared (still-filling) LoweredProgram.functions dict: call sites
        # resolve through it at runtime, skipping the call_function bounce
        self.lowered_fns = lowered_fns

    # -------------------------------------------------------------- function

    def lower_function(self, fn: Function) -> LoweredFunction:
        sc = self.sc
        param_slots = [sc.declare(p.name) for p in fn.params]
        entry_visible = sc.visible()
        # the function body block gets no step bump (exec_block has none)
        body = self._lower_block_body(fn.body)
        return LoweredFunction(
            fn=fn, nslots=sc.nslots, param_slots=param_slots,
            entry_visible=entry_visible, body=body,
        )

    def _lower_block_body(self, block: Block) -> Callable:
        """The inside of a block: child scope + statements, no step bump."""
        if self.frame:
            self.sc.push()
            stmt_cs = tuple(self.lower_stmt(s) for s in block.stmts)
            self.sc.pop()
            # frame scoping is entirely lowering-time, so short bodies
            # collapse to direct calls with no runtime scope work at all
            if len(stmt_cs) == 1:
                return stmt_cs[0]
            if len(stmt_cs) == 2:
                first, second = stmt_cs

                def run(I, S):
                    first(I, S)
                    second(I, S)
                return run
            if not stmt_cs:
                return lambda I, S: None

            def run(I, S):
                for c in stmt_cs:
                    c(I, S)
            return run

        stmt_cs = tuple(self.lower_stmt(s) for s in block.stmts)

        def run(I, S):
            scope = S.child()
            for c in stmt_cs:
                c(I, scope)
        return run

    # ------------------------------------------------------------ statements

    def lower_stmt(self, stmt: Stmt) -> Callable:
        kind = type(stmt)
        if kind is Block:
            return self._lower_block_stmt(stmt)
        if kind is DeclStmt:
            return self._lower_decl_stmt(stmt)
        if kind is Assign:
            return self._lower_assign(stmt)
        if kind is ExprStmt:
            return self._lower_expr_stmt(stmt)
        if kind is If:
            return self._lower_if(stmt)
        if kind is For:
            return self._lower_for_stmt(stmt)
        if kind is While:
            return self._lower_while(stmt)
        if kind is Return:
            return self._lower_return(stmt)
        if kind is Break:
            return self._lower_break(stmt)
        if kind is Continue:
            return self._lower_continue(stmt)
        if kind is AccConstruct:
            return self._lower_acc(stmt, "exec_construct")
        if kind is AccLoop:
            return self._lower_acc(stmt, "exec_acc_loop")
        if kind is AccStandalone:
            return self._lower_acc(stmt, "exec_standalone")
        message = f"cannot execute statement {kind.__name__}"
        loc = stmt.loc

        def run(I, S):  # pragma: no cover - parser produces no other kinds
            I.steps += 1
            if I.steps > I._max_steps:
                raise ExecutionTimeout(
                    f"step budget {I.limits.max_steps} exceeded at {loc}"
                )
            raise AccRuntimeError(message)
        return run

    def _lower_block_stmt(self, stmt: Block) -> Callable:
        loc = stmt.loc
        if self.frame:
            # fuse the node's step bump with the statement loop: one closure
            # per block execution instead of a bump wrapper plus a body run
            self.sc.push()
            stmt_cs = tuple(self.lower_stmt(s) for s in stmt.stmts)
            self.sc.pop()
            if len(stmt_cs) == 1:
                inner = stmt_cs[0]

                def run(I, S):
                    I.steps += 1
                    if I.steps > I._max_steps:
                        raise ExecutionTimeout(
                            f"step budget {I.limits.max_steps} exceeded at {loc}"
                        )
                    inner(I, S)
                return run

            def run(I, S):
                I.steps += 1
                if I.steps > I._max_steps:
                    raise ExecutionTimeout(
                        f"step budget {I.limits.max_steps} exceeded at {loc}"
                    )
                for c in stmt_cs:
                    c(I, S)
            return run

        inner = self._lower_block_body(stmt)

        def run(I, S):
            I.steps += 1
            if I.steps > I._max_steps:
                raise ExecutionTimeout(
                    f"step budget {I.limits.max_steps} exceeded at {loc}"
                )
            inner(I, S)
        return run

    def _lower_decl_stmt(self, stmt: DeclStmt) -> Callable:
        decl_cs = tuple(self._lower_decl(d) for d in stmt.decls)
        loc = stmt.loc

        def run(I, S):
            I.steps += 1
            if I.steps > I._max_steps:
                raise ExecutionTimeout(
                    f"step budget {I.limits.max_steps} exceeded at {loc}"
                )
            for c in decl_cs:
                c(I, S)
        return run

    def _lower_decl(self, decl: VarDecl) -> Callable:
        """One declaration; mirrors ``Interpreter._declare`` exactly."""
        name = decl.name
        typ = decl.type
        if decl.dims:
            dim_cs = tuple(self.lower_expr(d) for d in decl.dims)
            lower_cs = tuple(
                self.lower_expr(l) if l is not None else None
                for l in (decl.lowers or [None] * len(decl.dims))
            )
            default_lower = _default_lower(self.language)
            init_c = self.lower_expr(decl.init) if decl.init is not None else None
            base = typ.base

            def make(I, S):
                shape = [_as_int(c(I, S)) for c in dim_cs]
                lowers = [
                    (_as_int(c(I, S)) if c is not None else default_lower)
                    for c in lower_cs
                ]
                value = ArrayValue(shape, base, lowers)
                if init_c is not None:
                    value.data.fill(init_c(I, S))
                return value
        elif typ.pointer > 0:
            init_c = self.lower_expr(decl.init) if decl.init is not None else None

            def make(I, S):
                return init_c(I, S) if init_c is not None else None
        else:
            init_c = self.lower_expr(decl.init) if decl.init is not None else None
            base = typ.base
            zero = coerce_scalar(base, 0)

            def make(I, S):
                if init_c is not None:
                    return coerce_scalar(base, init_c(I, S))
                return zero

        # declare *after* lowering the initialiser: an init referencing the
        # same name sees the outer binding, as at runtime
        if self.frame:
            slot = self.sc.declare(name)

            def run(I, S):
                S[slot] = Cell(make(I, S), type=typ, name=name)
            return run

        def run(I, S):
            S.define(name, Cell(make(I, S), type=typ, name=name))
        return run

    def _lower_assign(self, stmt: Assign) -> Callable:
        value_c = self.lower_expr(stmt.value)
        target = stmt.target
        loc = stmt.loc
        combine = _op_fn(stmt.op, stmt) if stmt.op else None

        if isinstance(target, Ident):
            name = target.name
            slot = self.sc.resolve(name) if self.frame else None
            if slot is not None and combine is None:
                # hottest statement shape: plain assignment to a local.  A
                # slot-resolved target's cell always exists by the time the
                # assignment runs (its declaration executes first — no goto),
                # and an exact ``int`` assigned to an int-family scalar cell
                # makes ``coerce_scalar`` the identity, so the common case is
                # a single attribute store.
                def run(I, S):
                    I.steps += 1
                    if I.steps > I._max_steps:
                        raise ExecutionTimeout(
                            f"step budget {I.limits.max_steps} exceeded at {loc}"
                        )
                    value = value_c(I, S)
                    cell = S[slot]
                    ctype = cell.type
                    if value.__class__ is int and ctype is not None \
                            and ctype.pointer == 0:
                        base = ctype.base
                        if base in _INT_BASES:
                            cvc = cell.value.__class__
                            if cvc is not ArrayValue and cvc is not DevicePointer:
                                cell.value = value
                                return
                    base = ctype.base if ctype is not None and ctype.pointer == 0 else None
                    if isinstance(value, (int, float)) and not isinstance(
                        cell.value, (ArrayValue, DevicePointer)
                    ):
                        cell.value = coerce_scalar(base, value)
                    else:
                        cell.value = value
                return run
            getter = self._cell_ref(name)

            def run(I, S):
                I.steps += 1
                if I.steps > I._max_steps:
                    raise ExecutionTimeout(
                        f"step budget {I.limits.max_steps} exceeded at {loc}"
                    )
                value = value_c(I, S)
                cell = getter(I, S)
                if cell is None:
                    # implicit int definition at global scope (see the tree
                    # walker's exec_assign for the rationale)
                    cell = I.globals.define(name, Cell(0, name=name))
                if combine is not None:
                    value = combine(_cell_scalar(cell), value)
                ctype = cell.type
                base = ctype.base if ctype is not None and ctype.pointer == 0 else None
                if isinstance(value, (int, float)) and not isinstance(
                    cell.value, (ArrayValue, DevicePointer)
                ):
                    cell.value = coerce_scalar(base, value)
                else:
                    cell.value = value
            return run

        if isinstance(target, Index):
            resolver = self._lower_index_resolver(target)

            def run(I, S):
                I.steps += 1
                if I.steps > I._max_steps:
                    raise ExecutionTimeout(
                        f"step budget {I.limits.max_steps} exceeded at {loc}"
                    )
                value = value_c(I, S)
                array, indices = resolver(I, S)
                if combine is not None:
                    value = combine(array.get(indices), value)
                array.set(indices, value)
            return run

        if isinstance(target, Unary) and target.op == "*":
            operand_c = self.lower_expr(target.operand)
            target_loc = target.loc

            def run(I, S):
                I.steps += 1
                if I.steps > I._max_steps:
                    raise ExecutionTimeout(
                        f"step budget {I.limits.max_steps} exceeded at {loc}"
                    )
                value = value_c(I, S)
                pointee = operand_c(I, S)
                array = _pointer_array(pointee, target_loc)
                if combine is not None:
                    value = combine(array.get([array.lowers[0]]), value)
                array.set([array.lowers[0]], value)
            return run

        def run(I, S):
            I.steps += 1
            if I.steps > I._max_steps:
                raise ExecutionTimeout(
                    f"step budget {I.limits.max_steps} exceeded at {loc}"
                )
            value_c(I, S)
            raise AccRuntimeError(f"invalid assignment target at {loc}")
        return run

    def _lower_expr_stmt(self, stmt: ExprStmt) -> Callable:
        expr_c = self.lower_expr(stmt.expr)
        loc = stmt.loc

        def run(I, S):
            I.steps += 1
            if I.steps > I._max_steps:
                raise ExecutionTimeout(
                    f"step budget {I.limits.max_steps} exceeded at {loc}"
                )
            expr_c(I, S)
        return run

    def _lower_if(self, stmt: If) -> Callable:
        cond_c = self._lower_cond(stmt.cond)
        loc = stmt.loc
        if self.frame:
            self.sc.push()
            then_c = self.lower_stmt(stmt.then)
            self.sc.pop()
            other_c = None
            if stmt.other is not None:
                self.sc.push()
                other_c = self.lower_stmt(stmt.other)
                self.sc.pop()

            def run(I, S):
                I.steps += 1
                if I.steps > I._max_steps:
                    raise ExecutionTimeout(
                        f"step budget {I.limits.max_steps} exceeded at {loc}"
                    )
                if cond_c(I, S):
                    then_c(I, S)
                elif other_c is not None:
                    other_c(I, S)
            return run

        then_c = self.lower_stmt(stmt.then)
        other_c = self.lower_stmt(stmt.other) if stmt.other is not None else None

        def run(I, S):
            I.steps += 1
            if I.steps > I._max_steps:
                raise ExecutionTimeout(
                    f"step budget {I.limits.max_steps} exceeded at {loc}"
                )
            if cond_c(I, S):
                then_c(I, S.child())
            elif other_c is not None:
                other_c(I, S.child())
        return run

    def _lower_while(self, stmt: While) -> Callable:
        cond_c = self._lower_cond(stmt.cond)
        loc = stmt.loc
        if self.frame:
            self.sc.push()
            body_c = self.lower_stmt(stmt.body)
            self.sc.pop()

            def run(I, S):
                I.steps += 1
                if I.steps > I._max_steps:
                    raise ExecutionTimeout(
                        f"step budget {I.limits.max_steps} exceeded at {loc}"
                    )
                while cond_c(I, S):
                    I.steps += 1
                    if I.steps > I._max_steps:
                        raise ExecutionTimeout(f"step budget exceeded at {loc}")
                    try:
                        body_c(I, S)
                    except BreakSignal:
                        break
                    except ContinueSignal:
                        continue
            return run

        body_c = self.lower_stmt(stmt.body)

        def run(I, S):
            I.steps += 1
            if I.steps > I._max_steps:
                raise ExecutionTimeout(
                    f"step budget {I.limits.max_steps} exceeded at {loc}"
                )
            while cond_c(I, S):
                I.steps += 1
                if I.steps > I._max_steps:
                    raise ExecutionTimeout(f"step budget exceeded at {loc}")
                try:
                    body_c(I, S.child())
                except BreakSignal:
                    break
                except ContinueSignal:
                    continue
        return run

    def _lower_for_stmt(self, loop: For) -> Callable:
        core = self.lower_for_core(loop)
        loc = loop.loc

        def run(I, S):
            I.steps += 1
            if I.steps > I._max_steps:
                raise ExecutionTimeout(
                    f"step budget {I.limits.max_steps} exceeded at {loc}"
                )
            core(I, S)
        return run

    def lower_for_core(self, loop: For) -> Callable:
        """The loop itself, without the statement-node step bump (this is
        also the dispatch target of ``Interpreter.exec_for``, which the
        tree walker likewise runs without a node bump)."""
        start_c = self.lower_expr(loop.start)
        bound_c = self.lower_expr(loop.bound)
        step_c = self.lower_expr(loop.step)
        inclusive = loop.inclusive
        var = loop.var
        loc = loop.loc

        if self.frame:
            self.sc.push()
            outer_slot = self.sc.resolve(var)
            var_slot = self.sc.declare(var) if outer_slot is None else None
            body_c = self.lower_stmt(loop.body)
            self.sc.pop()

            def run(I, S):
                start = _as_int(start_c(I, S))
                bound = _as_int(bound_c(I, S))
                step = _as_int(step_c(I, S))
                if step == 0:
                    raise AccRuntimeError(f"zero loop step at {loc}")
                if step > 0:
                    stop = bound + 1 if inclusive else bound
                else:
                    stop = bound - 1 if inclusive else bound
                if outer_slot is not None:
                    cell = S[outer_slot]
                else:
                    # the tree walker's scope.lookup falls through to the
                    # globals; only a nowhere-defined var gets a fresh cell
                    cell = I.globals.lookup(var)
                    if cell is None:
                        cell = Cell(0, name=var)
                    S[var_slot] = cell
                max_steps = I._max_steps
                for i in range(start, stop, step):
                    I.steps += 1
                    if I.steps > max_steps:
                        raise ExecutionTimeout(f"step budget exceeded at {loc}")
                    cell.value = i
                    try:
                        body_c(I, S)
                    except BreakSignal:
                        break
                    except ContinueSignal:
                        continue
            return run

        body_c = self.lower_stmt(loop.body)

        def run(I, S):
            start = _as_int(start_c(I, S))
            bound = _as_int(bound_c(I, S))
            step = _as_int(step_c(I, S))
            if step == 0:
                raise AccRuntimeError(f"zero loop step at {loc}")
            if step > 0:
                stop = bound + 1 if inclusive else bound
            else:
                stop = bound - 1 if inclusive else bound
            scope = S.child()
            cell = scope.lookup(var)
            if cell is None:
                cell = scope.define(var, Cell(0, name=var))
            max_steps = I._max_steps
            for i in range(start, stop, step):
                I.steps += 1
                if I.steps > max_steps:
                    raise ExecutionTimeout(f"step budget exceeded at {loc}")
                cell.value = i
                try:
                    body_c(I, scope.child())
                except BreakSignal:
                    break
                except ContinueSignal:
                    continue
        return run

    def _lower_return(self, stmt: Return) -> Callable:
        value_c = self.lower_expr(stmt.value) if stmt.value is not None else None
        loc = stmt.loc

        def run(I, S):
            I.steps += 1
            if I.steps > I._max_steps:
                raise ExecutionTimeout(
                    f"step budget {I.limits.max_steps} exceeded at {loc}"
                )
            raise ReturnSignal(value_c(I, S) if value_c is not None else None)
        return run

    def _lower_break(self, stmt: Break) -> Callable:
        loc = stmt.loc

        def run(I, S):
            I.steps += 1
            if I.steps > I._max_steps:
                raise ExecutionTimeout(
                    f"step budget {I.limits.max_steps} exceeded at {loc}"
                )
            raise BreakSignal()
        return run

    def _lower_continue(self, stmt: Continue) -> Callable:
        loc = stmt.loc

        def run(I, S):
            I.steps += 1
            if I.steps > I._max_steps:
                raise ExecutionTimeout(
                    f"step budget {I.limits.max_steps} exceeded at {loc}"
                )
            raise ContinueSignal()
        return run

    def _lower_acc(self, stmt: Stmt, method: str) -> Callable:
        loc = stmt.loc
        if self.frame:
            visible = self.sc.visible()

            def run(I, S):
                I.steps += 1
                if I.steps > I._max_steps:
                    raise ExecutionTimeout(
                        f"step budget {I.limits.max_steps} exceeded at {loc}"
                    )
                env = _bridge_env(I, S, visible)
                getattr(I.acc, method)(stmt, env)
            return run

        def run(I, S):
            I.steps += 1
            if I.steps > I._max_steps:
                raise ExecutionTimeout(
                    f"step budget {I.limits.max_steps} exceeded at {loc}"
                )
            getattr(I.acc, method)(stmt, S)
        return run

    # ----------------------------------------------------------- expressions

    def lower_expr(self, expr: Expr) -> Callable:
        kind = type(expr)
        if kind is IntLit or kind is FloatLit or kind is StringLit:
            value = expr.value
            return lambda I, S: value
        if kind is Ident:
            return self._lower_ident(expr)
        if kind is Index:
            resolver = self._lower_index_resolver(expr)

            def run(I, S):
                array, indices = resolver(I, S)
                return array.get(indices)
            return run
        if kind is Binary:
            return self._lower_binary(expr)
        if kind is Unary:
            return self._lower_unary(expr)
        if kind is Conditional:
            cond_c = self._lower_cond(expr.cond)
            then_c = self.lower_expr(expr.then)
            other_c = self.lower_expr(expr.other)

            def run(I, S):
                if cond_c(I, S):
                    return then_c(I, S)
                return other_c(I, S)
            return run
        if kind is Call:
            return self._lower_call(expr)
        if kind is Cast:
            return self._lower_cast(expr)
        message = f"cannot evaluate expression {kind.__name__}"

        def run(I, S):  # pragma: no cover - mirrors the tree walker
            raise AccRuntimeError(message)
        return run

    def _cell_ref(self, name: str) -> Callable:
        """A closure resolving ``name`` to its Cell (or None if undefined)."""
        if self.frame:
            slot = self.sc.resolve(name)
            if slot is not None:
                return lambda I, S: S[slot]
            return lambda I, S: I.globals.lookup(name)
        return lambda I, S: S.lookup(name)

    def _lower_ident(self, expr: Ident) -> Callable:
        name = expr.name
        loc = expr.loc
        if self.frame:
            slot = self.sc.resolve(name)
            if slot is not None:
                def run(I, S):
                    return S[slot].value
                return run

            def run(I, S):
                cell = I.globals.lookup(name)
                if cell is None:
                    raise AccRuntimeError(
                        f"undefined variable {name!r} at {loc}"
                    )
                return cell.value
            return run

        def run(I, S):
            cell = S.lookup(name)
            if cell is None:
                raise AccRuntimeError(f"undefined variable {name!r} at {loc}")
            return cell.value
        return run

    def _lower_index_resolver(self, expr: Index) -> Callable:
        """Mirror of ``Interpreter._resolve_index``: (I, S) -> (array, ix)."""
        index_cs = tuple(self.lower_expr(ix) for ix in expr.indices)
        loc = expr.loc
        base = expr.base
        if isinstance(base, Ident):
            name = base.name
            getter = self._cell_ref(name)

            def resolve(I, S):
                cell = getter(I, S)
                if cell is None:
                    raise AccRuntimeError(f"undefined array {name!r} at {loc}")
                value = cell.value
                if isinstance(value, DevicePointer):
                    elem = cell.type.base if cell.type is not None else "int"
                    value = value.as_array(elem)
                if not isinstance(value, ArrayValue):
                    raise AccRuntimeError(
                        f"variable {name!r} is not an array at {loc}"
                    )
                indices = [_as_int(c(I, S)) for c in index_cs]
                return value, indices
            return resolve

        base_c = self.lower_expr(base)

        def resolve(I, S):
            value = base_c(I, S)
            if isinstance(value, DevicePointer):
                value = value.as_array("int")
            if not isinstance(value, ArrayValue):
                raise AccRuntimeError(f"indexing a non-array at {loc}")
            indices = [_as_int(c(I, S)) for c in index_cs]
            return value, indices
        return resolve

    def _leaf(self, expr: Expr):
        """Operand descriptor for inlining: ``('const', v)`` for a numeric
        literal, ``('slot', i)`` for a frame-resolved Ident, else None."""
        kind = type(expr)
        if kind is IntLit or kind is FloatLit:
            return ("const", expr.value)
        if kind is Ident and self.frame:
            slot = self.sc.resolve(expr.name)
            if slot is not None:
                return ("slot", slot)
        return None

    def _lower_cond(self, expr: Expr) -> Callable:
        """Lower ``expr`` for a truth context (if/while/?:/!/&&/||).

        Comparisons skip the 0/1 materialisation and the ``_truthy`` call —
        the truth value of ``1 if l < r else 0`` is exactly ``l < r``.
        Anything else falls back to ``_truthy`` over the expression value.
        """
        kind = type(expr)
        if kind is Binary:
            op = expr.op
            if op in ("==", "!=", "<", "<=", ">", ">="):
                lleaf = self._leaf(expr.left)
                rleaf = self._leaf(expr.right)
                if lleaf is not None and rleaf is not None:
                    hot = _hot_cond(op, lleaf, rleaf)
                    if hot is not None:
                        return hot
                left_c = self.lower_expr(expr.left)
                right_c = self.lower_expr(expr.right)
                if op == "==":
                    return lambda I, S: left_c(I, S) == right_c(I, S)
                if op == "!=":
                    return lambda I, S: left_c(I, S) != right_c(I, S)
                if op == "<":
                    return lambda I, S: left_c(I, S) < right_c(I, S)
                if op == "<=":
                    return lambda I, S: left_c(I, S) <= right_c(I, S)
                if op == ">":
                    return lambda I, S: left_c(I, S) > right_c(I, S)
                return lambda I, S: left_c(I, S) >= right_c(I, S)
            if op == "&&":
                a = self._lower_cond(expr.left)
                b = self._lower_cond(expr.right)
                return lambda I, S: a(I, S) and b(I, S)
            if op == "||":
                a = self._lower_cond(expr.left)
                b = self._lower_cond(expr.right)
                return lambda I, S: a(I, S) or b(I, S)
        elif kind is Unary and expr.op == "!":
            inner = self._lower_cond(expr.operand)
            return lambda I, S: not inner(I, S)
        value_c = self.lower_expr(expr)
        return lambda I, S: _truthy(value_c(I, S))

    def _lower_binary(self, expr: Binary) -> Callable:
        op = expr.op
        if op == "&&":
            a = self._lower_cond(expr.left)
            b = self._lower_cond(expr.right)
            return lambda I, S: 1 if a(I, S) and b(I, S) else 0
        if op == "||":
            a = self._lower_cond(expr.left)
            b = self._lower_cond(expr.right)
            return lambda I, S: 1 if a(I, S) or b(I, S) else 0
        lleaf = self._leaf(expr.left)
        rleaf = self._leaf(expr.right)
        if lleaf is not None and rleaf is not None:
            hot = _hot_binary(op, lleaf, rleaf)
            if hot is not None:
                return hot
        left_c = self.lower_expr(expr.left)
        right_c = self.lower_expr(expr.right)
        # hand-specialised hot operators (identical to binary_value)
        if op == "+":
            return lambda I, S: left_c(I, S) + right_c(I, S)
        if op == "-":
            return lambda I, S: left_c(I, S) - right_c(I, S)
        if op == "*":
            return lambda I, S: left_c(I, S) * right_c(I, S)
        if op == "==":
            return lambda I, S: 1 if left_c(I, S) == right_c(I, S) else 0
        if op == "!=":
            return lambda I, S: 1 if left_c(I, S) != right_c(I, S) else 0
        if op == "<":
            return lambda I, S: 1 if left_c(I, S) < right_c(I, S) else 0
        if op == "<=":
            return lambda I, S: 1 if left_c(I, S) <= right_c(I, S) else 0
        if op == ">":
            return lambda I, S: 1 if left_c(I, S) > right_c(I, S) else 0
        if op == ">=":
            return lambda I, S: 1 if left_c(I, S) >= right_c(I, S) else 0
        combine = _op_fn(op, expr)
        return lambda I, S: combine(left_c(I, S), right_c(I, S))

    def _lower_unary(self, expr: Unary) -> Callable:
        op = expr.op
        operand_c = self.lower_expr(expr.operand)
        loc = expr.loc
        if op == "*":
            def run(I, S):
                array = _pointer_array(operand_c(I, S), loc)
                return array.get([array.lowers[0]])
            return run
        if op == "-":
            return lambda I, S: -operand_c(I, S)
        if op == "!":
            cond_c = self._lower_cond(expr.operand)
            return lambda I, S: 0 if cond_c(I, S) else 1
        if op == "~":
            return lambda I, S: ~int(operand_c(I, S))

        def run(I, S):  # pragma: no cover - mirrors the tree walker
            operand_c(I, S)
            raise AccRuntimeError(f"unknown unary operator {op!r} at {loc}")
        return run

    def _lower_cast(self, expr: Cast) -> Callable:
        operand_c = self.lower_expr(expr.operand)
        typ = expr.type
        if typ.pointer > 0:
            size = _SIZEOF.get(typ.base, 8)
            base = typ.base

            def run(I, S):
                value = operand_c(I, S)
                if isinstance(value, _MallocResult):
                    return ArrayValue((value.nbytes // size,), base)
                return value  # pointer-to-pointer casts are identity here
            return run
        base = typ.base

        def run(I, S):
            value = operand_c(I, S)
            if isinstance(value, _MallocResult):
                raise AccRuntimeError("malloc result used without pointer cast")
            return coerce_scalar(base, value)
        return run

    def _lower_call(self, expr: Call) -> Callable:
        name = expr.name
        loc = expr.loc
        # user functions take precedence (same resolution order as eval_call)
        fn = self.functions.get(name)
        if fn is not None:
            arg_cs = []
            for param, arg in zip(fn.params, expr.args):
                if self.language == "fortran" and isinstance(arg, Ident):
                    arg_cs.append(self._lower_byref_arg(arg))
                else:
                    arg_cs.append(self.lower_expr(arg))
            arg_cs = tuple(arg_cs)
            mismatch = len(expr.args) != len(fn.params)
            mismatch_msg = (
                f"{name}: expected {len(fn.params)} args, got {len(expr.args)}"
            )
            lowered_fns = self.lowered_fns
            if lowered_fns is not None and not mismatch:

                def run(I, S):
                    args = [c(I, S) for c in arg_cs]
                    lf = lowered_fns.get(name)
                    if lf is not None:
                        return invoke_function(I, lf, args)
                    return I.call_function(fn, args)
                return run

            def run(I, S):
                args = [c(I, S) for c in arg_cs]
                if mismatch:
                    raise AccRuntimeError(mismatch_msg)
                return I.call_function(fn, args)
            return run

        handler = _BUILTINS.get(name)
        if handler is not None:
            arg_cs = tuple(self.lower_expr(a) for a in expr.args)

            def run(I, S):
                return handler(I, [c(I, S) for c in arg_cs], expr)
            return run

        def run(I, S):
            raise AccRuntimeError(f"call to unknown function {name!r} at {loc}")
        return run

    def _lower_byref_arg(self, arg: Ident) -> Callable:
        """A Fortran bare-variable argument: pass the Cell by reference."""
        name = arg.name
        loc = arg.loc
        getter = self._cell_ref(name)

        def run(I, S):
            cell = getter(I, S)
            if cell is None:
                raise AccRuntimeError(f"undefined variable {name!r} at {loc}")
            return cell
        return run


def _pointer_array(value, loc) -> ArrayValue:
    if isinstance(value, DevicePointer):
        return value.as_array("int")
    if isinstance(value, ArrayValue):
        return value
    raise AccRuntimeError(f"dereference of a non-pointer at {loc}")
