"""Compilation pipeline: frontend -> validation -> executable.

``Compiler.compile`` parses the source with the language's frontend and runs
a semantic validation pass that produces the paper's *compile-time* error
class: unknown or version-gated directives/clauses, features the simulated
vendor does not support, the CAPS constant-expression restriction (Fig. 9),
missing runtime routines, user procedure calls inside compute regions (1.0
has no ``routine`` directive — Section V-C "Procedure calls"), and
``default(none)`` violations (2.0).

A successful compile yields a :class:`CompiledProgram` that can be run many
times — each run gets a fresh simulated machine, matching the harness's
repeat-M-iterations methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.compiler.behavior import CompilerBehavior, REFERENCE_BEHAVIOR
from repro.compiler.errors import CompileError, UnsupportedFeatureError
from repro.compiler.interp import ExecutionLimits, ExecutionResult, Interpreter, builtin_names
from repro.frontend.errors import FrontendError
from repro.ir.acc import Clause, Directive
from repro.ir.astnodes import (
    AccConstruct,
    AccLoop,
    AccStandalone,
    Call,
    Function,
    IntLit,
    Program,
    walk,
)
from repro.spec.versions import ACC_10, ACC_20

# ---------------------------------------------------------------------------
# clause allowance table — owned by the static checker so the simulated
# compilers and `repro lint` can never disagree about legality
# ---------------------------------------------------------------------------

from repro.staticcheck.legality import (  # noqa: E402
    ALLOWED_CLAUSES,
    V20_CLAUSES as _V20_CLAUSES,
    V20_DIRECTIVES as _V20_DIRECTIVES,
)

_PARALLELISM_SIZE_CLAUSES = ("num_gangs", "num_workers", "vector_length")

#: runtime routines known to the 1.0 runtime library
_KNOWN_ROUTINES = {
    "acc_get_num_devices", "acc_set_device_type", "acc_get_device_type",
    "acc_set_device_num", "acc_get_device_num", "acc_async_test",
    "acc_async_test_all", "acc_async_wait", "acc_async_wait_all",
    "acc_init", "acc_shutdown", "acc_on_device", "acc_malloc", "acc_free",
}


@dataclass
class CompiledProgram:
    """The output of a successful compile: runnable any number of times."""

    program: Program
    behavior: CompilerBehavior
    source: str = ""
    warnings: List[str] = field(default_factory=list)
    #: lazily lowered closure program (repro.compiler.closures), attached to
    #: this instance so compile-cache hits reuse the lowering as well as the
    #: parse — never pickled (closures aren't picklable) and never compared
    _lowered: Optional[object] = field(
        default=None, repr=False, compare=False
    )

    def lowered(self, tracer=None, name: Optional[str] = None):
        """The closure-lowered form, computed once per compiled program.

        Benign data race under the thread policy: two threads may lower
        concurrently and one result wins; lowering is pure, so both are
        interchangeable.

        ``tracer`` (a :class:`repro.obs.Tracer`, optional) receives
        ``lower.cache_hit``/``lower.cache_miss`` events and counters,
        mirroring the compile cache's ``compile.cache_hit/miss``: a hit
        means a previous phase/iteration (or a compile-cache hit carrying
        the lowering along) already paid the lowering cost.
        """
        observe = tracer is not None and tracer.enabled
        lowered = self._lowered
        if lowered is None:
            if observe:
                tracer.event("lower.cache_miss", template=name or "?")
                tracer.metrics.counter("lower.cache_misses").inc()
            from repro.compiler.closures import lower_program

            lowered = lower_program(self.program)
            self._lowered = lowered
        elif observe:
            tracer.event("lower.cache_hit", template=name or "?")
            tracer.metrics.counter("lower.cache_hits").inc()
        return lowered

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_lowered"] = None  # closures don't pickle; re-lower on use
        return state

    def runner(self, backend: str = "tree", tracer=None,
               name: Optional[str] = None) -> "ProgramRunner":
        """A per-phase batched executor (see :class:`ProgramRunner`)."""
        return ProgramRunner(self, backend=backend, tracer=tracer, name=name)

    def run(
        self,
        env_vars: Optional[Dict[str, str]] = None,
        limits: Optional[ExecutionLimits] = None,
        rng_seed: int = 12345,
        backend: str = "tree",
    ) -> ExecutionResult:
        """Execute on a fresh simulated machine (one harness iteration)."""
        interp = Interpreter(
            self.program,
            behavior=self.behavior,
            env_vars=env_vars,
            rng_seed=rng_seed,
            backend=backend,
            lowered=self.lowered() if backend == "closures" else None,
        )
        return interp.run(limits=limits)


class ProgramRunner:
    """Batched per-phase executor for one compiled program.

    The harness runs every phase M times.  Everything that is a pure
    function of (program, behavior) is built here once and shared across
    those iterations: the lowered closure program (``backend="closures"``)
    and the machine's :class:`ExecProfile` (read-only at runtime).  Every
    iteration still gets a *fresh* :class:`Machine` and interpreter, so
    device counters, globals and RNG state match a cold run exactly —
    reports stay byte-identical with the unbatched path.
    """

    def __init__(self, compiled: CompiledProgram, backend: str = "tree",
                 tracer=None, name: Optional[str] = None):
        from repro.accsim.device import ExecProfile

        self.compiled = compiled
        self.backend = backend
        behavior = compiled.behavior
        self._profile = ExecProfile(
            default_num_gangs=behavior.default_num_gangs,
            default_num_workers=behavior.default_num_workers,
            default_vector_length=behavior.default_vector_length,
            worker_ignored=behavior.worker_ignored,
            mapping=behavior.mapping_description,
        )
        #: whether the lowering was already attached to the compiled
        #: program (None when the tree backend never looks); instrumentation
        #: only — mirrors PhaseResult.cache_hit for the compile cache
        self.lower_hit: Optional[bool] = None
        if backend == "closures":
            self.lower_hit = compiled._lowered is not None
            self._lowered = compiled.lowered(tracer=tracer, name=name)
        else:
            self._lowered = None

    def run(
        self,
        env_vars: Optional[Dict[str, str]] = None,
        limits: Optional[ExecutionLimits] = None,
        rng_seed: int = 12345,
    ) -> ExecutionResult:
        from repro.accsim.machine import Machine

        behavior = self.compiled.behavior
        machine = Machine(
            accel_count=1,
            accel_device_type=behavior.concrete_device_type,
            profile=self._profile,
        )
        interp = Interpreter(
            self.compiled.program,
            behavior=behavior,
            machine=machine,
            env_vars=env_vars,
            rng_seed=rng_seed,
            backend=self.backend,
            lowered=self._lowered,
        )
        return interp.run(limits=limits)


class Compiler:
    """An OpenACC implementation: frontends + validation + simulator."""

    def __init__(self, behavior: CompilerBehavior = REFERENCE_BEHAVIOR):
        self.behavior = behavior

    # ------------------------------------------------------------- compile

    def compile(self, source: str, language: str = "c", name: str = "<test>") -> CompiledProgram:
        if not self.behavior.supports_language(language):
            raise UnsupportedFeatureError(
                f"{self.behavior.label} has no {language} frontend"
            )
        try:
            if language == "c":
                from repro.minic import parse_program

                program = parse_program(source, filename=name, name=name)
            elif language == "fortran":
                from repro.minifort import parse_program

                program = parse_program(source, filename=name, name=name)
            else:
                raise UnsupportedFeatureError(f"unknown language {language!r}")
        except FrontendError as err:
            raise CompileError(str(err)) from err
        warnings = self.validate(program)
        return CompiledProgram(
            program=program, behavior=self.behavior, source=source,
            warnings=warnings,
        )

    # ------------------------------------------------------------ validation

    def validate(self, program: Program) -> List[str]:
        warnings: List[str] = []
        behavior = self.behavior
        user_functions = {fn.name for fn in program.functions}
        routine_functions = self._routine_functions(program)

        for fn in program.functions:
            for directive in fn.declares:
                self._check_directive(directive)
            for node in walk(fn.body):
                if isinstance(node, (AccConstruct, AccLoop, AccStandalone)):
                    self._check_directive(node.directive)
                if isinstance(node, (AccConstruct, AccLoop)) and node.directive.kind in (
                    "parallel", "kernels", "parallel loop", "kernels loop",
                ):
                    body = node.body if isinstance(node, AccConstruct) else node.loop
                    self._check_region_calls(body, user_functions, routine_functions)
                    self._check_default_none(node.directive, body, program)
        # link check: runtime routines must exist in this implementation
        for fn in program.functions:
            for node in walk(fn.body):
                if isinstance(node, Call) and node.name.startswith("acc_"):
                    if node.name not in _KNOWN_ROUTINES:
                        raise CompileError(
                            f"unknown runtime routine {node.name}", node.loc
                        )
                    if node.name in behavior.unsupported_routines:
                        raise UnsupportedFeatureError(
                            f"{behavior.label} does not provide {node.name}",
                            node.loc,
                        )
        return warnings

    def _routine_functions(self, program: Program) -> Set[str]:
        """Functions compiled for the device via 2.0 `routine` directives."""
        out: Set[str] = set()
        if self.behavior.spec_version >= ACC_20:
            for fn in program.functions:
                for d in fn.declares:
                    if d.kind == "routine":
                        out.add(fn.name)
        return out

    def _check_directive(self, d: Directive) -> None:
        behavior = self.behavior
        if d.kind in _V20_DIRECTIVES and behavior.spec_version < ACC_20:
            raise UnsupportedFeatureError(
                f"`{d.kind}` requires OpenACC 2.0 "
                f"({behavior.label} implements {behavior.spec_version})",
                d.loc,
            )
        if d.kind in behavior.unsupported_directives:
            raise UnsupportedFeatureError(
                f"{behavior.label} does not support the `{d.kind}` directive",
                d.loc,
            )
        allowed = ALLOWED_CLAUSES.get(d.kind)
        if allowed is None:
            raise CompileError(f"unknown directive `{d.kind}`", d.loc)
        for clause in d.clauses:
            if clause.name in _V20_CLAUSES and behavior.spec_version < ACC_20:
                raise UnsupportedFeatureError(
                    f"clause `{clause.name}` requires OpenACC 2.0", clause.loc
                )
            if clause.name not in allowed and clause.name not in _V20_CLAUSES:
                raise CompileError(
                    f"clause `{clause.name}` is not valid on `{d.kind}`",
                    clause.loc,
                )
            if (d.kind, clause.name) in behavior.unsupported_clauses:
                raise UnsupportedFeatureError(
                    f"{behavior.label} does not support `{clause.name}` on "
                    f"`{d.kind}`",
                    clause.loc,
                )
            if (
                behavior.require_constant_parallelism_exprs
                and clause.name in _PARALLELISM_SIZE_CLAUSES
                and clause.expr is not None
                and not isinstance(clause.expr, IntLit)
            ):
                # CAPS < 3.1.0 (Section V-B, Fig. 9)
                raise CompileError(
                    f"{behavior.label}: `{clause.name}` requires a constant "
                    "expression",
                    clause.loc,
                )
            if clause.name == "reduction" and clause.op is None:
                raise CompileError("reduction clause without operator", clause.loc)

    def _check_region_calls(
        self, body, user_functions: Set[str], routine_functions: Set[str]
    ) -> None:
        """1.0 cannot call user procedures inside compute regions."""
        builtin = set(builtin_names())
        for node in walk(body):
            if isinstance(node, Call) and node.name in user_functions:
                if node.name not in routine_functions:
                    raise UnsupportedFeatureError(
                        f"call to user procedure {node.name!r} inside a compute "
                        "region (OpenACC 1.0 has no `routine` directive)",
                        node.loc,
                    )
            elif isinstance(node, Call) and node.name not in builtin and node.name not in user_functions:
                raise CompileError(
                    f"call to unknown function {node.name!r}", node.loc
                )

    def _check_default_none(self, d: Directive, body, program: Program) -> None:
        """2.0 `default(none)`: every referenced outer variable needs an
        explicit data attribute."""
        clause = d.clause("default")
        if clause is None or clause.op != "none":
            return
        from repro.ir.astnodes import DeclStmt, Ident

        explicit: Set[str] = set()
        for c in d.clauses:
            explicit.update(c.var_names)
        declared = {
            decl.name
            for node in walk(body)
            if isinstance(node, DeclStmt)
            for decl in node.decls
        }
        loop_vars = {
            node.var for node in walk(body) if hasattr(node, "var") and hasattr(node, "bound")
        }
        known_globals = {g.name for g in program.globals}
        for node in walk(body):
            if isinstance(node, Ident):
                name = node.name
                if (
                    name not in explicit
                    and name not in declared
                    and name not in loop_vars
                    and not name.startswith("acc_device_")
                    and name not in known_globals
                ):
                    raise CompileError(
                        f"default(none): variable {name!r} lacks an explicit "
                        "data attribute",
                        node.loc,
                    )
