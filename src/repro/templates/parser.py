"""Template parser (the paper used a Perl script for this stage)."""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.templates.markers import (
    CHECK_CLOSE,
    CHECK_OPEN,
    CHECK_TAG,
    CROSS_OPEN,
    CROSS_TAG,
)
from repro.templates.model import TemplateError, TestTemplate

_TAG_RE = re.compile(
    r"<acctv:(?P<name>[a-z]+)(?P<attrs>[^>]*)>(?P<body>.*?)</acctv:(?P=name)>",
    re.DOTALL,
)
_ATTR_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\s*=\s*\"([^\"]*)\"")

_HEADER_TAGS = {
    "testdescription", "directive", "language", "version", "dependences",
    "testname", "defaults",
}


def _extract(body: str, tag: str, required: bool = False) -> Optional[str]:
    open_tag = f"<acctv:{tag}"
    start = body.find(open_tag)
    if start == -1:
        if required:
            raise TemplateError(f"missing required <acctv:{tag}> tag")
        return None
    gt = body.find(">", start)
    if gt == -1:
        raise TemplateError(f"malformed <acctv:{tag}> tag")
    close_tag = f"</acctv:{tag}>"
    end = body.find(close_tag, gt)
    if end == -1:
        raise TemplateError(f"unterminated <acctv:{tag}> tag")
    return body[gt + 1 : end]


def _extract_attrs(body: str, tag: str) -> Dict[str, str]:
    open_tag = f"<acctv:{tag}"
    start = body.find(open_tag)
    if start == -1:
        return {}
    gt = body.find(">", start)
    return dict(_ATTR_RE.findall(body[start:gt]))


def parse_template(text: str, name: Optional[str] = None) -> TestTemplate:
    """Parse one template document into a :class:`TestTemplate`.

    Raises :class:`TemplateError` on structural problems: a missing root,
    missing directive/testcode sections, or unbalanced check markers.
    """
    root = _extract(text, "test", required=True)

    feature = _extract(root, "directive", required=True).strip()
    code = _extract(root, "testcode", required=True)
    language = (_extract(root, "language") or "c").strip().lower()
    if language not in ("c", "fortran"):
        raise TemplateError(f"unknown template language {language!r}")
    description = (_extract(root, "testdescription") or "").strip()
    version = (_extract(root, "version") or "1.0").strip()
    dependences_text = _extract(root, "dependences") or ""
    dependences = [d for d in re.split(r"[,\s]+", dependences_text.strip()) if d]
    tname = (_extract(root, "testname") or "").strip()
    if not tname:
        tname = name or f"{feature}.{language}"
    defaults = _extract_attrs(root, "defaults")
    crossexpect = (_extract(root, "crossexpect") or "different").strip().lower()
    if crossexpect not in ("different", "same"):
        raise TemplateError(f"invalid crossexpect value {crossexpect!r}")
    environment = _extract_attrs(root, "environment")

    _check_balance(code)
    # code must not be empty
    if not code.strip():
        raise TemplateError("empty <acctv:testcode> section")

    return TestTemplate(
        name=tname,
        feature=feature,
        language=language,
        code=code,
        description=description,
        version=version,
        dependences=dependences,
        defaults=defaults,
        crossexpect=crossexpect,
        environment=environment,
    )


def _check_balance(code: str) -> None:
    for marker in (CHECK_TAG, CROSS_TAG):
        opens = len(re.findall(rf"<acctv:{marker}>", code))
        closes = len(re.findall(rf"</acctv:{marker}>", code))
        if opens != closes:
            raise TemplateError(
                f"unbalanced <acctv:{marker}> markers ({opens} open / {closes} close)"
            )
    # nesting check/crosscheck inside each other is not meaningful
    inner = re.findall(
        rf"{re.escape(CHECK_OPEN)}((?:(?!{re.escape(CHECK_CLOSE)}).)*?)"
        rf"{re.escape(CHECK_CLOSE)}",
        code,
        re.DOTALL,
    )
    for body in inner:
        if CROSS_OPEN in body:
            raise TemplateError("crosscheck marker nested inside check marker")
