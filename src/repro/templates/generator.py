"""Code generation: template -> standalone functional / cross programs.

Functional generation keeps ``<acctv:check>`` content and drops
``<acctv:crosscheck>`` content; cross generation does the opposite.  The
result is a complete program compilable by any of the simulated OpenACC
implementations — mirroring the paper's "generated test code is a complete
and standalone C/Fortran code".
"""

from __future__ import annotations

import re
from typing import Dict, Optional

from repro.templates.markers import CHECK_RE as _CHECK_RE, CROSS_RE as _CROSS_RE
from repro.templates.model import GeneratedTest, TemplateError, TestTemplate
_PLACEHOLDER_RE = re.compile(r"\{\{([A-Za-z_][A-Za-z0-9_]*)\}\}")


def _substitute(code: str, template: TestTemplate, params: Optional[Dict[str, object]]) -> str:
    values: Dict[str, str] = dict(template.defaults)
    if params:
        values.update({k: str(v) for k, v in params.items()})

    def repl(match: re.Match) -> str:
        key = match.group(1)
        if key not in values:
            raise TemplateError(
                f"template {template.name!r} has no value for placeholder {key!r}"
            )
        return values[key]

    return _PLACEHOLDER_RE.sub(repl, code)


def _strip_blank_runs(code: str) -> str:
    """Collapse the blank lines marker removal leaves behind."""
    lines = code.split("\n")
    out = []
    for line in lines:
        if line.strip() == "" and out and out[-1].strip() == "":
            continue
        out.append(line)
    return "\n".join(out).strip("\n") + "\n"


def generate_functional(
    template: TestTemplate, params: Optional[Dict[str, object]] = None
) -> GeneratedTest:
    code = _CHECK_RE.sub(lambda m: m.group(1), template.code)
    code = _CROSS_RE.sub("", code)
    code = _substitute(code, template, params)
    return GeneratedTest(
        name=template.name,
        feature=template.feature,
        language=template.language,
        mode="functional",
        source=_strip_blank_runs(code),
        template=template,
    )


def generate_cross(
    template: TestTemplate, params: Optional[Dict[str, object]] = None
) -> GeneratedTest:
    if not template.has_cross:
        raise TemplateError(
            f"template {template.name!r} defines no cross test markers"
        )
    code = _CHECK_RE.sub("", template.code)
    code = _CROSS_RE.sub(lambda m: m.group(1), code)
    code = _substitute(code, template, params)
    return GeneratedTest(
        name=template.name,
        feature=template.feature,
        language=template.language,
        mode="cross",
        source=_strip_blank_runs(code),
        template=template,
    )


def generate(
    template: TestTemplate, mode: str, params: Optional[Dict[str, object]] = None
) -> GeneratedTest:
    if mode == "functional":
        return generate_functional(template, params)
    if mode == "cross":
        return generate_cross(template, params)
    raise ValueError(f"unknown generation mode {mode!r}")


def generate_pair(
    template: TestTemplate, params: Optional[Dict[str, object]] = None
):
    """(functional, cross-or-None) for one template."""
    functional = generate_functional(template, params)
    cross = generate_cross(template, params) if template.has_cross else None
    return functional, cross
