"""Template data model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.templates.markers import CHECK_OPEN, CROSS_OPEN


class TemplateError(Exception):
    """Malformed template text."""


@dataclass
class TestTemplate:
    """A parsed test template.

    ``feature`` is the dotted id from :mod:`repro.spec.features`
    (e.g. ``parallel.num_gangs``); ``code`` retains the inline
    check/crosscheck markers, which generation resolves.
    """

    name: str
    feature: str
    language: str  # 'c' | 'fortran'
    code: str
    description: str = ""
    version: str = "1.0"
    dependences: List[str] = field(default_factory=list)
    defaults: Dict[str, str] = field(default_factory=dict)
    #: what a *correct* implementation produces on the cross run:
    #: 'different' (the normal case: removing the directive must change the
    #: result) or 'same' (scheduling-only clauses whose removal legitimately
    #: preserves results — the paper reports such crosses as inconclusive
    #: rather than failures)
    crossexpect: str = "different"
    #: ACC_* variables the harness must set when running this test
    environment: Dict[str, str] = field(default_factory=dict)

    @property
    def has_cross(self) -> bool:
        return CHECK_OPEN in self.code or CROSS_OPEN in self.code


@dataclass
class GeneratedTest:
    """A standalone generated program (one mode of one template)."""

    name: str
    feature: str
    language: str
    mode: str  # 'functional' | 'cross'
    source: str
    template: Optional[TestTemplate] = None
