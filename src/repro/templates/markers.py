"""The inline marker vocabulary shared by template authoring and parsing.

``<acctv:check>`` wraps text emitted only in the *functional* test and
``<acctv:crosscheck>`` text emitted only in the *cross* test.  Authoring
(:mod:`repro.suite.builders`), detection (:meth:`TestTemplate.has_cross`),
structural validation (:mod:`repro.templates.parser`) and generation
(:mod:`repro.templates.generator`) all build their literals and regexes
from these constants, so renaming a marker cannot desync generation from
cross detection.
"""

from __future__ import annotations

import re

#: tag names (inside the ``acctv:`` namespace)
CHECK_TAG = "check"
CROSS_TAG = "crosscheck"

#: literal marker spellings
CHECK_OPEN = f"<acctv:{CHECK_TAG}>"
CHECK_CLOSE = f"</acctv:{CHECK_TAG}>"
CROSS_OPEN = f"<acctv:{CROSS_TAG}>"
CROSS_CLOSE = f"</acctv:{CROSS_TAG}>"

#: compiled extraction patterns (body is group 1)
CHECK_RE = re.compile(
    f"{re.escape(CHECK_OPEN)}(.*?){re.escape(CHECK_CLOSE)}", re.DOTALL
)
CROSS_RE = re.compile(
    f"{re.escape(CROSS_OPEN)}(.*?){re.escape(CROSS_CLOSE)}", re.DOTALL
)
