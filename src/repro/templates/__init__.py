"""Template-based test generation (paper Section III, Fig. 3).

A test template is "written following an html syntax structure that includes
the OpenACC directive/clause to be tested"; the infrastructure parses it and
generates the *functional* and *cross* test programs.  The tag vocabulary
follows the OpenMP validation suite lineage the authors adapted ([7], [8]):

* ``<acctv:test> ... </acctv:test>`` — the template root;
* header tags: ``<acctv:testdescription>``, ``<acctv:directive>`` (the
  dotted feature id), ``<acctv:language>``, ``<acctv:version>``,
  ``<acctv:dependences>``;
* ``<acctv:testcode>`` — a complete standalone program, with inline markers:

  - ``<acctv:check>...</acctv:check>`` — emitted only in the functional
    test (typically the directive/clause under test);
  - ``<acctv:crosscheck>...</acctv:crosscheck>`` — emitted only in the
    cross test (the removed/substituted variant whose result must be
    *wrong* for the feature to be validated).

``{{NAME}}`` placeholders are substituted from template defaults merged
with caller parameters, so one template covers a family of sizes.
"""

from repro.templates.markers import (
    CHECK_CLOSE,
    CHECK_OPEN,
    CHECK_TAG,
    CROSS_CLOSE,
    CROSS_OPEN,
    CROSS_TAG,
)
from repro.templates.model import GeneratedTest, TestTemplate, TemplateError
from repro.templates.parser import parse_template
from repro.templates.generator import (
    generate,
    generate_cross,
    generate_functional,
    generate_pair,
)

__all__ = [
    "CHECK_CLOSE", "CHECK_OPEN", "CHECK_TAG",
    "CROSS_CLOSE", "CROSS_OPEN", "CROSS_TAG",
    "GeneratedTest", "TestTemplate", "TemplateError",
    "parse_template",
    "generate", "generate_cross", "generate_functional", "generate_pair",
]
