"""HTML trace/metrics dashboard (the observability sibling of
:func:`repro.harness.report.render_html`).

Self-contained single-file HTML: summary tiles, per-phase breakdown, the
top-N slowest templates with proportional bars, counters/gauges/histogram
tables and the most recent events.  Every trace-derived string passes
through ``html.escape`` — span keys, event fields and attribute values all
originate in template/feature names and failure details, which the
escaping regression tests deliberately poison with markup.
"""

from __future__ import annotations

import html as _html
from typing import List

from repro.obs.sink import TraceData
from repro.obs.summary import TraceSummary, summarize_trace


def _esc(value: object) -> str:
    return _html.escape(str(value))


def _tile(label: str, value: str) -> str:
    return (f"<div class='tile'><div class='v'>{_esc(value)}</div>"
            f"<div class='l'>{_esc(label)}</div></div>")


def render_trace_html(trace: TraceData, top: int = 20,
                      event_limit: int = 50) -> str:
    """Render a parsed trace as a standalone HTML dashboard."""
    summary: TraceSummary = summarize_trace(trace, top=top)
    title = str(trace.meta.get("command", "trace"))

    tiles = "".join([
        _tile("wall time", f"{summary.wall_s:.3f} s"),
        _tile("compile (sum)", f"{summary.compile_s:.3f} s"),
        _tile("execute (sum)", f"{summary.execute_s:.3f} s"),
        _tile("cache hit rate", f"{summary.cache_hit_rate:.1%}"),
        _tile("spans", str(len(trace.spans))),
        _tile("events", str(len(trace.events))),
    ])

    phase_rows: List[str] = []
    for name, (count, total) in sorted(
        summary.phase_totals.items(), key=lambda kv: -kv[1][1]
    ):
        mean = total / count if count else 0.0
        phase_rows.append(
            f"<tr><td>{_esc(name)}</td><td class='n'>{count}</td>"
            f"<td class='n'>{total:.3f}</td><td class='n'>{mean:.4f}</td></tr>"
        )

    slow_rows: List[str] = []
    max_duration = max((d for _, d, _ in summary.slowest), default=0.0)
    for key, duration, passed in summary.slowest:
        width = 100.0 * duration / max_duration if max_duration else 0.0
        cls = "pass" if passed else ("fail" if passed is not None else "")
        verdict = ("pass" if passed else "FAIL") if passed is not None else "?"
        slow_rows.append(
            f"<tr class='{cls}'><td>{_esc(key)}</td>"
            f"<td class='n'>{duration:.4f}</td><td>{verdict}</td>"
            f"<td><div class='bar' style='width:{width:.1f}%'></div></td></tr>"
        )

    metric_rows: List[str] = []
    for name in sorted(trace.counters):
        metric_rows.append(
            f"<tr><td>{_esc(name)}</td><td>counter</td>"
            f"<td class='n' colspan='4'>{trace.counters[name]}</td></tr>"
        )
    for name in sorted(trace.gauges):
        metric_rows.append(
            f"<tr><td>{_esc(name)}</td><td>gauge</td>"
            f"<td class='n' colspan='4'>{trace.gauges[name]:.6g}</td></tr>"
        )
    for name in sorted(trace.histograms):
        count, total, lo, hi = trace.histograms[name]
        mean = total / count if count else 0.0
        lo_s = f"{lo:.6g}" if lo is not None else "-"
        hi_s = f"{hi:.6g}" if hi is not None else "-"
        metric_rows.append(
            f"<tr><td>{_esc(name)}</td><td>histogram</td>"
            f"<td class='n'>n={count}</td><td class='n'>mean={mean:.6g}</td>"
            f"<td class='n'>min={lo_s}</td><td class='n'>max={hi_s}</td></tr>"
        )

    event_rows: List[str] = []
    for event in trace.events[:event_limit]:
        fields = ", ".join(
            f"{_esc(k)}={_esc(v)}" for k, v in sorted(event.fields.items())
        )
        event_rows.append(
            f"<tr><td class='n'>{event.seq}</td><td>{_esc(event.name)}</td>"
            f"<td>{_esc(event.span_id or '')}</td><td>{fields}</td></tr>"
        )

    meta = " | ".join(
        f"{_esc(k)}={_esc(v)}" for k, v in sorted(trace.meta.items())
        if k != "format"
    )

    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>repro trace dashboard — {_esc(title)}</title>
<style>
 body {{ font-family: sans-serif; margin: 1em 2em; }}
 h2 {{ margin-top: 1.4em; }}
 table {{ border-collapse: collapse; }}
 td, th {{ border: 1px solid #999; padding: 2px 8px; }}
 td.n {{ text-align: right; font-variant-numeric: tabular-nums; }}
 tr.pass td {{ background: #e7f7e7; }}
 tr.fail td {{ background: #f7e7e7; }}
 .tile {{ display: inline-block; border: 1px solid #999; border-radius: 4px;
          padding: 6px 14px; margin-right: 8px; text-align: center; }}
 .tile .v {{ font-size: 1.3em; font-weight: bold; }}
 .tile .l {{ font-size: 0.8em; color: #555; }}
 .bar {{ background: #69c; height: 10px; min-width: 1px; }}
 td:has(.bar) {{ min-width: 180px; border: 1px solid #999; }}
</style></head>
<body>
<h1>repro trace dashboard</h1>
<p>{meta}</p>
{tiles}
<h2>Per-phase time breakdown</h2>
<table>
<tr><th>span</th><th>count</th><th>total (s)</th><th>mean (s)</th></tr>
{chr(10).join(phase_rows)}
</table>
<h2>Slowest templates</h2>
<table>
<tr><th>template</th><th>duration (s)</th><th>verdict</th><th>relative</th></tr>
{chr(10).join(slow_rows)}
</table>
<h2>Metrics</h2>
<table>
<tr><th>name</th><th>kind</th><th colspan='4'>value</th></tr>
{chr(10).join(metric_rows)}
</table>
<h2>Events (first {min(event_limit, len(trace.events))} of {len(trace.events)})</h2>
<table>
<tr><th>#</th><th>event</th><th>span</th><th>fields</th></tr>
{chr(10).join(event_rows)}
</table>
</body></html>
"""


# --------------------------------------------------------------------------
# Perf-trajectory page (``repro obs perf``) — renders the committed
# ``benchmarks/BENCH_history.jsonl`` entries as a standalone HTML page:
# a hero number (latest closures steps/sec), a single-series line chart of
# the trajectory, and the full per-run table.  Single series, so no legend
# box — the chart title names it.  All interpolated strings are escaped.

#: chart colors per scheme: series-1 blue on the light/dark surfaces
_PERF_LIGHT = {"series": "#2a78d6", "surface": "#fcfcfb", "ink": "#1f1f1e",
               "muted": "#6b6b68", "grid": "#e4e4e1", "border": "#d5d5d2"}
_PERF_DARK = {"series": "#3987e5", "surface": "#1a1a19", "ink": "#ededeb",
              "muted": "#989894", "grid": "#33332f", "border": "#44443f"}


def _fmt_sps(value: float) -> str:
    """Humanize steps/sec for axis and hero labels (5233345 -> '5.23M')."""
    value = float(value)
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.0f}k"
    return f"{value:.0f}"


def _perf_chart_svg(entries: List[dict]) -> str:
    """Single-series SVG line chart of closures steps/sec over history."""
    values = [float(e["microbench"]["closures_steps_per_sec"])
              for e in entries]
    labels = [str(e.get("git_sha", "?")) for e in entries]
    width, height = 720, 260
    pad_l, pad_r, pad_t, pad_b = 64, 20, 16, 36
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b

    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:  # flat line / single point: give the scale some air
        span = max(hi * 0.1, 1.0)
    lo -= span * 0.15
    hi += span * 0.15
    if lo < 0:
        lo = 0.0

    def x(i: int) -> float:
        if len(values) == 1:
            return pad_l + plot_w / 2
        return pad_l + plot_w * i / (len(values) - 1)

    def y(v: float) -> float:
        return pad_t + plot_h * (1 - (v - lo) / (hi - lo))

    parts: List[str] = []
    # horizontal gridlines + y labels (4 steps)
    for k in range(5):
        gv = lo + (hi - lo) * k / 4
        gy = y(gv)
        parts.append(
            f"<line class='grid' x1='{pad_l}' y1='{gy:.1f}' "
            f"x2='{width - pad_r}' y2='{gy:.1f}'/>"
        )
        parts.append(
            f"<text class='axis' x='{pad_l - 6}' y='{gy + 3.5:.1f}' "
            f"text-anchor='end'>{_esc(_fmt_sps(gv))}</text>"
        )
    # the series line (2px) over the grid
    if len(values) > 1:
        points = " ".join(f"{x(i):.1f},{y(v):.1f}"
                          for i, v in enumerate(values))
        parts.append(f"<polyline class='series' points='{points}'/>")
    # markers (8px = r4) with native hover tooltips, x labels per run
    for i, v in enumerate(values):
        cx, cy = x(i), y(v)
        tip = (f"{labels[i]} — {v:,.0f} steps/s "
               f"({entries[i].get('recorded_at', '?')})")
        parts.append(
            f"<circle class='marker' cx='{cx:.1f}' cy='{cy:.1f}' r='4'>"
            f"<title>{_esc(tip)}</title></circle>"
        )
        parts.append(
            f"<text class='axis' x='{cx:.1f}' y='{height - pad_b + 16}' "
            f"text-anchor='middle'>{_esc(labels[i])}</text>"
        )
        # selective direct labels: first and last point only
        if i in (0, len(values) - 1) and len(values) > 1:
            parts.append(
                f"<text class='label' x='{cx:.1f}' y='{cy - 9:.1f}' "
                f"text-anchor='middle'>{_esc(_fmt_sps(v))}</text>"
            )
    return (
        f"<svg viewBox='0 0 {width} {height}' role='img' "
        f"aria-label='closures interpreter steps per second by commit'>"
        + "".join(parts) + "</svg>"
    )


def render_perf_html(entries: List[dict]) -> str:
    """Render bench-history entries as a perf-trajectory HTML page."""
    if not entries:
        raise ValueError("no history entries to render")
    latest = entries[-1]
    micro = latest["microbench"]

    rows: List[str] = []
    for e in entries:
        m = e["microbench"]
        eng = e.get("engine", {})
        rows.append(
            "<tr>"
            f"<td>{_esc(e.get('git_sha', '?'))}</td>"
            f"<td>{_esc(e.get('recorded_at', '?'))}</td>"
            f"<td class='n'>{m['tree_steps_per_sec']:,}</td>"
            f"<td class='n'>{m['closures_steps_per_sec']:,}</td>"
            f"<td class='n'>{m['speedup']:.2f}x</td>"
            f"<td class='n'>{eng.get('tree', {}).get('iterations_per_sec', 0):,.1f}</td>"
            f"<td class='n'>{eng.get('closures', {}).get('iterations_per_sec', 0):,.1f}</td>"
            f"<td class='n'>{e.get('generation', {}).get('templates_per_sec', 0):,.1f}</td>"
            f"<td class='n'>{e.get('fig8a', {}).get('wall_s', 0):.2f}</td>"
            "</tr>"
        )

    light = "".join(f"--{k}: {v}; " for k, v in _PERF_LIGHT.items())
    dark = "".join(f"--{k}: {v}; " for k, v in _PERF_DARK.items())

    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>repro perf trajectory</title>
<style>
 :root {{ {light}}}
 @media (prefers-color-scheme: dark) {{ :root {{ {dark}}} }}
 body {{ font-family: system-ui, sans-serif; margin: 1em 2em;
         background: var(--surface); color: var(--ink); }}
 h1 {{ font-size: 1.3em; }}
 h2 {{ margin-top: 1.4em; font-size: 1.05em; }}
 .hero .v {{ font-size: 2.2em; font-weight: bold;
             font-variant-numeric: tabular-nums; }}
 .hero .l {{ color: var(--muted); }}
 svg {{ max-width: 760px; width: 100%; height: auto; }}
 svg .grid {{ stroke: var(--grid); stroke-width: 1; }}
 svg .series {{ fill: none; stroke: var(--series); stroke-width: 2; }}
 svg .marker {{ fill: var(--series); stroke: var(--surface);
                stroke-width: 2; }}
 svg .axis {{ fill: var(--muted); font-size: 11px; }}
 svg .label {{ fill: var(--ink); font-size: 11px; }}
 table {{ border-collapse: collapse; }}
 td, th {{ border: 1px solid var(--border); padding: 2px 8px; }}
 td.n {{ text-align: right; font-variant-numeric: tabular-nums; }}
 p.meta {{ color: var(--muted); }}
</style></head>
<body>
<h1>repro perf trajectory</h1>
<div class='hero'>
 <div class='v'>{micro['closures_steps_per_sec']:,} steps/s</div>
 <div class='l'>closures interpreter at {_esc(latest.get('git_sha', '?'))}
 ({micro['speedup']:.2f}x over tree) — {len(entries)} recorded
 run{'' if len(entries) == 1 else 's'}</div>
</div>
<h2>Closures interpreter steps/sec by commit</h2>
{_perf_chart_svg(entries)}
<h2>All recorded runs</h2>
<table>
<tr><th>sha</th><th>recorded</th><th>tree steps/s</th>
<th>closures steps/s</th><th>speedup</th><th>engine tree it/s</th>
<th>engine closures it/s</th><th>gen templates/s</th><th>fig8a (s)</th></tr>
{chr(10).join(rows)}
</table>
<p class='meta'>python {_esc(latest.get('python', '?'))} ·
{_esc(latest.get('machine', '?'))} · schema
{_esc(latest.get('schema', '?'))}</p>
</body></html>
"""
