"""HTML trace/metrics dashboard (the observability sibling of
:func:`repro.harness.report.render_html`).

Self-contained single-file HTML: summary tiles, per-phase breakdown, the
top-N slowest templates with proportional bars, counters/gauges/histogram
tables and the most recent events.  Every trace-derived string passes
through ``html.escape`` — span keys, event fields and attribute values all
originate in template/feature names and failure details, which the
escaping regression tests deliberately poison with markup.
"""

from __future__ import annotations

import html as _html
from typing import List

from repro.obs.sink import TraceData
from repro.obs.summary import TraceSummary, summarize_trace


def _esc(value: object) -> str:
    return _html.escape(str(value))


def _tile(label: str, value: str) -> str:
    return (f"<div class='tile'><div class='v'>{_esc(value)}</div>"
            f"<div class='l'>{_esc(label)}</div></div>")


def render_trace_html(trace: TraceData, top: int = 20,
                      event_limit: int = 50) -> str:
    """Render a parsed trace as a standalone HTML dashboard."""
    summary: TraceSummary = summarize_trace(trace, top=top)
    title = str(trace.meta.get("command", "trace"))

    tiles = "".join([
        _tile("wall time", f"{summary.wall_s:.3f} s"),
        _tile("compile (sum)", f"{summary.compile_s:.3f} s"),
        _tile("execute (sum)", f"{summary.execute_s:.3f} s"),
        _tile("cache hit rate", f"{summary.cache_hit_rate:.1%}"),
        _tile("spans", str(len(trace.spans))),
        _tile("events", str(len(trace.events))),
    ])

    phase_rows: List[str] = []
    for name, (count, total) in sorted(
        summary.phase_totals.items(), key=lambda kv: -kv[1][1]
    ):
        mean = total / count if count else 0.0
        phase_rows.append(
            f"<tr><td>{_esc(name)}</td><td class='n'>{count}</td>"
            f"<td class='n'>{total:.3f}</td><td class='n'>{mean:.4f}</td></tr>"
        )

    slow_rows: List[str] = []
    max_duration = max((d for _, d, _ in summary.slowest), default=0.0)
    for key, duration, passed in summary.slowest:
        width = 100.0 * duration / max_duration if max_duration else 0.0
        cls = "pass" if passed else ("fail" if passed is not None else "")
        verdict = ("pass" if passed else "FAIL") if passed is not None else "?"
        slow_rows.append(
            f"<tr class='{cls}'><td>{_esc(key)}</td>"
            f"<td class='n'>{duration:.4f}</td><td>{verdict}</td>"
            f"<td><div class='bar' style='width:{width:.1f}%'></div></td></tr>"
        )

    metric_rows: List[str] = []
    for name in sorted(trace.counters):
        metric_rows.append(
            f"<tr><td>{_esc(name)}</td><td>counter</td>"
            f"<td class='n' colspan='4'>{trace.counters[name]}</td></tr>"
        )
    for name in sorted(trace.gauges):
        metric_rows.append(
            f"<tr><td>{_esc(name)}</td><td>gauge</td>"
            f"<td class='n' colspan='4'>{trace.gauges[name]:.6g}</td></tr>"
        )
    for name in sorted(trace.histograms):
        count, total, lo, hi = trace.histograms[name]
        mean = total / count if count else 0.0
        lo_s = f"{lo:.6g}" if lo is not None else "-"
        hi_s = f"{hi:.6g}" if hi is not None else "-"
        metric_rows.append(
            f"<tr><td>{_esc(name)}</td><td>histogram</td>"
            f"<td class='n'>n={count}</td><td class='n'>mean={mean:.6g}</td>"
            f"<td class='n'>min={lo_s}</td><td class='n'>max={hi_s}</td></tr>"
        )

    event_rows: List[str] = []
    for event in trace.events[:event_limit]:
        fields = ", ".join(
            f"{_esc(k)}={_esc(v)}" for k, v in sorted(event.fields.items())
        )
        event_rows.append(
            f"<tr><td class='n'>{event.seq}</td><td>{_esc(event.name)}</td>"
            f"<td>{_esc(event.span_id or '')}</td><td>{fields}</td></tr>"
        )

    meta = " | ".join(
        f"{_esc(k)}={_esc(v)}" for k, v in sorted(trace.meta.items())
        if k != "format"
    )

    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>repro trace dashboard — {_esc(title)}</title>
<style>
 body {{ font-family: sans-serif; margin: 1em 2em; }}
 h2 {{ margin-top: 1.4em; }}
 table {{ border-collapse: collapse; }}
 td, th {{ border: 1px solid #999; padding: 2px 8px; }}
 td.n {{ text-align: right; font-variant-numeric: tabular-nums; }}
 tr.pass td {{ background: #e7f7e7; }}
 tr.fail td {{ background: #f7e7e7; }}
 .tile {{ display: inline-block; border: 1px solid #999; border-radius: 4px;
          padding: 6px 14px; margin-right: 8px; text-align: center; }}
 .tile .v {{ font-size: 1.3em; font-weight: bold; }}
 .tile .l {{ font-size: 0.8em; color: #555; }}
 .bar {{ background: #69c; height: 10px; min-width: 1px; }}
 td:has(.bar) {{ min-width: 180px; border: 1px solid #999; }}
</style></head>
<body>
<h1>repro trace dashboard</h1>
<p>{meta}</p>
{tiles}
<h2>Per-phase time breakdown</h2>
<table>
<tr><th>span</th><th>count</th><th>total (s)</th><th>mean (s)</th></tr>
{chr(10).join(phase_rows)}
</table>
<h2>Slowest templates</h2>
<table>
<tr><th>template</th><th>duration (s)</th><th>verdict</th><th>relative</th></tr>
{chr(10).join(slow_rows)}
</table>
<h2>Metrics</h2>
<table>
<tr><th>name</th><th>kind</th><th colspan='4'>value</th></tr>
{chr(10).join(metric_rows)}
</table>
<h2>Events (first {min(event_limit, len(trace.events))} of {len(trace.events)})</h2>
<table>
<tr><th>#</th><th>event</th><th>span</th><th>fields</th></tr>
{chr(10).join(event_rows)}
</table>
</body></html>
"""
