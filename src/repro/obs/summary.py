"""Trace summarization: the analysis half of ``repro trace summarize``.

Folds a recorded trace back into the numbers an engineer asks first:
where did the time go (per-phase breakdown), which templates were slowest
(top-N by span duration), and how did the compile cache behave over the
run (hit/miss timeline).  The per-phase totals are sums of the *same*
span durations the runner copied into ``PhaseResult.compile_s``/``run_s``,
so they reconcile with :class:`repro.harness.engine.RunMetrics` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.sink import TraceData

#: cache events recognised in the timeline
_CACHE_EVENTS = {"compile.cache_hit": "hit", "compile.cache_miss": "miss"}

#: lowering-cache events (closures backend); not part of the compile
#: timeline — lowering happens once per CompiledProgram, post-compile
_LOWER_EVENTS = {"lower.cache_hit": "hit", "lower.cache_miss": "miss"}


@dataclass
class TraceSummary:
    """Aggregates derived from one trace file."""

    #: total duration of root (parentless) spans — the suite-run wall time
    wall_s: float = 0.0
    #: summed duration of all ``compile`` spans (matches RunMetrics.compile_s)
    compile_s: float = 0.0
    #: summed duration of all ``execute`` spans (matches RunMetrics.execute_s)
    execute_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: lowering-cache counters (``lower.cache_hits``/``lower.cache_misses``;
    #: populated only by closures-backend runs)
    lower_hits: int = 0
    lower_misses: int = 0
    #: span name -> (count, summed duration)
    phase_totals: Dict[str, Tuple[int, float]] = field(default_factory=dict)
    #: slowest template spans: (key, duration, passed) best-first
    slowest: List[Tuple[str, float, Optional[bool]]] = field(default_factory=list)
    #: cache timeline entries: (seq, 'hit'|'miss', template name)
    cache_timeline: List[Tuple[int, str, str]] = field(default_factory=list)
    #: event name -> count
    event_counts: Dict[str, int] = field(default_factory=dict)
    #: failure-kind value -> count (from iteration.failed events)
    failure_kinds: Dict[str, int] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def lower_hit_rate(self) -> float:
        total = self.lower_hits + self.lower_misses
        return self.lower_hits / total if total else 0.0


def summarize_trace(trace: TraceData, top: int = 10) -> TraceSummary:
    """Aggregate a parsed trace into a :class:`TraceSummary`."""
    summary = TraceSummary()
    for span in trace.spans:
        if span.parent_id is None:
            summary.wall_s += span.duration
        count, total = summary.phase_totals.get(span.name, (0, 0.0))
        summary.phase_totals[span.name] = (count + 1, total + span.duration)
        if span.name == "compile":
            summary.compile_s += span.duration
        elif span.name == "execute":
            summary.execute_s += span.duration

    templates = sorted(
        trace.spans_named("template"),
        key=lambda s: (-s.duration, s.span_id),
    )
    summary.slowest = [
        (s.key or s.span_id, s.duration, s.attrs.get("passed"))
        for s in templates[:top]
    ]

    summary.cache_hits = trace.counters.get("compile.cache_hits", 0)
    summary.cache_misses = trace.counters.get("compile.cache_misses", 0)
    summary.lower_hits = trace.counters.get("lower.cache_hits", 0)
    summary.lower_misses = trace.counters.get("lower.cache_misses", 0)
    for event in trace.events:
        summary.event_counts[event.name] = \
            summary.event_counts.get(event.name, 0) + 1
        verdict = _CACHE_EVENTS.get(event.name)
        if verdict is not None:
            summary.cache_timeline.append(
                (event.seq, verdict, str(event.fields.get("template", "?")))
            )
        elif event.name == "iteration.failed":
            kind = str(event.fields.get("kind", "?"))
            summary.failure_kinds[kind] = summary.failure_kinds.get(kind, 0) + 1
    return summary


def render_summary_text(summary: TraceSummary,
                        timeline_limit: int = 20) -> str:
    """Plain-text rendering for the CLI."""
    lines: List[str] = []
    lines.append("trace summary")
    lines.append(f"  wall time (roots)  : {summary.wall_s:.3f} s")
    lines.append(f"  compile time (sum) : {summary.compile_s:.3f} s")
    lines.append(f"  execute time (sum) : {summary.execute_s:.3f} s")
    lines.append(
        f"  compile cache      : {summary.cache_hits} hits / "
        f"{summary.cache_misses} misses ({summary.cache_hit_rate:.1%} hit rate)"
    )
    if summary.lower_hits or summary.lower_misses:
        lines.append(
            f"  lowering cache     : {summary.lower_hits} hits / "
            f"{summary.lower_misses} misses "
            f"({summary.lower_hit_rate:.1%} hit rate)"
        )
    if summary.failure_kinds:
        lines.append("  failed iterations  : " + ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(summary.failure_kinds.items())
        ))

    lines.append("")
    lines.append("per-phase time breakdown")
    header = f"  {'span':12s} {'count':>6s} {'total':>10s} {'mean':>10s}"
    lines.append(header)
    for name, (count, total) in sorted(
        summary.phase_totals.items(), key=lambda kv: -kv[1][1]
    ):
        mean = total / count if count else 0.0
        lines.append(f"  {name:12s} {count:6d} {total:9.3f}s {mean:9.4f}s")

    if summary.slowest:
        lines.append("")
        lines.append(f"top {len(summary.slowest)} slowest templates")
        for key, duration, passed in summary.slowest:
            verdict = ("pass" if passed else "FAIL") if passed is not None else "?"
            lines.append(f"  {key:44s} {duration:9.4f}s  {verdict}")

    if summary.cache_timeline:
        lines.append("")
        shown = summary.cache_timeline[:timeline_limit]
        lines.append(
            f"compile-cache timeline (first {len(shown)} of "
            f"{len(summary.cache_timeline)})"
        )
        for seq, verdict, template in shown:
            lines.append(f"  #{seq:<5d} {verdict:4s} {template}")

    if summary.event_counts:
        lines.append("")
        lines.append("events: " + ", ".join(
            f"{name}={count}"
            for name, count in sorted(summary.event_counts.items())
        ))
    return "\n".join(lines) + "\n"
