"""Span-based tracing for the harness.

A :class:`Span` is one timed region of work (a template, a phase, a
compile, a Titan node check) with a parent link, free-form attributes and a
worker label.  A :class:`Tracer` collects spans, typed events and metrics
for one run and is the single object threaded through the runner, the
execution engines, the compile cache and the Titan harness.

Design points that matter to the rest of the system:

* **Deterministic IDs.**  A span's ID is ``name[key]`` where the key is
  derived from stable identity (template feature+language, phase mode,
  node id) — never from scheduling.  Serial and parallel runs of the same
  configuration therefore produce spans with *identical IDs*, so traces
  are diffable/joinable across policies.  Repeated (name, key) pairs are
  disambiguated with a ``~n`` suffix in creation order.
* **Spans are the timers.**  ``Span.__enter__``/``__exit__`` take the
  ``perf_counter`` readings, and the runner copies ``span.duration`` into
  ``PhaseResult.compile_s``/``run_s``.  One reading means the trace and
  :class:`~repro.harness.engine.RunMetrics` reconcile *exactly*, not just
  approximately.
* **Disabled tracing is free.**  :data:`NULL_TRACER` returns
  :class:`NullSpan` objects that still time (the runner needs the
  durations regardless) but record nothing and allocate nothing else;
  the metric API degrades to shared no-op instruments.
* **Worker marshalling.**  Process-pool workers run their own tracer,
  :meth:`Tracer.drain` the collected spans/events/metrics into a plain
  picklable payload after each work unit, and the parent
  tracer calls :meth:`Tracer.adopt` — relabelling the worker and
  renumbering event sequence numbers.  Spans without a parent are later
  attached under the suite-run root span by
  :meth:`Tracer.reparent_orphans`, so one trace covers the whole run.

Span parentage is tracked per-thread (a thread-local stack), which makes
nesting automatic in serial code and safely isolated under the thread
engine.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, NULL_METRICS

#: format tag written into trace metadata and checked by the reader
TRACE_FORMAT = "repro.obs/v1"


class Span:
    """One timed, attributed region of work."""

    __slots__ = ("span_id", "name", "key", "parent_id", "worker",
                 "t0", "t1", "attrs", "_tracer")

    def __init__(self, span_id: str, name: str, key: Optional[str],
                 parent_id: Optional[str], worker: str,
                 tracer: Optional["Tracer"] = None,
                 attrs: Optional[Dict[str, object]] = None):
        self.span_id = span_id
        self.name = name
        self.key = key
        self.parent_id = parent_id
        self.worker = worker
        self.t0 = 0.0
        self.t1 = 0.0
        self.attrs: Dict[str, object] = attrs if attrs is not None else {}
        self._tracer = tracer

    @property
    def duration(self) -> float:
        return max(0.0, self.t1 - self.t0)

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._push(self)
        self.t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.t1 = perf_counter()
        if self._tracer is not None:
            self._tracer._pop(self)
            self._tracer._record(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.span_id!r}, parent={self.parent_id!r}, dur={self.duration:.6f})"

    def to_dict(self) -> dict:
        return {
            "id": self.span_id,
            "name": self.name,
            "key": self.key,
            "parent": self.parent_id,
            "worker": self.worker,
            "t0": self.t0,
            "dur_s": self.duration,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(data["id"], data["name"], data.get("key"),
                   data.get("parent"), data.get("worker", ""),
                   attrs=dict(data.get("attrs") or {}))
        span.t0 = data.get("t0", 0.0)
        span.t1 = span.t0 + data.get("dur_s", 0.0)
        return span


class Event:
    """A typed point-in-time record (e.g. ``iteration.failed``)."""

    __slots__ = ("seq", "name", "span_id", "fields")

    def __init__(self, seq: int, name: str, span_id: Optional[str],
                 fields: Dict[str, object]):
        self.seq = seq
        self.name = name
        self.span_id = span_id
        self.fields = fields

    def to_dict(self) -> dict:
        return {"seq": self.seq, "name": self.name, "span": self.span_id,
                "fields": self.fields}

    @classmethod
    def from_dict(cls, data: dict) -> "Event":
        return cls(data.get("seq", 0), data["name"], data.get("span"),
                   dict(data.get("fields") or {}))


class Tracer:
    """Collects spans, events and metrics for one run.

    ``profile`` additionally surfaces the accsim execution profile
    (bytes moved by data clauses, async-queue waits/depth, step counts)
    as span attributes and histograms.
    """

    enabled = True

    def __init__(self, profile: bool = False):
        self.profile = profile
        self.metrics = MetricsRegistry()
        self.spans: List[Span] = []
        self.events: List[Event] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._used_ids: set = set()
        self._seq = 0

    # ------------------------------------------------------------- span api

    def current(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def span(self, name: str, key: Optional[str] = None,
             parent: Optional[object] = None, worker: Optional[str] = None,
             **attrs) -> Span:
        """Create a span; use as a context manager to time and record it.

        ``parent`` may be a :class:`Span`, an explicit parent ID string, or
        None (the current thread's innermost open span, if any).
        """
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        if parent_id is None:
            current = self.current()
            parent_id = current.span_id if current is not None else None
        if worker is None:
            worker = threading.current_thread().name
        return Span(self._make_id(name, key), name, key, parent_id, worker,
                    tracer=self, attrs=dict(attrs) if attrs else None)

    def event(self, name: str, **fields) -> None:
        current = self.current()
        span_id = current.span_id if current is not None else None
        with self._lock:
            seq = self._seq
            self._seq += 1
            self.events.append(Event(seq, name, span_id, fields))

    # ------------------------------------------------------------ internals

    def _make_id(self, name: str, key: Optional[str]) -> str:
        base = f"{name}[{key}]" if key is not None else name
        with self._lock:
            if base not in self._used_ids:
                self._used_ids.add(base)
                return base
            n = 2
            while f"{base}~{n}" in self._used_ids:
                n += 1
            span_id = f"{base}~{n}"
            self._used_ids.add(span_id)
            return span_id

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()

    def _record(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    # ----------------------------------------------------------- marshalling

    def drain(self) -> dict:
        """Snapshot everything recorded so far as a picklable payload and
        reset (used by process-pool workers after each work unit)."""
        with self._lock:
            payload = {
                "spans": [span.to_dict() for span in self.spans],
                "events": [event.to_dict() for event in self.events],
            }
            self.spans = []
            self.events = []
            self._used_ids = set()
            self._seq = 0
        payload["metrics"] = self.metrics.snapshot()
        self.metrics.clear()
        return payload

    def adopt(self, payload: dict, worker: Optional[str] = None) -> None:
        """Merge a drained payload from another tracer (another process).

        Adopted spans are relabelled with ``worker`` (the pool's name for
        the process); event sequence numbers are renumbered into this
        tracer's stream so ordering stays total.
        """
        spans = [Span.from_dict(d) for d in payload.get("spans", [])]
        events = [Event.from_dict(d) for d in payload.get("events", [])]
        events.sort(key=lambda e: e.seq)
        with self._lock:
            for span in spans:
                if worker is not None:
                    span.worker = worker
                self._used_ids.add(span.span_id)
                self.spans.append(span)
            for event in events:
                event.seq = self._seq
                self._seq += 1
                self.events.append(event)
        self.metrics.merge(payload.get("metrics", {}))

    def reparent_orphans(self, root: Span) -> None:
        """Attach every recorded parentless span under ``root`` — the step
        that stitches worker-local traces into one run-wide tree."""
        with self._lock:
            for span in self.spans:
                if span.parent_id is None and span is not root:
                    span.parent_id = root.span_id


# ---------------------------------------------------------------------------
# disabled tracing
# ---------------------------------------------------------------------------


class NullSpan:
    """Times (the runner reads ``duration`` either way) but records nothing."""

    __slots__ = ("t0", "t1")

    span_id = ""
    name = ""
    key = None
    parent_id = None
    worker = ""
    attrs: Dict[str, object] = {}

    def __init__(self) -> None:
        self.t0 = 0.0
        self.t1 = 0.0

    @property
    def duration(self) -> float:
        return max(0.0, self.t1 - self.t0)

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        self.t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.t1 = perf_counter()
        return False


class NullTracer:
    """The default tracer: every operation is a no-op (modulo two
    ``perf_counter`` reads per span, which the untraced runner paid for
    its timing instrumentation already)."""

    enabled = False
    profile = False
    metrics = NULL_METRICS
    spans: List[Span] = []
    events: List[Event] = []

    def current(self) -> None:
        return None

    def span(self, name: str, key: Optional[str] = None,
             parent: Optional[object] = None, worker: Optional[str] = None,
             **attrs) -> NullSpan:
        return NullSpan()

    def event(self, name: str, **fields) -> None:
        pass

    def drain(self) -> dict:
        return {"spans": [], "events": [], "metrics": {}}

    def adopt(self, payload: dict, worker: Optional[str] = None) -> None:
        pass

    def reparent_orphans(self, root) -> None:
        pass


NULL_TRACER = NullTracer()
