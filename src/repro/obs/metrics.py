"""Metric primitives: counters, gauges, histograms.

The harness's observability events fall into three shapes: things that
happen (``compile.cache_hits`` — a :class:`Counter`), levels that are
(``run.wall_s`` — a :class:`Gauge`), and distributions over many samples
(``iteration.steps`` — a :class:`Histogram` keeping count/sum/min/max
rather than raw samples, so a million-iteration run costs four floats).

A :class:`MetricsRegistry` owns the instruments by name.  It snapshots to
plain dicts (for the JSONL sink and for marshalling out of process-pool
workers) and merges snapshots back in (counters add, gauges last-write,
histograms fold), which is how per-worker metrics become one run-wide view.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """A last-write-wins level."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """A streaming distribution: count, sum, min, max."""

    __slots__ = ("name", "count", "sum", "min", "max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def fold(self, count: int, total: float,
             lo: Optional[float], hi: Optional[float]) -> None:
        with self._lock:
            self.count += count
            self.sum += total
            if lo is not None and (self.min is None or lo < self.min):
                self.min = lo
            if hi is not None and (self.max is None or hi > self.max):
                self.max = hi


class MetricsRegistry:
    """Named instruments plus snapshot/merge for cross-process transport."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self.counters.get(name)
            if instrument is None:
                instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self.gauges.get(name)
            if instrument is None:
                instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self.histograms.get(name)
            if instrument is None:
                instrument = self.histograms[name] = Histogram(name)
        return instrument

    # ------------------------------------------------- transport (pickleable)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "counters": {n: c.value for n, c in self.counters.items()},
                "gauges": {n: g.value for n, g in self.gauges.items()},
                "histograms": {
                    n: (h.count, h.sum, h.min, h.max)
                    for n, h in self.histograms.items()
                },
            }

    def merge(self, snapshot: dict) -> None:
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, (count, total, lo, hi) in snapshot.get("histograms", {}).items():
            self.histogram(name).fold(count, total, lo, hi)

    def clear(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()


# ---------------------------------------------------------------------------
# null instruments (tracing disabled: every operation is a cheap no-op)
# ---------------------------------------------------------------------------


class _NullInstrument:
    __slots__ = ()
    name = ""
    value = 0
    count = 0
    sum = 0.0
    min = None
    max = None
    mean = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Registry stand-in used by :class:`repro.obs.trace.NullTracer`."""

    counters: Dict[str, Counter] = {}
    gauges: Dict[str, Gauge] = {}
    histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, snapshot: dict) -> None:
        pass

    def clear(self) -> None:
        pass


NULL_METRICS = NullMetrics()
