"""Live campaign telemetry (``repro.obs.live``).

PR 2's tracer records a run and writes the trace *afterwards*; a week-long
campaign needs observability *during* the run.  This module is that layer:

* :class:`TelemetryBus` — a bounded, thread-safe in-process event bus.
  Engines publish typed records from the per-unit completion callbacks
  (the same coordinating-thread hook the journal uses), the bus keeps the
  most recent ``capacity`` records for in-process consumers (the future
  campaign server's clients) and fans every record out to the attached
  sinks.  Publishing never blocks on a full buffer: the oldest record is
  dropped and counted, so telemetry can never stall a campaign.
* :class:`ProgressTally` — the pure fold from unit events to campaign
  totals, shared by the live reporter and ``repro obs tail --summarize``
  so the stream and the final report reconcile by construction.
* :class:`SnapshotReporter` — periodically folds the tally (plus an
  optional :class:`~repro.obs.metrics.MetricsRegistry` snapshot) into a
  campaign snapshot: progress fraction, ETA, units/sec, per-phase
  pass/fail/harness-error counts, compile- and lowering-cache hit rates,
  retry/quarantine counts and per-backend timing histograms.
* Three sinks — :class:`NDJSONStreamSink` (append-only ``repro.obs.live/v1``
  stream, one flushed line per record so a reader tailing the file sees at
  worst one torn final line; the final snapshot is *also* written
  atomically to ``<path>.snapshot.json`` via :mod:`repro.ioutil`),
  :class:`StatusLineSink` (a TTY status line for interactive runs) and
  :class:`PrometheusSink` (a textfile-exporter ``*.prom`` file rewritten
  atomically on every snapshot).
* :class:`LiveTelemetry` — the campaign-scoped pipeline object wired
  through :class:`~repro.harness.runner.ValidationRunner` and
  :class:`~repro.harness.titan.TitanHarness`, built from
  :class:`~repro.harness.config.HarnessConfig` knobs
  (``live_stream``/``status``/``prom``) or CLI flags.

Telemetry *observes* a run and never changes it: suite reports are
byte-identical with live telemetry enabled or disabled, under every
execution policy and backend.
"""

from __future__ import annotations

import json
import os
import re
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.ioutil import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.config import HarnessConfig
    from repro.harness.runner import SuiteRunReport, TestResult

#: format tag written into the stream's meta record, checked by the reader
LIVE_FORMAT = "repro.obs.live/v1"

#: default bounded-buffer capacity of the bus
DEFAULT_CAPACITY = 4096


# ---------------------------------------------------------------------------
# the bus
# ---------------------------------------------------------------------------


class TelemetryBus:
    """Bounded, thread-safe event bus with attached sinks.

    Records are plain JSON-safe dicts carrying a ``type`` (``meta``,
    ``event`` or ``snapshot``) and a monotonically increasing ``seq``.
    The bus keeps the newest :attr:`capacity` records for in-process
    consumers and forwards every record to each subscribed sink under the
    bus lock — sinks therefore never need their own locking, and record
    order is total.  When the buffer is full the *oldest* buffered record
    is evicted (sinks already streamed it) and :attr:`dropped` counts the
    eviction, so a runaway campaign can never grow the buffer unboundedly.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._records: deque = deque()
        self._sinks: List[object] = []
        self._lock = threading.RLock()
        self._seq = 0

    def subscribe(self, sink) -> None:
        """Attach a sink (an object with ``emit(record)``)."""
        with self._lock:
            self._sinks.append(sink)

    def publish(self, kind: str, **fields) -> dict:
        """Publish one typed event; returns the stamped record."""
        return self.publish_record(
            {"type": "event", "kind": kind, "fields": fields}
        )

    def publish_record(self, record: dict) -> dict:
        """Publish a pre-built record (snapshots, meta headers)."""
        with self._lock:
            record = dict(record)
            record["seq"] = self._seq
            self._seq += 1
            if len(self._records) >= self.capacity:
                self._records.popleft()
                self.dropped += 1
            self._records.append(record)
            for sink in self._sinks:
                sink.emit(record)
        return record

    def records(self) -> List[dict]:
        """Snapshot of the currently buffered records (newest-capacity)."""
        with self._lock:
            return list(self._records)


# ---------------------------------------------------------------------------
# the fold: unit events -> campaign totals
# ---------------------------------------------------------------------------


def unit_fields(index: int, unit: str, result: "TestResult", *,
                backend: str = "tree", replayed: bool = False) -> dict:
    """The JSON-safe fields of one ``unit.finished`` event.

    Phase accounting mirrors :func:`repro.harness.engine.build_metrics`
    exactly — phases that never reached the compiler (harness or static
    errors) contribute no iterations, timings or cache flags — so a tally
    folded from these events reconciles with the report's
    :class:`~repro.harness.engine.RunMetrics` without slack.
    """
    kind = result.failure_kind
    fields = {
        "unit": unit,
        "index": index,
        "replayed": replayed,
        "backend": backend,
        "passed": result.passed,
        "failure_kind": kind.value if kind is not None else None,
        "elapsed_s": result.elapsed_s,
        "iterations": 0,
        "compile_cache_hits": 0,
        "compile_cache_misses": 0,
        "lower_cache_hits": 0,
        "lower_cache_misses": 0,
        "compile_s": 0.0,
        "run_s": 0.0,
        "phases": {},
    }
    for phase in (result.functional, result.cross):
        if phase is None:
            continue
        fields["phases"][phase.mode] = {
            "ok": phase.all_correct,
            "harness_error": phase.harness_error is not None,
            "static_error": phase.static_error is not None,
        }
        if phase.harness_error is not None or phase.static_error is not None:
            # the unit never reached the compiler: mirror build_metrics
            continue
        fields["iterations"] += len(phase.iterations)
        fields["compile_s"] += phase.compile_s
        fields["run_s"] += phase.run_s
        if phase.cache_hit:
            fields["compile_cache_hits"] += 1
        else:
            fields["compile_cache_misses"] += 1
        if phase.lower_hit is not None:
            if phase.lower_hit:
                fields["lower_cache_hits"] += 1
            else:
                fields["lower_cache_misses"] += 1
    return fields


@dataclass
class ProgressTally:
    """Campaign totals folded from bus events.

    Every field only ever increases (or is set once, for ``total_units``),
    which is what makes snapshot progress monotone.  The same fold backs
    the in-run :class:`SnapshotReporter` and the offline
    ``repro obs tail --summarize``.
    """

    total_units: int = 0
    units_done: int = 0
    replayed: int = 0
    passed: int = 0
    failed: int = 0
    harness_errors: int = 0
    static_errors: int = 0
    retries: int = 0
    worker_lost: int = 0
    quarantined: int = 0
    recovered: int = 0
    iterations_run: int = 0
    compile_cache_hits: int = 0
    compile_cache_misses: int = 0
    lower_cache_hits: int = 0
    lower_cache_misses: int = 0
    compile_s: float = 0.0
    execute_s: float = 0.0
    #: failure-kind value -> count (result-level dominant kinds)
    failure_kinds: Dict[str, int] = field(default_factory=dict)
    #: phase mode -> {"pass": n, "fail": n, "harness_error": n, "static_error": n}
    phase_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: backend -> [count, sum, min, max] of unit durations
    backend_timing: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def progress(self) -> Optional[float]:
        if self.total_units <= 0:
            return None
        return min(1.0, self.units_done / self.total_units)

    @property
    def compile_cache_hit_rate(self) -> float:
        total = self.compile_cache_hits + self.compile_cache_misses
        return self.compile_cache_hits / total if total else 0.0

    @property
    def lower_cache_hit_rate(self) -> float:
        total = self.lower_cache_hits + self.lower_cache_misses
        return self.lower_cache_hits / total if total else 0.0

    def fold(self, record: dict) -> None:
        """Fold one bus record; snapshots and unknown kinds are ignored."""
        if record.get("type") != "event":
            return
        kind = record.get("kind")
        fields = record.get("fields") or {}
        if kind == "campaign.start":
            self.total_units = int(fields.get("total_units", 0))
        elif kind == "campaign.extend":
            self.total_units += int(fields.get("units", 0))
        elif kind == "unit.finished":
            self._fold_unit(fields)
        elif kind == "engine.retry":
            self.retries += 1
        elif kind == "engine.worker_lost":
            self.worker_lost += 1
        elif kind == "titan.quarantined":
            self.quarantined += 1
        elif kind == "titan.recovered":
            self.recovered += 1

    def _fold_unit(self, fields: dict) -> None:
        self.units_done += 1
        if fields.get("replayed"):
            self.replayed += 1
        if fields.get("passed"):
            self.passed += 1
        else:
            self.failed += 1
            kind = fields.get("failure_kind")
            if kind is not None:
                self.failure_kinds[kind] = self.failure_kinds.get(kind, 0) + 1
        self.iterations_run += int(fields.get("iterations", 0))
        self.compile_cache_hits += int(fields.get("compile_cache_hits", 0))
        self.compile_cache_misses += int(fields.get("compile_cache_misses", 0))
        self.lower_cache_hits += int(fields.get("lower_cache_hits", 0))
        self.lower_cache_misses += int(fields.get("lower_cache_misses", 0))
        self.compile_s += float(fields.get("compile_s", 0.0))
        self.execute_s += float(fields.get("run_s", 0.0))
        for mode, phase in (fields.get("phases") or {}).items():
            counts = self.phase_counts.setdefault(
                mode, {"pass": 0, "fail": 0,
                       "harness_error": 0, "static_error": 0}
            )
            if phase.get("harness_error"):
                counts["harness_error"] += 1
                self.harness_errors += 1
            elif phase.get("static_error"):
                counts["static_error"] += 1
                self.static_errors += 1
            elif phase.get("ok"):
                counts["pass"] += 1
            else:
                counts["fail"] += 1
        backend = str(fields.get("backend", "?"))
        elapsed = float(fields.get("elapsed_s", 0.0))
        timing = self.backend_timing.get(backend)
        if timing is None:
            self.backend_timing[backend] = [1, elapsed, elapsed, elapsed]
        else:
            timing[0] += 1
            timing[1] += elapsed
            timing[2] = min(timing[2], elapsed)
            timing[3] = max(timing[3], elapsed)


# ---------------------------------------------------------------------------
# snapshots
# ---------------------------------------------------------------------------


class SnapshotReporter:
    """Folds the tally into periodic campaign snapshots.

    ``every_units`` / ``min_interval_s`` bound the cadence: a snapshot is
    due once at least ``every_units`` fresh folds *and* at least
    ``min_interval_s`` seconds have accumulated since the last one.  The
    clock is injectable so tests are deterministic.
    """

    def __init__(self, tally: Optional[ProgressTally] = None,
                 every_units: int = 1, min_interval_s: float = 0.0,
                 clock: Callable[[], float] = time.monotonic):
        self.tally = tally if tally is not None else ProgressTally()
        self.every_units = max(1, every_units)
        self.min_interval_s = max(0.0, min_interval_s)
        self.clock = clock
        self._t0: Optional[float] = None
        self._last_units = 0
        self._last_t: Optional[float] = None

    def begin(self) -> None:
        if self._t0 is None:
            self._t0 = self.clock()
            self._last_t = self._t0

    @property
    def wall_s(self) -> float:
        if self._t0 is None:
            return 0.0
        return max(0.0, self.clock() - self._t0)

    def due(self) -> bool:
        done = self.tally.units_done
        if done - self._last_units < self.every_units:
            return False
        if self._last_t is not None and self.min_interval_s > 0.0:
            if self.clock() - self._last_t < self.min_interval_s:
                return False
        return True

    def snapshot(self, final: bool = False,
                 metrics: Optional[dict] = None,
                 dropped: int = 0) -> dict:
        """Build one snapshot record from the current tally.

        ``metrics`` is an optional authoritative
        :class:`~repro.harness.engine.RunMetrics`-derived dict folded into
        the *final* snapshot, so offline readers get the exact report
        numbers (float summation order differs across policies; the
        integer tallies are exact either way).
        """
        t = self.tally
        self._last_units = t.units_done
        self._last_t = self.clock()
        wall = self.wall_s
        fresh = t.units_done - t.replayed
        units_per_sec = fresh / wall if wall > 0.0 else 0.0
        eta_s: Optional[float] = None
        if t.total_units > 0 and units_per_sec > 0.0:
            remaining = max(0, t.total_units - t.units_done)
            eta_s = remaining / units_per_sec
        record = {
            "type": "snapshot",
            "final": final,
            "progress": t.progress,
            "total_units": t.total_units,
            "units_done": t.units_done,
            "replayed": t.replayed,
            "wall_s": round(wall, 6),
            "units_per_sec": round(units_per_sec, 6),
            "eta_s": round(eta_s, 6) if eta_s is not None else None,
            "passed": t.passed,
            "failed": t.failed,
            "failure_kinds": dict(sorted(t.failure_kinds.items())),
            "phase_counts": {m: dict(c)
                             for m, c in sorted(t.phase_counts.items())},
            "harness_errors": t.harness_errors,
            "static_errors": t.static_errors,
            "retries": t.retries,
            "worker_lost": t.worker_lost,
            "quarantined": t.quarantined,
            "recovered": t.recovered,
            "iterations_run": t.iterations_run,
            "compile_cache": {
                "hits": t.compile_cache_hits,
                "misses": t.compile_cache_misses,
                "hit_rate": round(t.compile_cache_hit_rate, 6),
            },
            "lower_cache": {
                "hits": t.lower_cache_hits,
                "misses": t.lower_cache_misses,
                "hit_rate": round(t.lower_cache_hit_rate, 6),
            },
            "backend_timing": {
                backend: {"count": int(c), "sum": round(s, 6),
                          "min": round(lo, 6), "max": round(hi, 6)}
                for backend, (c, s, lo, hi)
                in sorted(t.backend_timing.items())
            },
            "dropped_events": dropped,
        }
        if metrics is not None:
            record["run_metrics"] = metrics
        return record


def run_metrics_fields(report: "SuiteRunReport") -> Optional[dict]:
    """The authoritative RunMetrics block of a final snapshot."""
    m = report.metrics
    if m is None:
        return None
    return {
        "policy": m.policy,
        "workers": m.workers,
        "wall_s": m.wall_s,
        "compile_s": m.compile_s,
        "execute_s": m.execute_s,
        "templates": m.templates,
        "iterations_run": m.iterations_run,
        "cache_hits": m.cache_hits,
        "cache_misses": m.cache_misses,
        "failure_kinds": dict(sorted(m.failure_kinds.items())),
    }


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------


class NDJSONStreamSink:
    """Append-only NDJSON stream file (``repro.obs.live/v1``).

    Every record is one ``json.dumps`` line, written and flushed
    immediately — an observer tailing the file sees completed lines plus at
    most one torn final line if the writer is killed mid-write, which the
    tolerant reader (:func:`parse_live`) skips and counts.  On close, the
    final snapshot is appended to the stream *and* written atomically to
    ``<path>.snapshot.json`` so dashboards polling for the end state never
    see a partial file.
    """

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")

    def emit(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self, final: Optional[dict] = None) -> None:
        if self._fh.closed:
            return
        try:
            os.fsync(self._fh.fileno())
        except OSError:  # pragma: no cover - platform-dependent
            pass
        self._fh.close()
        if final is not None:
            atomic_write_text(
                self.path + ".snapshot.json",
                json.dumps(final, indent=2, sort_keys=True) + "\n",
            )


def render_status_line(snapshot: dict) -> str:
    """One-line progress rendering for interactive terminals."""
    done = snapshot.get("units_done", 0)
    total = snapshot.get("total_units", 0)
    progress = snapshot.get("progress")
    if total > 0 and progress is not None:
        head = f"[{done}/{total} {progress:6.1%}]"
    else:
        head = f"[{done} units]"
    parts = [
        head,
        f"pass {snapshot.get('passed', 0)}",
        f"fail {snapshot.get('failed', 0)}",
    ]
    harness_errors = snapshot.get("harness_errors", 0)
    if harness_errors:
        parts.append(f"herr {harness_errors}")
    retries = snapshot.get("retries", 0)
    if retries:
        parts.append(f"retry {retries}")
    replayed = snapshot.get("replayed", 0)
    if replayed:
        parts.append(f"replayed {replayed}")
    ups = snapshot.get("units_per_sec") or 0.0
    parts.append(f"{ups:.1f} u/s")
    eta = snapshot.get("eta_s")
    if eta is not None:
        parts.append(f"eta {eta:.0f}s")
    cache = snapshot.get("compile_cache") or {}
    if (cache.get("hits", 0) + cache.get("misses", 0)) > 0:
        parts.append(f"cache {cache.get('hit_rate', 0.0):.0%}")
    return " ".join(parts)


class StatusLineSink:
    """A ``\\r``-rewritten status line on a terminal stream.

    Only snapshot records repaint the line (per-unit events would flood a
    TTY); the close repaints the final snapshot and terminates the line.
    """

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stderr
        self._last_width = 0

    def emit(self, record: dict) -> None:
        if record.get("type") != "snapshot":
            return
        line = render_status_line(record)
        pad = " " * max(0, self._last_width - len(line))
        self._last_width = len(line)
        self.stream.write("\r" + line + pad)
        self.stream.flush()

    def close(self, final: Optional[dict] = None) -> None:
        if final is not None:
            self.emit(final)
        if self._last_width:
            self.stream.write("\n")
            self.stream.flush()


# -- Prometheus textfile exporter -------------------------------------------

#: metric family -> (type, help); families with labels list them per sample
_PROM_PREFIX = "repro_campaign_"


def _prom_escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _prom_number(value) -> str:
    if value is None:
        return "NaN"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(snapshot: dict) -> str:
    """Render one snapshot in the Prometheus text exposition format.

    One HELP and one TYPE line per family, samples grouped under them, no
    duplicate series — the shape :func:`lint_prometheus` (and a node
    exporter's textfile collector) expects.
    """
    out: List[str] = []

    def family(name: str, mtype: str, help_text: str,
               samples: Sequence) -> None:
        out.append(f"# HELP {_PROM_PREFIX}{name} {help_text}")
        out.append(f"# TYPE {_PROM_PREFIX}{name} {mtype}")
        for sample in samples:
            suffix, labels, value = sample
            label_s = ""
            if labels:
                inner = ",".join(
                    f'{k}="{_prom_escape(str(v))}"'
                    for k, v in sorted(labels.items())
                )
                label_s = "{" + inner + "}"
            out.append(
                f"{_PROM_PREFIX}{name}{suffix}{label_s} {_prom_number(value)}"
            )

    progress = snapshot.get("progress")
    family("progress_ratio", "gauge",
           "Fraction of campaign units completed (replayed included).",
           [("", None, progress if progress is not None else 0.0)])
    family("units_total", "gauge", "Total units in the campaign.",
           [("", None, snapshot.get("total_units", 0))])
    family("units_done_total", "counter",
           "Completed units, fresh and replayed.",
           [("", None, snapshot.get("units_done", 0))])
    family("units_replayed_total", "counter",
           "Units replayed from the campaign journal.",
           [("", None, snapshot.get("replayed", 0))])
    family("units_passed_total", "counter", "Units that passed.",
           [("", None, snapshot.get("passed", 0))])
    family("units_failed_total", "counter", "Units that failed.",
           [("", None, snapshot.get("failed", 0))])
    family("failures_total", "counter",
           "Failed units by dominant failure kind.",
           [("", {"kind": kind}, count)
            for kind, count in sorted(
                (snapshot.get("failure_kinds") or {}).items())])
    family("phase_results_total", "counter",
           "Phase outcomes by mode and verdict.",
           [("", {"mode": mode, "verdict": verdict}, count)
            for mode, counts in sorted(
                (snapshot.get("phase_counts") or {}).items())
            for verdict, count in sorted(counts.items())])
    family("retries_total", "counter",
           "Work-unit retries after harness faults.",
           [("", None, snapshot.get("retries", 0))])
    family("worker_lost_total", "counter",
           "Process-pool worker deaths survived.",
           [("", None, snapshot.get("worker_lost", 0))])
    family("quarantined_nodes", "gauge",
           "Titan nodes quarantined minus recovered.",
           [("", None, (snapshot.get("quarantined", 0)
                        - snapshot.get("recovered", 0)))])
    family("iterations_total", "counter",
           "Program executions across all phases.",
           [("", None, snapshot.get("iterations_run", 0))])
    cache_samples = []
    for cache_name in ("compile", "lower"):
        cache = snapshot.get(f"{cache_name}_cache") or {}
        cache_samples.append(
            ("", {"cache": cache_name, "outcome": "hit"},
             cache.get("hits", 0)))
        cache_samples.append(
            ("", {"cache": cache_name, "outcome": "miss"},
             cache.get("misses", 0)))
    family("cache_lookups_total", "counter",
           "Compile/lowering cache lookups by outcome.", cache_samples)
    timing_samples = []
    for backend, timing in sorted(
            (snapshot.get("backend_timing") or {}).items()):
        timing_samples.append(
            ("_count", {"backend": backend}, timing.get("count", 0)))
        timing_samples.append(
            ("_sum", {"backend": backend}, timing.get("sum", 0.0)))
    family("unit_seconds", "summary",
           "Unit wall-clock seconds by interpreter backend.", timing_samples)
    family("units_per_second", "gauge",
           "Fresh (non-replayed) unit completion rate.",
           [("", None, snapshot.get("units_per_sec", 0.0))])
    family("eta_seconds", "gauge",
           "Estimated seconds to campaign completion (NaN when unknown).",
           [("", None, snapshot.get("eta_s"))])
    family("wall_seconds", "gauge", "Campaign wall-clock seconds so far.",
           [("", None, snapshot.get("wall_s", 0.0))])
    family("events_dropped_total", "counter",
           "Bus records evicted from the bounded in-process buffer.",
           [("", None, snapshot.get("dropped_events", 0))])
    return "\n".join(out) + "\n"


_PROM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[^ ]+)(?: [0-9]+)?$"
)


def lint_prometheus(text: str) -> List[str]:
    """Validate Prometheus text exposition; returns problems (empty = ok).

    Checks the properties a textfile collector cares about: every sample
    belongs to a family with exactly one ``# HELP`` and one ``# TYPE``
    (declared before the first sample), values parse as numbers, and no
    series — (name, labelset) pair — appears twice.
    """
    problems: List[str] = []
    helped: Dict[str, int] = {}
    typed: Dict[str, str] = {}
    seen_series: set = set()
    sampled: set = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3].strip():
                problems.append(f"line {lineno}: HELP without text")
                continue
            name = parts[2]
            helped[name] = helped.get(name, 0) + 1
            if helped[name] > 1:
                problems.append(f"line {lineno}: duplicate HELP for {name}")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                problems.append(f"line {lineno}: malformed TYPE line")
                continue
            name = parts[2]
            if name in typed:
                problems.append(f"line {lineno}: duplicate TYPE for {name}")
            if name in sampled:
                problems.append(
                    f"line {lineno}: TYPE for {name} after its samples")
            typed[name] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free comment
        match = _PROM_SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        family = name
        for suffix in ("_count", "_sum", "_bucket"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and typed.get(base) in ("summary", "histogram"):
                family = base
                break
        if family not in typed:
            problems.append(
                f"line {lineno}: sample {name} has no TYPE declaration")
        if family not in helped:
            problems.append(
                f"line {lineno}: sample {name} has no HELP declaration")
        sampled.add(family)
        value = match.group("value")
        if value not in ("NaN", "+Inf", "-Inf"):
            try:
                float(value)
            except ValueError:
                problems.append(
                    f"line {lineno}: sample value {value!r} is not a number")
        series = (name, match.group("labels") or "")
        if series in seen_series:
            problems.append(
                f"line {lineno}: duplicate series {name}"
                f"{match.group('labels') or ''}")
        seen_series.add(series)
    return problems


class PrometheusSink:
    """Textfile exporter: the ``*.prom`` file is atomically rewritten on
    every snapshot, so a scraper (or node exporter textfile collector)
    always reads one complete, self-consistent exposition."""

    def __init__(self, path: str):
        self.path = path

    def emit(self, record: dict) -> None:
        if record.get("type") != "snapshot":
            return
        atomic_write_text(self.path, render_prometheus(record))

    def close(self, final: Optional[dict] = None) -> None:
        if final is not None:
            self.emit(final)


# ---------------------------------------------------------------------------
# the campaign-scoped pipeline
# ---------------------------------------------------------------------------


class LiveTelemetry:
    """Bus + tally + reporter + sinks for one campaign.

    The engines' per-unit completion callbacks (coordinating thread) are
    the publishing hook for unit events; the retry layer publishes from
    worker threads, serialized by the bus lock.  Closing is idempotent and
    always finalizes the sinks with a final snapshot, even when the
    campaign is interrupted mid-run (graceful drain, injected faults).
    """

    def __init__(self, sinks: Sequence[object],
                 every_units: int = 1, min_interval_s: float = 0.0,
                 clock: Callable[[], float] = time.monotonic,
                 capacity: int = DEFAULT_CAPACITY):
        self.bus = TelemetryBus(capacity=capacity)
        self.sinks = list(sinks)
        for sink in self.sinks:
            self.bus.subscribe(sink)
        self.tally = ProgressTally()
        self.reporter = SnapshotReporter(
            self.tally, every_units=every_units,
            min_interval_s=min_interval_s, clock=clock,
        )
        self._lock = threading.RLock()
        self._closed = False
        self._began = False

    # ------------------------------------------------------------- lifecycle

    @classmethod
    def from_config(cls, config: "HarnessConfig",
                    status_stream=None) -> Optional["LiveTelemetry"]:
        """Build the pipeline a config's telemetry knobs ask for.

        Returns None when no knob is set — the runner then skips every
        publish, keeping disabled telemetry free.
        """
        sinks: List[object] = []
        if getattr(config, "live_stream", None):
            sinks.append(NDJSONStreamSink(config.live_stream))
        if getattr(config, "status", False):
            sinks.append(StatusLineSink(stream=status_stream))
        if getattr(config, "prom", None):
            sinks.append(PrometheusSink(config.prom))
        if not sinks:
            return None
        # time-throttled snapshots: the NDJSON stream still carries every
        # unit event (flushed per line), but snapshot folding — and the
        # atomic+fsync .prom rewrite — happens at most ~5x/sec, keeping
        # live telemetry inside its <= 1.15x overhead budget.  The final
        # snapshot is always emitted on end().
        return cls(sinks, min_interval_s=0.2)

    @property
    def began(self) -> bool:
        return self._began

    @property
    def closed(self) -> bool:
        return self._closed

    def begin(self, total_units: int = 0, replayed: int = 0, **meta) -> None:
        """Emit the stream header and the campaign.start event."""
        with self._lock:
            if self._began:
                return
            self._began = True
            self.reporter.begin()
            header = {"type": "meta", "format": LIVE_FORMAT}
            header.update(meta)
            self.bus.publish_record(header)
            self.bus.publish("campaign.start", total_units=total_units,
                             replayed=replayed, **meta)
            self.tally.fold({"type": "event", "kind": "campaign.start",
                             "fields": {"total_units": total_units}})

    def extend_total(self, units: int) -> None:
        """Grow the campaign's unit total (Titan rechecks/probes)."""
        self.event("campaign.extend", units=units)

    # ------------------------------------------------------------ publishing

    def event(self, kind: str, **fields) -> None:
        """Publish a typed event and fold it into the tally."""
        with self._lock:
            if self._closed:
                return
            record = self.bus.publish(kind, **fields)
            self.tally.fold(record)

    def unit(self, index: int, unit: str, result: "TestResult", *,
             backend: str = "tree", replayed: bool = False) -> None:
        """Publish one finished unit and emit a snapshot when due."""
        with self._lock:
            if self._closed:
                return
            fields = unit_fields(index, unit, result, backend=backend,
                                 replayed=replayed)
            record = self.bus.publish("unit.finished", **fields)
            self.tally.fold(record)
            if self.reporter.due():
                self.emit_snapshot()

    def check(self, unit: str, check, *, replayed: bool = False) -> None:
        """Publish one finished Titan node/stack check as a unit."""
        report = check.report
        with self._lock:
            if self._closed:
                return
            record = self.bus.publish(
                "unit.finished",
                unit=unit, index=self.tally.units_done,
                replayed=replayed, backend=str(report.config.backend),
                passed=not check.flagged, failure_kind=None,
                elapsed_s=report.elapsed_s,
                iterations=sum(
                    len(p.iterations) for r in report.results
                    for p in (r.functional, r.cross)
                    if p is not None and p.harness_error is None
                    and p.static_error is None
                ),
                node=check.node_id, stack=check.stack, healthy=check.healthy,
                pass_rate=check.pass_rate,
                harness_error_units=check.harness_errors,
            )
            self.tally.fold(record)
            if self.reporter.due():
                self.emit_snapshot()

    def emit_snapshot(self, final: bool = False,
                      metrics: Optional[dict] = None) -> dict:
        with self._lock:
            snapshot = self.reporter.snapshot(
                final=final, metrics=metrics, dropped=self.bus.dropped,
            )
            self.bus.publish_record(snapshot)
            return snapshot

    # --------------------------------------------------------------- closing

    def end(self, report: Optional["SuiteRunReport"] = None) -> None:
        """Emit the final snapshot and close every sink (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            metrics = run_metrics_fields(report) if report is not None else None
            snapshot = self.reporter.snapshot(
                final=True, metrics=metrics, dropped=self.bus.dropped,
            )
            # close sinks with the *stamped* record, so the atomic
            # .snapshot.json sidecar matches the stream's last line exactly
            snapshot = self.bus.publish_record(snapshot)
            for sink in self.sinks:
                close = getattr(sink, "close", None)
                if close is not None:
                    close(snapshot)

    def close(self) -> None:
        """Alias for :meth:`end` without a report (interrupted campaigns)."""
        self.end(None)


# ---------------------------------------------------------------------------
# reading a stream back (repro obs tail)
# ---------------------------------------------------------------------------


@dataclass
class LiveStream:
    """A parsed NDJSON telemetry stream."""

    meta: Dict[str, object] = field(default_factory=dict)
    records: List[dict] = field(default_factory=list)
    #: lines skipped in tolerant mode (torn tail of a killed writer)
    malformed: int = 0

    @property
    def final_snapshot(self) -> Optional[dict]:
        for record in reversed(self.records):
            if record.get("type") == "snapshot" and record.get("final"):
                return record
        return None

    def snapshots(self) -> List[dict]:
        return [r for r in self.records if r.get("type") == "snapshot"]

    def events(self, kind: Optional[str] = None) -> List[dict]:
        return [r for r in self.records
                if r.get("type") == "event"
                and (kind is None or r.get("kind") == kind)]

    def tally(self) -> ProgressTally:
        """Re-fold the stream's events into campaign totals."""
        tally = ProgressTally()
        for record in self.records:
            tally.fold(record)
        return tally


def parse_live(text: str, strict: bool = True) -> LiveStream:
    """Parse NDJSON stream text (mirrors :func:`repro.obs.sink.parse_trace`).

    In tolerant mode (``strict=False``, what ``repro obs tail`` uses) a
    torn or garbage line is counted in :attr:`LiveStream.malformed` and
    skipped — a stream whose writer was SIGKILLed mid-record still reads.
    A wrong ``format`` tag raises either way: different format, not damage.
    """
    stream = LiveStream()
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as err:
            if strict:
                raise ValueError(
                    f"live stream line {lineno}: invalid JSON ({err})"
                ) from err
            stream.malformed += 1
            continue
        if not isinstance(record, dict) or "type" not in record:
            if strict:
                raise ValueError(
                    f"live stream line {lineno}: not a telemetry record")
            stream.malformed += 1
            continue
        if record.get("type") == "meta":
            fmt = record.get("format")
            if fmt != LIVE_FORMAT:
                raise ValueError(
                    f"live stream line {lineno}: unsupported format {fmt!r} "
                    f"(expected {LIVE_FORMAT})"
                )
            stream.meta = {k: v for k, v in record.items() if k != "type"}
        else:
            stream.records.append(record)
    return stream


def read_live(path: str, strict: bool = True) -> LiveStream:
    """Read and parse an NDJSON telemetry stream file."""
    with open(path, encoding="utf-8") as handle:
        return parse_live(handle.read(), strict=strict)


def render_tally_text(tally: ProgressTally,
                      final: Optional[dict] = None) -> str:
    """Plain-text totals for ``repro obs tail --summarize``."""
    lines: List[str] = []
    lines.append("live stream summary")
    total = f"/{tally.total_units}" if tally.total_units else ""
    lines.append(f"  units done         : {tally.units_done}{total}"
                 + (f" ({tally.replayed} replayed)" if tally.replayed else ""))
    lines.append(f"  passed / failed    : {tally.passed} / {tally.failed}")
    if tally.failure_kinds:
        lines.append("  failure kinds      : " + ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(tally.failure_kinds.items())
        ))
    lines.append(f"  program runs       : {tally.iterations_run}")
    lines.append(
        f"  compile cache      : {tally.compile_cache_hits} hits / "
        f"{tally.compile_cache_misses} misses "
        f"({tally.compile_cache_hit_rate:.1%} hit rate)"
    )
    if tally.lower_cache_hits or tally.lower_cache_misses:
        lines.append(
            f"  lowering cache     : {tally.lower_cache_hits} hits / "
            f"{tally.lower_cache_misses} misses "
            f"({tally.lower_cache_hit_rate:.1%} hit rate)"
        )
    if tally.retries or tally.worker_lost:
        lines.append(f"  retries / lost     : {tally.retries} / "
                     f"{tally.worker_lost}")
    if tally.quarantined or tally.recovered:
        lines.append(f"  quarantined        : {tally.quarantined} "
                     f"({tally.recovered} recovered)")
    for mode, counts in sorted(tally.phase_counts.items()):
        lines.append(
            f"  {mode:18s} : " + ", ".join(
                f"{verdict}={count}"
                for verdict, count in sorted(counts.items()) if count
            )
        )
    for backend, (count, total_s, lo, hi) in sorted(
            tally.backend_timing.items()):
        mean = total_s / count if count else 0.0
        lines.append(
            f"  backend {backend:10s} : {count} units, mean {mean:.4f}s "
            f"(min {lo:.4f}s, max {hi:.4f}s)"
        )
    if final is not None:
        lines.append(f"  final snapshot     : wall {final.get('wall_s')}s, "
                     f"{final.get('units_per_sec')} units/s")
        metrics = final.get("run_metrics")
        if metrics:
            lines.append(
                f"  run metrics        : policy {metrics.get('policy')}, "
                f"wall {metrics.get('wall_s'):.3f}s, "
                f"compile {metrics.get('compile_s'):.3f}s, "
                f"execute {metrics.get('execute_s'):.3f}s"
            )
    return "\n".join(lines) + "\n"


def render_record_line(record: dict) -> str:
    """One human-readable line per stream record (``repro obs tail``)."""
    seq = record.get("seq", "?")
    if record.get("type") == "snapshot":
        tag = "FINAL" if record.get("final") else "snap"
        return f"#{seq:<6} {tag:18s} {render_status_line(record)}"
    kind = str(record.get("kind", "?"))
    fields = record.get("fields") or {}
    if kind == "unit.finished":
        verdict = "pass" if fields.get("passed") else (
            fields.get("failure_kind") or "fail")
        extra = " replayed" if fields.get("replayed") else ""
        return (f"#{seq:<6} {kind:18s} {fields.get('unit', '?')} "
                f"{verdict}{extra}")
    detail = " ".join(f"{k}={fields[k]}" for k in sorted(fields))
    return f"#{seq:<6} {kind:18s} {detail}"
