"""JSONL trace sink and reader.

One line per record, ``type`` first: a ``meta`` header, then spans (sorted
by ID), events (by sequence number) and metrics (by name).  Sorting makes
the stream layout deterministic for a given set of records, so two runs of
the same configuration differ only in measured values — IDs, names, parents
and counts line up row for row (the deterministic-ID property of
:class:`repro.obs.trace.Tracer`).

The reader is the other half: ``read_trace``/``parse_trace`` reconstruct a
:class:`TraceData` that :mod:`repro.obs.summary` and
:mod:`repro.obs.dashboard` consume.  Floats survive the round-trip exactly
(``json`` emits ``repr``-style shortest-form floats), which is what lets
``repro trace summarize`` reconcile with ``RunMetrics`` without slack.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ioutil import atomic_write_text
from repro.obs.trace import Event, Span, TRACE_FORMAT, Tracer


def trace_to_jsonl(tracer: Tracer, meta: Optional[dict] = None) -> str:
    """Serialize a tracer's records to JSONL text."""
    header = {"type": "meta", "format": TRACE_FORMAT}
    if meta:
        header.update(meta)
    lines = [json.dumps(header, sort_keys=True)]
    snapshot = tracer.metrics.snapshot()
    for span in sorted(tracer.spans, key=lambda s: s.span_id):
        record = span.to_dict()
        record["type"] = "span"
        lines.append(json.dumps(record, sort_keys=True))
    for event in sorted(tracer.events, key=lambda e: e.seq):
        record = event.to_dict()
        record["type"] = "event"
        lines.append(json.dumps(record, sort_keys=True))
    for name in sorted(snapshot["counters"]):
        lines.append(json.dumps(
            {"type": "counter", "name": name,
             "value": snapshot["counters"][name]}, sort_keys=True))
    for name in sorted(snapshot["gauges"]):
        lines.append(json.dumps(
            {"type": "gauge", "name": name,
             "value": snapshot["gauges"][name]}, sort_keys=True))
    for name in sorted(snapshot["histograms"]):
        count, total, lo, hi = snapshot["histograms"][name]
        lines.append(json.dumps(
            {"type": "histogram", "name": name, "count": count,
             "sum": total, "min": lo, "max": hi}, sort_keys=True))
    return "\n".join(lines) + "\n"


def write_trace(path: str, tracer: Tracer, meta: Optional[dict] = None) -> None:
    """Write the tracer's records to ``path`` as JSONL (atomically: a
    crash mid-write never leaves a half-trace under the target name)."""
    atomic_write_text(path, trace_to_jsonl(tracer, meta))


# ---------------------------------------------------------------------------
# reading
# ---------------------------------------------------------------------------


@dataclass
class TraceData:
    """A parsed trace file."""

    meta: Dict[str, object] = field(default_factory=dict)
    spans: List[Span] = field(default_factory=list)
    events: List[Event] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    #: name -> (count, sum, min, max)
    histograms: Dict[str, Tuple[int, float, Optional[float], Optional[float]]] = \
        field(default_factory=dict)
    #: lines skipped in tolerant mode (torn tail, truncated records)
    malformed: int = 0

    def spans_named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def span_by_id(self, span_id: str) -> Optional[Span]:
        for span in self.spans:
            if span.span_id == span_id:
                return span
        return None


def parse_trace(text: str, strict: bool = True) -> TraceData:
    """Parse JSONL trace text into a :class:`TraceData`.

    In strict mode (the default, for library callers that want loud
    failures) any bad line raises :class:`ValueError`.  With
    ``strict=False`` — what ``repro trace`` uses — malformed lines are
    *counted* in :attr:`TraceData.malformed` and skipped, so a trace with
    a torn tail (the process was SIGKILLed mid-write) still summarizes.
    A wrong ``format`` tag in the meta header raises either way: that is
    a different file format, not damage.
    """
    trace = TraceData()
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as err:
            if strict:
                raise ValueError(
                    f"trace line {lineno}: invalid JSON ({err})") from err
            trace.malformed += 1
            continue
        kind = record.get("type") if isinstance(record, dict) else None
        try:
            if kind == "meta":
                fmt = record.get("format")
                if fmt != TRACE_FORMAT:
                    raise ValueError(
                        f"trace line {lineno}: unsupported format {fmt!r} "
                        f"(expected {TRACE_FORMAT})"
                    )
                trace.meta = {k: v for k, v in record.items() if k != "type"}
            elif kind == "span":
                trace.spans.append(Span.from_dict(record))
            elif kind == "event":
                trace.events.append(Event.from_dict(record))
            elif kind == "counter":
                trace.counters[record["name"]] = record["value"]
            elif kind == "gauge":
                trace.gauges[record["name"]] = record["value"]
            elif kind == "histogram":
                trace.histograms[record["name"]] = (
                    record["count"], record["sum"],
                    record.get("min"), record.get("max"),
                )
            else:
                raise ValueError(
                    f"trace line {lineno}: unknown record type {kind!r}")
        except ValueError as err:
            # a wrong format tag is a hard error even in tolerant mode
            if strict or "unsupported format" in str(err):
                raise
            trace.malformed += 1
        except (KeyError, TypeError) as err:
            # valid JSON missing required fields: a truncated record
            if strict:
                raise ValueError(
                    f"trace line {lineno}: truncated record ({err})") from err
            trace.malformed += 1
    trace.events.sort(key=lambda e: e.seq)
    return trace


def read_trace(path: str, strict: bool = True) -> TraceData:
    """Read and parse a JSONL trace file (see :func:`parse_trace`)."""
    with open(path) as handle:
        return parse_trace(handle.read(), strict=strict)
