"""Observability: structured tracing, event log and metrics (``repro.obs``).

The harness is as much bookkeeping as testing — per-run reports, bug
analyses and Titan's longitudinal tracking all depend on knowing what
happened *inside* a run.  This package supplies that layer:

* :mod:`~repro.obs.trace` — span-based tracer with deterministic IDs,
  worker marshalling (process pools) and a zero-overhead null mode;
* :mod:`~repro.obs.metrics` — counter/gauge/histogram primitives;
* :mod:`~repro.obs.sink` — JSONL serialization and the trace reader;
* :mod:`~repro.obs.summary` — ``repro trace summarize`` aggregation;
* :mod:`~repro.obs.dashboard` — standalone HTML trace/metrics and
  perf-trajectory dashboards;
* :mod:`~repro.obs.live` — live campaign telemetry: bounded in-process
  event bus, progress snapshots, NDJSON stream / TTY status / Prometheus
  textfile sinks, and the ``repro obs tail`` reader.

Tracing is opt-in: everything runs against :data:`NULL_TRACER` unless a
real :class:`Tracer` is injected (CLI ``--trace``/``--profile``).  Live
telemetry is likewise opt-in (CLI ``--live-stream``/``--status``/``--prom``)
and observational only: reports are byte-identical with it on or off.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
)
from repro.obs.trace import (
    Event,
    NULL_TRACER,
    NullTracer,
    Span,
    TRACE_FORMAT,
    Tracer,
)
from repro.obs.sink import (
    TraceData,
    parse_trace,
    read_trace,
    trace_to_jsonl,
    write_trace,
)
from repro.obs.summary import TraceSummary, render_summary_text, summarize_trace
from repro.obs.dashboard import render_perf_html, render_trace_html
from repro.obs.live import (
    LIVE_FORMAT,
    LiveStream,
    LiveTelemetry,
    NDJSONStreamSink,
    PrometheusSink,
    ProgressTally,
    SnapshotReporter,
    StatusLineSink,
    TelemetryBus,
    lint_prometheus,
    parse_live,
    read_live,
    render_prometheus,
    render_status_line,
    render_tally_text,
)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NULL_METRICS",
    "Event", "NULL_TRACER", "NullTracer", "Span", "TRACE_FORMAT", "Tracer",
    "TraceData", "parse_trace", "read_trace", "trace_to_jsonl", "write_trace",
    "TraceSummary", "render_summary_text", "summarize_trace",
    "render_trace_html", "render_perf_html",
    "LIVE_FORMAT", "LiveStream", "LiveTelemetry", "NDJSONStreamSink",
    "PrometheusSink", "ProgressTally", "SnapshotReporter", "StatusLineSink",
    "TelemetryBus", "lint_prometheus", "parse_live", "read_live",
    "render_prometheus", "render_status_line", "render_tally_text",
]
