"""mini-Fortran lexer (free form).

Notable behaviours:

* newlines are significant (statement separators) and produced as
  :data:`TokenKind.NEWLINE` tokens; ``;`` is treated the same way;
* ``&`` at end of line joins continuation lines (an optional leading ``&``
  on the continuation is consumed);
* ``!`` starts a comment, except the OpenACC sentinel ``!$acc`` which
  becomes a single :data:`TokenKind.PRAGMA` token (directive continuations
  ``!$acc ... &`` / ``!$acc& ...`` are glued);
* dot operators (``.and.``, ``.eq.``, ...) are lexed as OP tokens;
  ``.true.`` / ``.false.`` become INT literals 1/0;
* ``1.0d0`` style kind exponents produce double-precision FLOAT tokens.
"""

from __future__ import annotations

import re
from typing import List

from repro.frontend.errors import LexError
from repro.frontend.tokens import Token, TokenKind
from repro.ir.astnodes import SourceLocation

FORTRAN_KEYWORDS = frozenset(
    """
    program function subroutine end call do while if then else elseif
    endif enddo exit cycle return integer real double precision logical
    dimension implicit none result parameter intent print stop continue
    """.split()
)

_DOT_OPS = [
    ".and.", ".or.", ".not.", ".eqv.", ".neqv.",
    ".eq.", ".ne.", ".lt.", ".le.", ".gt.", ".ge.",
]
_DOT_LITERALS = {".true.": 1, ".false.": 0}

_OPERATORS = [
    "**", "==", "/=", "<=", ">=", "//", "::", "=>",
    "+", "-", "*", "/", "<", ">", "=", "(", ")", ",", ":", "%",
]

_IDENT_RE = re.compile(r"[A-Za-z][A-Za-z0-9_]*")

# number: mantissa with optional d/e exponent; 'd' exponent => double
_NUMBER_RE = re.compile(
    r"(?P<mant>(?:\d+\.\d*|\.\d+|\d+))(?:(?P<expchar>[edED])(?P<exp>[+-]?\d+))?"
)


def _glue_continuations(source: str) -> str:
    """Join `&`-continued lines (both code and !$acc directive lines)."""
    out_lines: List[str] = []
    lines = source.split("\n")
    i = 0
    while i < len(lines):
        line = lines[i]
        # pure directive continuation handling happens in the main loop;
        # here only glue code-level '&' endings
        stripped = line.rstrip()
        body = stripped
        # strip trailing comment before looking for '&' (but not inside string)
        while body.endswith("&") and not body.lstrip().lower().startswith("!$acc"):
            nxt = lines[i + 1] if i + 1 < len(lines) else ""
            nxt_stripped = nxt.lstrip()
            if nxt_stripped.startswith("&"):
                nxt_stripped = nxt_stripped[1:]
            body = body[:-1].rstrip() + " " + nxt_stripped.rstrip()
            i += 1
        out_lines.append(body)
        i += 1
    return "\n".join(out_lines)


def tokenize(source: str, filename: str = "<fortran>") -> List[Token]:
    """Tokenize mini-Fortran source text."""
    source = _glue_continuations(source)
    tokens: List[Token] = []
    lines = source.split("\n")
    lineno = 0
    n_lines = len(lines)

    while lineno < n_lines:
        raw = lines[lineno]
        lineno += 1
        line = raw
        col0 = 1

        def loc(col: int) -> SourceLocation:
            return SourceLocation(filename, lineno, col)

        stripped = line.lstrip()
        lead = len(line) - len(stripped)

        # OpenACC sentinel (must be checked before general comment)
        m = re.match(r"!\$acc\b(.*)", stripped, re.IGNORECASE)
        if m:
            payload = m.group(1)
            pad = len(payload) - len(payload.lstrip())
            # absolute column of the directive payload for token rebasing
            payload_col = lead + 1 + m.start(1) + pad
            text = payload.strip()
            # directive continuation: trailing '&', next lines start !$acc
            while text.endswith("&") and lineno < n_lines:
                nxt = lines[lineno].lstrip()
                m2 = re.match(r"!\$acc&?(.*)", nxt, re.IGNORECASE)
                if not m2:
                    break
                lineno += 1
                text = text[:-1].strip() + " " + m2.group(1).strip()
            if text.lower().startswith("end"):
                # `!$acc end parallel` -> PRAGMA token with 'end ...' payload
                pass
            tokens.append(Token(TokenKind.PRAGMA, text, loc(lead + 1),
                                value=payload_col))
            tokens.append(Token(TokenKind.NEWLINE, "\n", loc(len(line) + 1)))
            continue

        i = 0
        emitted = False
        while i < len(line):
            ch = line[i]
            if ch in " \t\r":
                i += 1
                continue
            if ch == "!":
                break  # comment to end of line
            if ch == ";":
                tokens.append(Token(TokenKind.NEWLINE, ";", loc(i + 1)))
                i += 1
                emitted = False
                continue

            # strings (both quote styles, doubled-quote escapes)
            if ch in "'\"":
                q = ch
                j = i + 1
                buf = []
                while j < len(line):
                    if line[j] == q:
                        if j + 1 < len(line) and line[j + 1] == q:
                            buf.append(q)
                            j += 2
                            continue
                        break
                    buf.append(line[j])
                    j += 1
                if j >= len(line):
                    raise LexError("unterminated string", loc(i + 1))
                tokens.append(
                    Token(TokenKind.STRING, line[i : j + 1], loc(i + 1), value="".join(buf))
                )
                i = j + 1
                emitted = True
                continue

            # dot operators and logical literals
            if ch == ".":
                low = line[i:].lower()
                matched = False
                for lit, val in _DOT_LITERALS.items():
                    if low.startswith(lit):
                        tokens.append(Token(TokenKind.INT, lit, loc(i + 1), value=val))
                        i += len(lit)
                        matched = True
                        break
                if matched:
                    emitted = True
                    continue
                for op in _DOT_OPS:
                    if low.startswith(op):
                        tokens.append(Token(TokenKind.OP, op, loc(i + 1)))
                        i += len(op)
                        matched = True
                        break
                if matched:
                    emitted = True
                    continue
                # fall through: may be a number like `.5`

            # numbers
            if ch.isdigit() or (
                ch == "." and i + 1 < len(line) and line[i + 1].isdigit()
            ):
                m = _NUMBER_RE.match(line, i)
                assert m is not None
                text = m.group(0)
                mant = m.group("mant")
                expchar = m.group("expchar")
                if "." in mant or expchar:
                    value = float(mant) * (
                        10.0 ** int(m.group("exp")) if expchar else 1.0
                    )
                    is_double = bool(expchar) and expchar.lower() == "d"
                    tokens.append(
                        Token(
                            TokenKind.FLOAT,
                            text,
                            loc(i + 1),
                            value=(value, not is_double),
                        )
                    )
                else:
                    tokens.append(Token(TokenKind.INT, text, loc(i + 1), value=int(mant)))
                i = m.end()
                emitted = True
                continue

            # identifiers / keywords
            m = _IDENT_RE.match(line, i)
            if m:
                text = m.group(0)
                lowered = text.lower()
                kind = (
                    TokenKind.KEYWORD
                    if lowered in FORTRAN_KEYWORDS
                    else TokenKind.IDENT
                )
                tokens.append(Token(kind, lowered, loc(i + 1)))
                i = m.end()
                emitted = True
                continue

            # operators
            for op in _OPERATORS:
                if line.startswith(op, i):
                    tokens.append(Token(TokenKind.OP, op, loc(i + 1)))
                    i += len(op)
                    break
            else:
                raise LexError(f"unexpected character {ch!r}", loc(i + 1))
            emitted = True

        if emitted:
            tokens.append(Token(TokenKind.NEWLINE, "\n", loc(len(line) + 1)))

    tokens.append(Token(TokenKind.EOF, "", SourceLocation(filename, lineno, 1)))
    return tokens
