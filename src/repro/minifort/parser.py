"""mini-Fortran recursive-descent parser.

Produces the shared AST of :mod:`repro.ir.astnodes`.  Notable conventions:

* a ``program`` unit, or an ``integer function main()``, maps to the
  ``main`` function of the :class:`Program`; assignments to the function
  name set the return value (standard Fortran function semantics);
* ``do i = lo, hi[, step]`` maps to an inclusive :class:`For`;
* region directives are block-delimited by ``!$acc end <construct>``;
* ``a(i)`` parses to an :class:`Index` when ``a`` is a declared array or
  array parameter, otherwise to a :class:`Call` — the parser tracks
  declarations per unit to disambiguate;
* declared lower bounds (default 1) are preserved on :class:`VarDecl` so
  the interpreter indexes Fortran arrays correctly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.frontend.directives import DirectiveParser
from repro.frontend.errors import ParseError
from repro.frontend.tokens import Token, TokenKind, TokenStream, rebase_tokens
from repro.ir.acc import Directive
from repro.ir.astnodes import (
    AccConstruct,
    AccLoop,
    AccStandalone,
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Continue,
    DeclStmt,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FuncParam,
    Function,
    Ident,
    If,
    Index,
    IntLit,
    Program,
    Return,
    Stmt,
    StringLit,
    Unary,
    VarDecl,
    While,
)
from repro.ir.types import BOOL, DOUBLE, FLOAT, INT, Type
from repro.minifort.lexer import tokenize

_REGION_KINDS = {"parallel", "kernels", "data", "host_data"}
_LOOP_KINDS = {"loop", "parallel loop", "kernels loop"}
_STANDALONE_KINDS = {"update", "wait", "cache", "enter data", "exit data"}
_FUNCSCOPE_KINDS = {"declare", "routine"}

#: dot-form/modern comparison spellings -> canonical C-style ops
_CMP_MAP = {
    ".eq.": "==", "==": "==",
    ".ne.": "!=", "/=": "!=",
    ".lt.": "<", "<": "<",
    ".le.": "<=", "<=": "<=",
    ".gt.": ">", ">": ">",
    ".ge.": ">=", ">=": ">=",
}


def parse_program(source: str, filename: str = "<fortran>", name: str = "<anonymous>") -> Program:
    """Parse a mini-Fortran translation unit (one or more program units)."""
    parser = FortranParser(tokenize(source, filename))
    return parser.parse_file(name)


def parse_expression_text(source: str) -> Expr:
    """Parse a standalone Fortran expression."""
    parser = FortranParser(tokenize(source, "<expr>"))
    expr = parser.parse_expression(parser.ts)
    parser._skip_newlines()
    if not parser.ts.at_end():
        raise ParseError("trailing tokens after expression", parser.ts.current.loc)
    return expr


class FortranParser:
    def __init__(self, tokens: List[Token]):
        self.ts = TokenStream(tokens)
        self._directive_parser = DirectiveParser(
            parse_expr=self.parse_expression, fortran_sections=True
        )
        # names that denote arrays in the current unit (declared arrays plus
        # array-typed parameters) — used to disambiguate a(i) index vs call
        self._array_names: Set[str] = set()
        self._current_function: Optional[Function] = None
        self._result_name: Optional[str] = None

    # -------------------------------------------------------------- utilities

    def _skip_newlines(self) -> None:
        while self.ts.current.kind is TokenKind.NEWLINE:
            self.ts.advance()

    def _expect_end_of_statement(self) -> None:
        tok = self.ts.current
        if tok.kind in (TokenKind.NEWLINE, TokenKind.EOF):
            if tok.kind is TokenKind.NEWLINE:
                self.ts.advance()
            return
        raise ParseError(f"expected end of statement, found {tok.text!r}", tok.loc)

    # ------------------------------------------------------------------- file

    def parse_file(self, name: str) -> Program:
        program = Program(language="fortran", name=name)
        self._skip_newlines()
        while not self.ts.at_end():
            program.functions.append(self._parse_unit())
            self._skip_newlines()
        return program

    # ------------------------------------------------------------------ units

    def _parse_unit(self) -> Function:
        tok = self.ts.current
        if tok.is_keyword("program"):
            return self._parse_program_unit()
        if tok.is_keyword("subroutine"):
            return self._parse_procedure(None)
        # typed function: `integer function name(...)`
        ftype = self._try_parse_type()
        if ftype is not None and self.ts.current.is_keyword("function"):
            return self._parse_procedure(ftype)
        raise ParseError(
            f"expected program unit, found {tok.text!r}", tok.loc
        )

    def _parse_program_unit(self) -> Function:
        tok = self.ts.expect_keyword("program")
        name_tok = self.ts.expect_ident()
        self._expect_end_of_statement()
        fn = Function(name="main", return_type=INT, loc=tok.loc)
        self._begin_unit(fn, result_name="main")
        body = self._parse_body(until=("end",))
        self._parse_end_line("program")
        # implicit result variable: main defaults to 0 and is returned
        body.stmts.insert(
            0,
            DeclStmt(decls=[VarDecl(name="main", type=INT, init=IntLit(0))]),
        )
        body.stmts.append(Return(value=Ident(name="main")))
        fn.body = body
        self._finish_unit()
        return fn

    def _parse_procedure(self, return_type: Optional[Type]) -> Function:
        if return_type is None:
            kw = self.ts.expect_keyword("subroutine")
        else:
            kw = self.ts.expect_keyword("function")
        name_tok = self.ts.expect_ident()
        params: List[FuncParam] = []
        if self.ts.current.is_op("("):
            self.ts.advance()
            if not self.ts.current.is_op(")"):
                params.append(self._parse_param_name())
                while self.ts.match_op(","):
                    params.append(self._parse_param_name())
            self.ts.expect_op(")")
        result_name = name_tok.text
        if self.ts.current.is_keyword("result"):
            self.ts.advance()
            self.ts.expect_op("(")
            result_name = self.ts.expect_ident().text
            self.ts.expect_op(")")
        self._expect_end_of_statement()

        fn = Function(
            name=name_tok.text,
            return_type=return_type or Type("void"),
            params=params,
            loc=kw.loc,
        )
        self._begin_unit(fn, result_name=result_name if return_type else None)
        body = self._parse_body(until=("end",))
        self._parse_end_line("function" if return_type else "subroutine")
        if return_type is not None:
            body.stmts.insert(
                0,
                DeclStmt(
                    decls=[VarDecl(name=result_name, type=return_type, init=IntLit(0))]
                ),
            )
            body.stmts.append(Return(value=Ident(name=result_name)))
        fn.body = body
        self._finish_unit()
        return fn

    def _begin_unit(self, fn: Function, result_name: Optional[str]) -> None:
        self._array_names = set()
        self._current_function = fn
        self._result_name = result_name

    def _finish_unit(self) -> None:
        self._current_function = None
        self._result_name = None

    def _parse_param_name(self) -> FuncParam:
        tok = self.ts.expect_ident()
        return FuncParam(name=tok.text, type=INT, loc=tok.loc)

    def _parse_end_line(self, unit_kw: str) -> None:
        self._skip_newlines()
        self.ts.expect_keyword("end")
        if self.ts.current.is_keyword(unit_kw):
            self.ts.advance()
            if self.ts.current.kind is TokenKind.IDENT:
                self.ts.advance()
        self._expect_end_of_statement()

    # ------------------------------------------------------------------- body

    def _parse_body(self, until: Tuple[str, ...]) -> Block:
        """Parse statements until one of the `until` keywords (not consumed)
        or an `!$acc end ...` pragma (not consumed)."""
        block = Block()
        while True:
            self._skip_newlines()
            tok = self.ts.current
            if tok.kind is TokenKind.EOF:
                break
            if tok.kind is TokenKind.KEYWORD and tok.text in until:
                # `end do`/`endif` are consumed by their own handlers; a bare
                # `end`, `else`, `elseif` ends this body.
                break
            if tok.kind is TokenKind.PRAGMA and tok.text.lower().startswith("end"):
                break
            stmt = self._parse_statement()
            if stmt is not None:
                block.stmts.append(stmt)
        return block

    # -------------------------------------------------------------- statements

    def _parse_statement(self) -> Optional[Stmt]:
        tok = self.ts.current

        if tok.kind is TokenKind.PRAGMA:
            self.ts.advance()
            self._skip_newlines()
            return self._parse_acc_statement(tok)

        if tok.is_keyword("implicit"):
            while self.ts.current.kind not in (TokenKind.NEWLINE, TokenKind.EOF):
                self.ts.advance()
            self._expect_end_of_statement()
            return None

        if tok.is_keyword("integer", "real", "double", "logical"):
            return self._parse_declaration()

        if tok.is_keyword("do"):
            return self._parse_do()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("call"):
            return self._parse_call_stmt()
        if tok.is_keyword("exit"):
            self.ts.advance()
            self._expect_end_of_statement()
            return Break(loc=tok.loc)
        if tok.is_keyword("cycle"):
            self.ts.advance()
            self._expect_end_of_statement()
            return Continue(loc=tok.loc)
        if tok.is_keyword("return"):
            self.ts.advance()
            self._expect_end_of_statement()
            if self._result_name is not None:
                return Return(value=Ident(name=self._result_name), loc=tok.loc)
            return Return(loc=tok.loc)
        if tok.is_keyword("stop"):
            self.ts.advance()
            if self.ts.current.kind not in (TokenKind.NEWLINE, TokenKind.EOF):
                self.ts.advance()  # stop code ignored
            self._expect_end_of_statement()
            return Return(value=Ident(name=self._result_name) if self._result_name else None, loc=tok.loc)
        if tok.is_keyword("continue"):
            self.ts.advance()
            self._expect_end_of_statement()
            return None
        if tok.is_keyword("print"):
            return self._parse_print()

        # assignment: ident [( indices )] = expr
        if tok.kind is TokenKind.IDENT:
            return self._parse_assignment()

        raise ParseError(f"unexpected token {tok.text!r}", tok.loc)

    def _parse_print(self) -> Stmt:
        tok = self.ts.expect_keyword("print")
        self.ts.expect_op("*")
        args: List[Expr] = []
        while self.ts.match_op(","):
            args.append(self.parse_expression(self.ts))
        self._expect_end_of_statement()
        return ExprStmt(expr=Call(name="print", args=args), loc=tok.loc)

    def _parse_call_stmt(self) -> Stmt:
        tok = self.ts.expect_keyword("call")
        name_tok = self.ts.expect_ident()
        args: List[Expr] = []
        if self.ts.current.is_op("("):
            self.ts.advance()
            if not self.ts.current.is_op(")"):
                args.append(self.parse_expression(self.ts))
                while self.ts.match_op(","):
                    args.append(self.parse_expression(self.ts))
            self.ts.expect_op(")")
        self._expect_end_of_statement()
        return ExprStmt(expr=Call(name=name_tok.text, args=args), loc=tok.loc)

    def _parse_assignment(self) -> Stmt:
        name_tok = self.ts.expect_ident()
        target: Expr = Ident(name=name_tok.text, loc=name_tok.loc)
        if self.ts.current.is_op("("):
            self.ts.advance()
            indices = [self.parse_expression(self.ts)]
            while self.ts.match_op(","):
                indices.append(self.parse_expression(self.ts))
            self.ts.expect_op(")")
            target = Index(base=target, indices=indices, loc=name_tok.loc)
        eq = self.ts.expect_op("=")
        value = self.parse_expression(self.ts)
        self._expect_end_of_statement()
        return Assign(target=target, value=value, loc=eq.loc)

    # --------------------------------------------------------------- control

    def _parse_do(self) -> Stmt:
        tok = self.ts.expect_keyword("do")
        if self.ts.current.is_keyword("while"):
            self.ts.advance()
            self.ts.expect_op("(")
            cond = self.parse_expression(self.ts)
            self.ts.expect_op(")")
            self._expect_end_of_statement()
            body = self._parse_body(until=("end", "enddo"))
            self._consume_block_end("do", "enddo")
            return While(cond=cond, body=body, loc=tok.loc)

        var_tok = self.ts.expect_ident()
        self.ts.expect_op("=")
        start = self.parse_expression(self.ts)
        self.ts.expect_op(",")
        bound = self.parse_expression(self.ts)
        step: Expr = IntLit(1)
        if self.ts.match_op(","):
            step = self.parse_expression(self.ts)
        self._expect_end_of_statement()
        body = self._parse_body(until=("end", "enddo"))
        self._consume_block_end("do", "enddo")
        return For(
            var=var_tok.text,
            start=start,
            bound=bound,
            step=step,
            body=body,
            inclusive=True,
            loc=tok.loc,
        )

    def _consume_block_end(self, second_kw: str, fused_kw: str) -> None:
        self._skip_newlines()
        if self.ts.current.is_keyword(fused_kw):
            self.ts.advance()
            self._expect_end_of_statement()
            return
        self.ts.expect_keyword("end")
        self.ts.expect_keyword(second_kw)
        self._expect_end_of_statement()

    def _parse_if(self) -> Stmt:
        tok = self.ts.expect_keyword("if")
        self.ts.expect_op("(")
        cond = self.parse_expression(self.ts)
        self.ts.expect_op(")")
        if not self.ts.current.is_keyword("then"):
            # one-line if
            stmt = self._parse_statement()
            return If(cond=cond, then=stmt or Block(), loc=tok.loc)
        self.ts.advance()  # then
        self._expect_end_of_statement()
        then = self._parse_body(until=("end", "endif", "else", "elseif"))
        other: Optional[Stmt] = None
        self._skip_newlines()
        cur = self.ts.current
        if cur.is_keyword("elseif"):
            self.ts.advance()
            other = self._parse_if_tail(cur)
        elif cur.is_keyword("else"):
            self.ts.advance()
            if self.ts.current.is_keyword("if"):
                # `else if (...) then`
                other = self._parse_if()
                return If(cond=cond, then=then, other=other, loc=tok.loc)
            self._expect_end_of_statement()
            other = self._parse_body(until=("end", "endif"))
            self._consume_block_end("if", "endif")
            return If(cond=cond, then=then, other=other, loc=tok.loc)
        else:
            self._consume_block_end("if", "endif")
            return If(cond=cond, then=then, loc=tok.loc)
        return If(cond=cond, then=then, other=other, loc=tok.loc)

    def _parse_if_tail(self, tok: Token) -> Stmt:
        """Handle `elseif (...) then` chains (the `elseif` is consumed)."""
        self.ts.expect_op("(")
        cond = self.parse_expression(self.ts)
        self.ts.expect_op(")")
        self.ts.expect_keyword("then")
        self._expect_end_of_statement()
        then = self._parse_body(until=("end", "endif", "else", "elseif"))
        self._skip_newlines()
        cur = self.ts.current
        if cur.is_keyword("elseif"):
            self.ts.advance()
            other = self._parse_if_tail(cur)
            return If(cond=cond, then=then, other=other, loc=tok.loc)
        if cur.is_keyword("else"):
            self.ts.advance()
            self._expect_end_of_statement()
            other = self._parse_body(until=("end", "endif"))
            self._consume_block_end("if", "endif")
            return If(cond=cond, then=then, other=other, loc=tok.loc)
        self._consume_block_end("if", "endif")
        return If(cond=cond, then=then, loc=tok.loc)

    # ------------------------------------------------------------ declarations

    def _try_parse_type(self) -> Optional[Type]:
        tok = self.ts.current
        if tok.is_keyword("integer"):
            self.ts.advance()
            return INT
        if tok.is_keyword("real"):
            self.ts.advance()
            # `real*8` -> double
            if self.ts.current.is_op("*"):
                self.ts.advance()
                width = self.ts.expect_kind(TokenKind.INT)
                return DOUBLE if width.value == 8 else FLOAT
            return FLOAT
        if tok.is_keyword("double"):
            self.ts.advance()
            self.ts.expect_keyword("precision")
            return DOUBLE
        if tok.is_keyword("logical"):
            self.ts.advance()
            return BOOL
        return None

    def _parse_declaration(self) -> Optional[Stmt]:
        start = self.ts.current
        base = self._try_parse_type()
        assert base is not None
        dim_spec: Optional[List[Tuple[Optional[Expr], Expr]]] = None
        # attributes: `, dimension(spec)` `, parameter` `, intent(...)`
        while self.ts.current.is_op(","):
            self.ts.advance()
            attr = self.ts.advance()
            if attr.is_keyword("dimension"):
                self.ts.expect_op("(")
                dim_spec = self._parse_bounds_list()
                self.ts.expect_op(")")
            elif attr.is_keyword("parameter"):
                pass  # treated as a plain initialised variable
            elif attr.is_keyword("intent"):
                self.ts.expect_op("(")
                self.ts.advance()
                self.ts.expect_op(")")
            else:
                raise ParseError(f"unknown attribute {attr.text!r}", attr.loc)
        self.ts.match_op("::")

        decls: List[VarDecl] = []
        param_names = {p.name for p in (self._current_function.params if self._current_function else [])}
        while True:
            name_tok = self.ts.expect_ident()
            bounds = dim_spec
            if self.ts.current.is_op("("):
                self.ts.advance()
                bounds = self._parse_bounds_list()
                self.ts.expect_op(")")
            init: Optional[Expr] = None
            if self.ts.match_op("="):
                init = self.parse_expression(self.ts)
            if bounds is not None:
                self._array_names.add(name_tok.text)
            if name_tok.text in param_names:
                # typing a parameter: record arrayness, no local storage
                for p in self._current_function.params:  # type: ignore[union-attr]
                    if p.name == name_tok.text:
                        p.type = base
                        p.is_array = bounds is not None
            elif self._result_name == name_tok.text:
                pass  # declaring the result variable again is a no-op
            else:
                dims = [extent for (_lo, extent) in (bounds or [])]
                lowers = [lo for (lo, _extent) in (bounds or [])]
                decls.append(
                    VarDecl(
                        name=name_tok.text,
                        type=base,
                        dims=dims,
                        lowers=lowers,
                        init=init,
                        loc=name_tok.loc,
                    )
                )
            if not self.ts.match_op(","):
                break
        self._expect_end_of_statement()
        if not decls:
            return None
        return DeclStmt(decls=decls, loc=start.loc)

    def _parse_bounds_list(self) -> List[Tuple[Optional[Expr], Expr]]:
        """Parse dimension bounds: `n` (1:n) or `lo:hi`; returns
        (lower, extent) pairs (lower None => default 1)."""
        out: List[Tuple[Optional[Expr], Expr]] = []
        while True:
            first = self.parse_expression(self.ts)
            if self.ts.match_op(":"):
                hi = self.parse_expression(self.ts)
                extent = Binary("+", Binary("-", hi, first), IntLit(1))
                out.append((first, extent))
            else:
                out.append((None, first))
            if not self.ts.match_op(","):
                return out

    # --------------------------------------------------------------- pragmas

    def _parse_acc_statement(self, pragma_tok: Token) -> Optional[Stmt]:
        directive = self._parse_directive_token(pragma_tok)
        kind = directive.kind
        if kind in _REGION_KINDS:
            body = self._parse_body(until=("end",))
            self._consume_acc_end(kind, pragma_tok)
            return AccConstruct(directive=directive, body=body, loc=pragma_tok.loc)
        if kind in _LOOP_KINDS:
            self._skip_newlines()
            if not self.ts.current.is_keyword("do"):
                raise ParseError(
                    "OpenACC loop directive must be followed by a do loop",
                    pragma_tok.loc,
                )
            loop = self._parse_do()
            if not isinstance(loop, For):
                raise ParseError(
                    "OpenACC loop directive requires a counted do loop",
                    pragma_tok.loc,
                )
            self._maybe_consume_acc_end(kind)
            return AccLoop(directive=directive, loop=loop, loc=pragma_tok.loc)
        if kind in _STANDALONE_KINDS:
            return AccStandalone(directive=directive, loc=pragma_tok.loc)
        if kind in _FUNCSCOPE_KINDS:
            if self._current_function is None:
                raise ParseError("declare directive outside unit", pragma_tok.loc)
            self._current_function.declares.append(directive)
            return None
        raise ParseError(f"unsupported directive {kind!r}", pragma_tok.loc)

    def _consume_acc_end(self, kind: str, pragma_tok: Token) -> None:
        self._skip_newlines()
        tok = self.ts.current
        if tok.kind is not TokenKind.PRAGMA or not tok.text.lower().startswith("end"):
            raise ParseError(
                f"missing `!$acc end {kind}` for construct", pragma_tok.loc
            )
        payload = tok.text.lower()[len("end"):].strip()
        if payload != kind:
            raise ParseError(
                f"mismatched `!$acc end {payload}` (expected `end {kind}`)",
                tok.loc,
            )
        self.ts.advance()
        self._skip_newlines()

    def _maybe_consume_acc_end(self, kind: str) -> None:
        self._skip_newlines()
        tok = self.ts.current
        if tok.kind is TokenKind.PRAGMA and tok.text.lower() == f"end {kind}":
            self.ts.advance()
            self._skip_newlines()

    def _parse_directive_token(self, tok: Token) -> Directive:
        sub_tokens = [
            t
            for t in tokenize(tok.text, tok.loc.filename)
            if t.kind is not TokenKind.NEWLINE
        ]
        column = tok.value if isinstance(tok.value, int) else 1
        ts = TokenStream(rebase_tokens(sub_tokens, tok.loc, column))
        return self._directive_parser.parse(ts, source=f"!$acc {tok.text}")

    # ------------------------------------------------------------ expressions

    def parse_expression(self, ts: TokenStream) -> Expr:
        return self._parse_or(ts)

    def _parse_or(self, ts: TokenStream) -> Expr:
        left = self._parse_and(ts)
        while ts.current.is_op(".or."):
            tok = ts.advance()
            right = self._parse_and(ts)
            left = Binary(op="||", left=left, right=right, loc=tok.loc)
        return left

    def _parse_and(self, ts: TokenStream) -> Expr:
        left = self._parse_not(ts)
        while ts.current.is_op(".and."):
            tok = ts.advance()
            right = self._parse_not(ts)
            left = Binary(op="&&", left=left, right=right, loc=tok.loc)
        return left

    def _parse_not(self, ts: TokenStream) -> Expr:
        if ts.current.is_op(".not."):
            tok = ts.advance()
            return Unary(op="!", operand=self._parse_not(ts), loc=tok.loc)
        return self._parse_comparison(ts)

    def _parse_comparison(self, ts: TokenStream) -> Expr:
        left = self._parse_additive(ts)
        tok = ts.current
        if tok.kind is TokenKind.OP and tok.text in _CMP_MAP:
            ts.advance()
            right = self._parse_additive(ts)
            return Binary(op=_CMP_MAP[tok.text], left=left, right=right, loc=tok.loc)
        return left

    def _parse_additive(self, ts: TokenStream) -> Expr:
        tok = ts.current
        if tok.is_op("-", "+"):
            ts.advance()
            first = self._parse_multiplicative(ts)
            left: Expr = first if tok.text == "+" else Unary(op="-", operand=first, loc=tok.loc)
        else:
            left = self._parse_multiplicative(ts)
        while ts.current.is_op("+", "-"):
            op_tok = ts.advance()
            right = self._parse_multiplicative(ts)
            left = Binary(op=op_tok.text, left=left, right=right, loc=op_tok.loc)
        return left

    def _parse_multiplicative(self, ts: TokenStream) -> Expr:
        left = self._parse_power(ts)
        while ts.current.is_op("*", "/"):
            op_tok = ts.advance()
            right = self._parse_power(ts)
            left = Binary(op=op_tok.text, left=left, right=right, loc=op_tok.loc)
        return left

    def _parse_power(self, ts: TokenStream) -> Expr:
        base = self._parse_primary(ts)
        if ts.current.is_op("**"):
            tok = ts.advance()
            # right associative
            exponent = self._parse_power_operand(ts)
            return Binary(op="**", left=base, right=exponent, loc=tok.loc)
        return base

    def _parse_power_operand(self, ts: TokenStream) -> Expr:
        tok = ts.current
        if tok.is_op("-"):
            ts.advance()
            return Unary(op="-", operand=self._parse_power_operand(ts), loc=tok.loc)
        return self._parse_power(ts)

    def _parse_primary(self, ts: TokenStream) -> Expr:
        tok = ts.current
        if tok.kind is TokenKind.INT:
            ts.advance()
            return IntLit(value=tok.value, loc=tok.loc)
        if tok.kind is TokenKind.FLOAT:
            ts.advance()
            value, single = tok.value
            return FloatLit(value=value, single=single, loc=tok.loc)
        if tok.kind is TokenKind.STRING:
            ts.advance()
            return StringLit(value=tok.value, loc=tok.loc)
        if tok.kind is TokenKind.IDENT or tok.is_keyword("real", "integer"):
            # `real(x)`/`int(x)` conversions use type keywords as intrinsics
            ts.advance()
            if ts.current.is_op("("):
                ts.advance()
                args: List[Expr] = []
                if not ts.current.is_op(")"):
                    args.append(self.parse_expression(ts))
                    while ts.match_op(","):
                        args.append(self.parse_expression(ts))
                ts.expect_op(")")
                if tok.text in self._array_names:
                    return Index(base=Ident(name=tok.text, loc=tok.loc), indices=args, loc=tok.loc)
                return Call(name=tok.text, args=args, loc=tok.loc)
            return Ident(name=tok.text, loc=tok.loc)
        if tok.is_op("("):
            ts.advance()
            expr = self.parse_expression(ts)
            ts.expect_op(")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r} in expression", tok.loc)
