"""mini-Fortran frontend.

A free-form Fortran subset sufficient for the generated OpenACC validation
programs: program units / functions / subroutines, ``integer``/``real``/
``double precision``/``logical`` declarations (with ``dimension`` and
explicit bounds), ``do`` / ``do while`` / ``if-then-else``, the Fortran
expression grammar (including dot operators and ``**``), and ``!$acc``
directives with ``&`` continuations and ``!$acc end <construct>`` region
terminators.  Output is the same shared AST the mini-C frontend produces.
"""

from repro.minifort.lexer import tokenize
from repro.minifort.parser import parse_program, parse_expression_text

__all__ = ["tokenize", "parse_program", "parse_expression_text"]
